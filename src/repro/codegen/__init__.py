"""Code generation: macro-code emission and the executable executive."""

from .kernel import KERNEL_PRIMITIVES, NO_PIECE, NoPiece, Shutdown, Stop, ThreadKernel
from .macro import emit_all, emit_macro
from .pygen import generate_python, load_executive, run_generated, thread_name

__all__ = [
    "KERNEL_PRIMITIVES",
    "Stop",
    "NoPiece",
    "NO_PIECE",
    "Shutdown",
    "ThreadKernel",
    "thread_name",
    "emit_macro",
    "emit_all",
    "generate_python",
    "load_executive",
    "run_generated",
]
