"""Code generation: macro-code emission and the executable executive."""

from .kernel import KERNEL_PRIMITIVES, Shutdown, Stop, ThreadKernel
from .macro import emit_all, emit_macro
from .pygen import generate_python, load_executive, run_generated

__all__ = [
    "KERNEL_PRIMITIVES",
    "Stop",
    "Shutdown",
    "ThreadKernel",
    "emit_macro",
    "emit_all",
    "generate_python",
    "load_executive",
    "run_generated",
]
