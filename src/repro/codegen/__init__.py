"""Code generation: macro-code emission and the executable executive.

Emission is organised as a registry of codegen targets
(:mod:`repro.codegen.targets`): ``python`` (thread executive),
``asyncio`` (coroutine executive), ``macro`` (SynDEx m4 story) and
``standalone`` (self-contained emitted program).  The historical
entry points below remain the stable API for the common case.
"""

from .async_kernel import AsyncioKernel, run_generated_async, run_generated_asyncio
from .kernel import KERNEL_PRIMITIVES, NO_PIECE, NoPiece, Shutdown, Stop, ThreadKernel
from .macro import emit_all, emit_macro
from .pygen import generate_python, load_executive, run_generated, thread_name
from .targets import (
    CodegenTarget,
    EmitError,
    get_target,
    list_targets,
    register_target,
    target_capabilities,
    target_names,
)

__all__ = [
    "KERNEL_PRIMITIVES",
    "Stop",
    "NoPiece",
    "NO_PIECE",
    "Shutdown",
    "ThreadKernel",
    "AsyncioKernel",
    "thread_name",
    "emit_macro",
    "emit_all",
    "generate_python",
    "load_executive",
    "run_generated",
    "run_generated_async",
    "run_generated_asyncio",
    "CodegenTarget",
    "EmitError",
    "register_target",
    "get_target",
    "target_names",
    "list_targets",
    "target_capabilities",
]
