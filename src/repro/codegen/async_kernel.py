"""Asyncio implementation of the kernel primitives.

The paper's portability claim — the kernel primitives are "the only
platform-dependent part of the programming environment" — means a new
substrate is exactly one class: this one.  :class:`AsyncioKernel` maps
executive threads to coroutine tasks and Transputer channels to bounded
:class:`asyncio.Queue` instances, all multiplexed on one event loop.
Nothing here preempts anything, so thousands of stream executives can
share a process with per-"thread" cost of one Task object — the
I/O-bound regime where OS threads and their stacks are the bottleneck.

The generated executive for this kernel comes from the ``asyncio``
codegen target (:mod:`repro.codegen.targets.asyncio_target`): the same
skeleton bodies as the ``python`` dialect with every blocking primitive
awaited.  Semantics match :class:`~repro.codegen.kernel.ThreadKernel`
primitive for primitive: bounded channels throttle constant sources,
``Shutdown`` (or task cancellation) unwinds bodies at teardown, and
``call_`` records trace spans attributed via the task name.
"""

from __future__ import annotations

import asyncio
import inspect
import queue
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Tuple

from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping
from .kernel import Shutdown, Stop

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.trace import Trace

__all__ = ["AsyncioKernel", "run_generated_async", "run_generated_asyncio"]


class _StopFlag:
    """Loop-agnostic stop flag with the ``threading.Event`` query API.

    ``asyncio.Event`` binds an event loop on Python 3.9 at construction
    time; the kernel only ever *polls* the flag (never awaits it), so a
    plain boolean with ``is_set``/``set`` keeps the wrapper kernels'
    ``_stop_event`` contract without any loop affinity.
    """

    __slots__ = ("_flag",)

    def __init__(self) -> None:
        self._flag = False

    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        self._flag = True


class AsyncioKernel:
    """Coroutines-and-queues implementation of the kernel primitives.

    Construct it (and run the executive) inside a running event loop:
    channels are :class:`asyncio.Queue` instances created on first use,
    which on Python 3.9 must happen with the loop already running.

    The blocking primitives poll the stop flag every ``poll_s`` (like
    :class:`~repro.codegen.kernel.ThreadKernel`) but park on the queue
    between polls, so an idle executive costs no CPU; teardown both
    sets the flag and cancels the remaining tasks.
    """

    def __init__(
        self,
        *,
        queue_size: int = 4,
        poll_s: float = 0.05,
        trace: Optional["Trace"] = None,
        placement: Optional[Dict[str, str]] = None,
    ):
        self._channels: Dict[str, asyncio.Queue] = {}
        self._tasks: List[asyncio.Task] = []
        self._stop_event = _StopFlag()
        self._queue_size = queue_size
        self._poll_s = poll_s
        self.stop_token = Stop()
        self.trace = trace
        self.placement: Dict[str, str] = placement or {}
        self._epoch = time.perf_counter()
        #: Extra ALT arrivals parked until the next alt_ call asks.
        self._alt_stash: Dict[str, Deque[Any]] = {}
        #: Scratch space the generated code uses for final results.
        self.blackboard: Dict[str, Any] = {}

    # -- primitives ------------------------------------------------------------

    def channel(self, edge: str) -> asyncio.Queue:
        if edge not in self._channels:
            self._channels[edge] = asyncio.Queue(maxsize=self._queue_size)
        return self._channels[edge]

    def spawn_(self, name: str, body: Callable) -> "asyncio.Task":
        async def runner() -> None:
            try:
                await body()
            except (Shutdown, asyncio.CancelledError):
                pass

        task = asyncio.get_running_loop().create_task(runner())
        task.set_name(name)
        self._tasks.append(task)
        return task

    async def send_(self, edge: str, value: Any) -> None:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                channel.put_nowait(value)
                return
            except asyncio.QueueFull:
                pass
            try:
                await asyncio.wait_for(channel.put(value), self._poll_s)
                return
            except asyncio.TimeoutError:
                continue

    async def recv_(self, edge: str) -> Any:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                return channel.get_nowait()
            except asyncio.QueueEmpty:
                pass
            try:
                return await asyncio.wait_for(channel.get(), self._poll_s)
            except asyncio.TimeoutError:
                continue

    def try_recv_(self, edge: str) -> Any:
        """Non-blocking receive; raises ``queue.Empty`` when idle (the
        same exception the thread kernel's supervisor polling expects)."""
        if self._stop_event.is_set():
            raise Shutdown
        try:
            return self.channel(edge).get_nowait()
        except asyncio.QueueEmpty:
            raise queue.Empty from None

    async def stop_(self, edge: str) -> None:
        await self.send_(edge, self.stop_token)

    async def alt_(self, edges: List[str]) -> Tuple[str, Any]:
        """Wait for a message on any of ``edges`` (the Transputer ALT).

        Several ``Queue.get`` coroutines race under ``asyncio.wait``;
        when more than one wins the same tick every extra arrival is
        parked in a per-edge stash and handed out by a later call, so no
        packet is ever dropped by the race.
        """
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            for edge in edges:
                stash = self._alt_stash.get(edge)
                if stash:
                    return edge, stash.popleft()
                channel = self.channel(edge)
                try:
                    return edge, channel.get_nowait()
                except asyncio.QueueEmpty:
                    continue
            getters = {
                asyncio.ensure_future(self.channel(edge).get()): edge
                for edge in edges
            }
            try:
                await asyncio.wait(
                    list(getters),
                    timeout=self._poll_s,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            except asyncio.CancelledError:
                for task in getters:
                    task.cancel()
                raise
            for task in getters:
                if not task.done():
                    task.cancel()
            results = await asyncio.gather(
                *getters, return_exceptions=True
            )
            for task, value in zip(getters, results):
                if isinstance(value, BaseException):
                    continue
                self._alt_stash.setdefault(
                    getters[task], deque()
                ).append(value)
            # Loop around: the stash (or a fresh queue item) answers.

    async def call_(self, func: Callable, *args: Any) -> Any:
        if self.trace is None:
            result = func(*args)
            if inspect.isawaitable(result):
                result = await result
            return result
        start = time.perf_counter()
        try:
            result = func(*args)
            if inspect.isawaitable(result):
                # Async-native table functions overlap their awaited I/O
                # across every task on this one event loop.
                result = await result
            return result
        finally:
            end = time.perf_counter()
            task = asyncio.current_task()
            name = task.get_name() if task is not None else "main"
            self.trace.add_compute(
                self.placement.get(name, "?"),
                name,
                (start - self._epoch) * 1e6,
                (end - self._epoch) * 1e6,
            )

    async def join_(
        self, sinks: List["asyncio.Task"], timeout: float = 60.0
    ) -> None:
        """Wait for the sink tasks, then tear everything down."""
        try:
            for task in sinks:
                try:
                    await asyncio.wait_for(asyncio.shield(task), timeout)
                except asyncio.TimeoutError:
                    self._stop_event.set()
                    raise RuntimeError(
                        f"executive task {task.get_name()!r} did not terminate"
                    ) from None
        finally:
            self._stop_event.set()
            for task in self._tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)

    def is_stop(self, value: Any) -> bool:
        return isinstance(value, Stop)


async def run_generated_async(
    mapping: Mapping,
    table,
    *,
    kernel=None,
    max_iterations: Optional[int] = None,
    args: Optional[Tuple] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    """Generate, load and run the asyncio executive inside a running loop.

    The coroutine counterpart of :func:`repro.codegen.pygen.run_generated`:
    ``kernel`` defaults to a fresh :class:`AsyncioKernel`, and any object
    implementing the awaitable kernel primitives (for instance an
    :class:`~repro.realtime.async_kernel.AsyncRealtimeKernel` wrapper)
    works.  Returns the kernel blackboard.
    """
    from .pygen import load_executive
    from .targets import get_target

    source = get_target("asyncio").generate(
        mapping, max_iterations=max_iterations
    )
    module = load_executive(source)
    if kernel is None:
        kernel = AsyncioKernel()
    inputs = [
        p for p in mapping.graph.by_kind(ProcessKind.INPUT) if p.func is None
    ]
    if len(args or ()) != len(inputs):
        raise ValueError(
            f"program takes {len(inputs)} argument(s), got {len(args or ())}"
        )
    for process, value in zip(inputs, args or ()):
        kernel.blackboard[f"arg_{process.params.get('param')}"] = value
    fns = {spec.name: spec.fn for spec in table}
    _tasks, sinks = await module["build_executive"](kernel, fns)
    await kernel.join_(sinks, timeout)
    return kernel.blackboard


def run_generated_asyncio(
    mapping: Mapping,
    table,
    *,
    max_iterations: Optional[int] = None,
    args: Optional[Tuple] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    """Blocking convenience wrapper: one executive on a private loop."""
    return asyncio.run(
        run_generated_async(
            mapping, table,
            max_iterations=max_iterations, args=args, timeout=timeout,
        )
    )
