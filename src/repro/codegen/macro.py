"""Portable macro-code emission (the ``.m4`` layer of Fig. 2).

SynDEx's output is "processor-independent programs (m4 macro-code, one
per processor)".  This module renders the same information for our
executive: for each processor, a macro program listing its threads and,
per thread, the sequence of kernel-primitive macros (``recv_``,
``call_``, ``send_``, ``alt_`` ...) it executes each iteration.  The
text is target-neutral documentation of the executive — the Python
back end (:mod:`repro.codegen.pygen`) is one expansion of it, a C
back end would be another.
"""

from __future__ import annotations

from typing import Dict, List

from ..pnt.graph import ProcessGraph, ProcessKind
from ..syndex.distribute import Mapping

__all__ = ["emit_macro", "emit_all"]


def _edge_macro(graph: ProcessGraph, mapping: Mapping, idx: int) -> str:
    e = graph.edges[idx]
    src_p = mapping.processor_of(e.src)
    dst_p = mapping.processor_of(e.dst)
    where = "local" if src_p == dst_p else f"{src_p}->{dst_p}"
    return f"e{idx}({where}, {e.type})"


def _thread_ops(graph: ProcessGraph, mapping: Mapping, pid: str) -> List[str]:
    """The per-iteration kernel-macro sequence of one process."""
    proc = graph[pid]
    ins = sorted(
        (e.dst_port, i) for i, e in enumerate(graph.edges) if e.dst == pid
    )
    outs = [
        (e.src_port, i) for i, e in enumerate(graph.edges) if e.src == pid
    ]
    ops: List[str] = []

    def recv(port: int) -> None:
        for p, i in ins:
            if p == port:
                ops.append(f"recv_({_edge_macro(graph, mapping, i)})")

    def send(port: int, what: str) -> None:
        for p, i in outs:
            if p == port:
                ops.append(f"send_({_edge_macro(graph, mapping, i)}, {what})")

    kind = proc.kind
    if kind == ProcessKind.INPUT:
        if proc.func:
            ops.append(f"call_({proc.func}, {proc.params.get('source')!r})")
        send(0, "item")
    elif kind == ProcessKind.CONST:
        send(0, repr(proc.params.get("value")))
    elif kind == ProcessKind.MEM:
        send(0, "state")
        recv(0)
        ops.append("update_(state)")
    elif kind == ProcessKind.APPLY:
        for port in range(proc.n_in):
            recv(port)
        ops.append(f"call_({proc.func}, in0..in{proc.n_in - 1})")
        for port in range(proc.n_out):
            send(port, f"out{port}")
    elif kind == ProcessKind.WORKER:
        recv(0)
        ops.append(f"call_({proc.func}, packet)")
        send(0, "result")
    elif kind in (ProcessKind.ROUTER_MW, ProcessKind.ROUTER_WM):
        recv(0)
        send(0, "message")
    elif kind == ProcessKind.SPLIT:
        recv(0)
        ops.append(f"call_({proc.func}, {proc.params['degree']}, x)")
        for port in range(proc.n_out):
            send(port, f"piece{port}")
    elif kind == ProcessKind.MERGE:
        for port in range(proc.n_in):
            recv(port)
        ops.append(f"call_({proc.func}, x, parts)")
        send(0, "merged")
    elif kind == ProcessKind.MASTER:
        recv(0)
        recv(1)
        degree = proc.params["degree"]
        for i in range(degree):
            send(1 + i, f"packet{i}")
        collect = [
            _edge_macro(graph, mapping, idx)
            for p, idx in ins
            if p >= 2
        ]
        ops.append(f"alt_([{', '.join(collect)}])")
        ops.append(f"call_({proc.func}, acc, result)  ; repeat until drained")
        send(0, "acc")
    elif kind == ProcessKind.OUTPUT:
        recv(0)
        if proc.params.get("discard"):
            ops.append("discard_()")
        elif proc.func:
            ops.append(f"call_({proc.func}, y)")
    return ops


def emit_macro(mapping: Mapping, processor: str) -> str:
    """Render the macro program of one processor."""
    graph = mapping.graph
    lines = [
        f"define(`PROCESSOR', `{processor}')",
        f"define(`PROGRAM', `{graph.name}')",
        f"define(`ARCHITECTURE', `{mapping.arch.name}')",
        "",
    ]
    for pid in mapping.processes_on(processor):
        proc = graph[pid]
        lines.append(f"thread_(`{pid}', `{proc.kind}')dnl")
        lines.append("loop_")
        for op in _thread_ops(graph, mapping, pid):
            lines.append(f"  {op}")
        lines.append("endloop_")
        lines.append("")
    return "\n".join(lines)


def emit_all(mapping: Mapping) -> Dict[str, str]:
    """Macro programs for every (non-idle) processor."""
    return {
        proc: emit_macro(mapping, proc)
        for proc in mapping.arch.processor_ids()
        if mapping.processes_on(proc)
    }
