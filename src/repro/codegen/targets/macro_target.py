"""The ``macro`` codegen target: portable m4-style macro-code.

SynDEx's native output — "processor-independent programs (m4
macro-code, one per processor)" — rendered by
:mod:`repro.codegen.macro`.  The text is target-neutral documentation
of the executive, not a runnable module, so the target registers with
``runnable = False``; :meth:`emit` writes one ``<processor>.m4`` per
non-idle processor.
"""

from __future__ import annotations

from typing import List, Optional

from ...syndex.distribute import Mapping
from ..macro import emit_all, emit_macro
from .registry import CodegenTarget, register_target, write_emitted_set

__all__ = ["MacroTarget"]


@register_target
class MacroTarget(CodegenTarget):
    name = "macro"
    description = "m4-style macro-code, one program per processor (Fig. 2)"
    runnable = False

    def generate(
        self, mapping: Mapping, *, max_iterations: Optional[int] = None
    ) -> str:
        """All per-processor macro programs, concatenated with headers."""
        chunks = []
        for proc, text in emit_all(mapping).items():
            chunks.append(f"# ================ {proc} ================")
            chunks.append(text)
        return "\n".join(chunks)

    def emit(
        self,
        mapping: Mapping,
        table,
        out_dir: str,
        *,
        max_iterations: Optional[int] = None,
    ) -> List[str]:
        files = {
            f"{proc}.m4": emit_macro(mapping, proc)
            for proc in mapping.arch.processor_ids()
            if mapping.processes_on(proc)
        }
        return write_emitted_set(
            self, mapping, table, out_dir, files, max_iterations
        )
