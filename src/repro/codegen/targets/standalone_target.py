"""The ``standalone`` codegen target: deployment without the toolchain.

``repro emit -o dir/`` writes a directory that runs with **no** ``repro``
import at runtime — the paper's m4 story taken to its conclusion: the
generated macro-code is "transformed into compilable code by simply
inlining a set of kernel primitives", so an emitted application needs
only the primitive set, not the environment that produced it.

The directory contains:

* ``skipper_kernel.py`` — the inlined kernel primitives (a minimal
  thread kernel plus the runtime token/outcome types);
* ``executive.py`` — the generated executive, importing only
  ``skipper_kernel``;
* ``functions.py`` — the sequential-function table, rebuilt from
  :func:`repro.serve.wire.table_payload` spec rows with every function's
  *source* inlined (module-level ``def`` s only, the same constraint the
  ``spawn`` start method already imposes);
* ``main.py`` — argument parsing, an inline/fork/spawn runner, and
  canonical ``key=repr(value)`` result rendering;
* ``MANIFEST.json`` — target, fingerprints and repro version.

Byte-identical results: ``main.py`` prints the kernel blackboard through
:func:`render_blackboard`, and the ``standalone`` execution backend
parses exactly that rendering back, so the differential oracle compares
an emitted program against sequential emulation like any other backend.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
import types
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set

from ...pnt.graph import ProcessKind
from ...syndex.distribute import Mapping
from .python_target import ExecutiveGenerator
from .registry import (
    CodegenTarget,
    EmitError,
    register_target,
    write_emitted_set,
)

__all__ = [
    "StandaloneTarget",
    "render_blackboard",
    "kernel_module_source",
    "functions_module_source",
]

#: Names the emitted ``functions.py`` resolves from ``skipper_kernel``.
RUNTIME_NAMES = frozenset(
    {"EndOfStream", "TaskOutcome", "NO_PIECE", "NoPiece", "Stop", "Shutdown"}
)


def render_blackboard(blackboard) -> str:
    """Canonical result rendering: sorted ``key=repr(value)`` lines.

    Only result keys (``result_<i>``, ``outputs``, ``final_state``) are
    rendered, so a standalone run compares byte-for-byte with the same
    program under ``repro run``.
    """
    lines = []
    for key in sorted(blackboard):
        if key.startswith("result_") or key in ("outputs", "final_state"):
            lines.append("%s=%r" % (key, blackboard[key]))
    return "".join(line + "\n" for line in lines)


def parse_blackboard(text: str) -> Dict[str, object]:
    """Invert :func:`render_blackboard` (the standalone backend's read)."""
    blackboard: Dict[str, object] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise EmitError(f"unparseable result line {line!r}")
        blackboard[key] = ast.literal_eval(value)
    return blackboard


# -- the inlined kernel module ------------------------------------------------

_KERNEL_TEMPLATE = '''\
"""Inlined SKiPPER kernel primitives — the only platform-dependent layer.

Emitted by `repro emit`; a copy of the thread-kernel reference
implementation plus the runtime token types, so the executive in this
directory runs with no repro import.  Do not edit by hand.
"""

import inspect
import queue
import threading
import time


class Stop:
    """End-of-stream token, forwarded edge-to-edge to unwind the network."""

    def __repr__(self):
        return "<stop>"


class NoPiece:
    """Placeholder for scm splits shorter than the split degree."""

    def __repr__(self):
        return "<no-piece>"


NO_PIECE = NoPiece()


class Shutdown(Exception):
    """Raised inside executive threads when the run is torn down."""


class EndOfStream(Exception):
    """Raised by a stream input function when the stream is over."""


class TaskOutcome:
    """What a task-farm worker produced for one packet."""

    def __init__(self, results=(), subtasks=()):
        self.results = results
        self.subtasks = subtasks

    def __repr__(self):
        return "TaskOutcome(results=%r, subtasks=%r)" % (
            self.results, self.subtasks,
        )


class ThreadKernel:
    """Threads-and-queues implementation of the kernel primitives."""

    def __init__(self, queue_size=4, poll_s=0.05):
        self._channels = {}
        self._threads = []
        self._stop_event = threading.Event()
        self._queue_size = queue_size
        self._poll_s = poll_s
        self.stop_token = Stop()
        self.blackboard = {}

    def channel(self, edge):
        if edge not in self._channels:
            self._channels[edge] = queue.Queue(maxsize=self._queue_size)
        return self._channels[edge]

    def spawn_(self, name, body):
        def runner():
            try:
                body()
            except Shutdown:
                pass

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()
        return thread

    def send_(self, edge, value):
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                channel.put(value, timeout=self._poll_s)
                return
            except queue.Full:
                continue

    def recv_(self, edge):
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                return channel.get(timeout=self._poll_s)
            except queue.Empty:
                continue

    def try_recv_(self, edge):
        if self._stop_event.is_set():
            raise Shutdown
        return self.channel(edge).get_nowait()

    def stop_(self, edge):
        self.send_(edge, self.stop_token)

    def alt_(self, edges):
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            for edge in edges:
                try:
                    return edge, self.channel(edge).get_nowait()
                except queue.Empty:
                    continue
            self._stop_event.wait(0.0002)

    def call_(self, func, *args):
        result = func(*args)
        if inspect.iscoroutine(result):
            import asyncio

            return asyncio.run(result)
        return result

    def join_(self, sinks, timeout=60.0):
        for thread in sinks:
            thread.join(timeout)
            if thread.is_alive():
                self._stop_event.set()
                raise RuntimeError(
                    "executive thread %r did not terminate" % thread.name
                )
        self._stop_event.set()
        for thread in self._threads:
            thread.join(1.0)

    def is_stop(self, value):
        return isinstance(value, Stop)


'''


def kernel_module_source() -> str:
    """The ``skipper_kernel.py`` text, with the *same* render function
    the host-side standalone backend uses to compare results."""
    return _KERNEL_TEMPLATE + textwrap.dedent(
        inspect.getsource(render_blackboard)
    )


# -- sequential-function inlining ---------------------------------------------


def _all_code_names(code) -> Set[str]:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _all_code_names(const)
    return names


class _Inliner:
    """Collect the transitive source closure of a set of functions.

    Every inlined function must be a module-level ``def`` (the spawn
    start method already demands this of the table); referenced globals
    resolve to other inlinable functions, importable modules,
    repr-round-trippable data, or the runtime names provided by
    ``skipper_kernel``.  Anything else is an :class:`EmitError` with the
    offending name — better a loud emit failure than a broken deploy.
    """

    def __init__(self) -> None:
        self.functions: "OrderedDict[str, Optional[str]]" = OrderedDict()
        self.data: "OrderedDict[str, str]" = OrderedDict()
        self.modules: Dict[str, str] = {}  # local name -> module name
        self.runtime: Set[str] = set()
        self._by_id: Dict[int, str] = {}

    def add(self, fn, *, alias: str) -> str:
        """Inline ``fn`` (and its references); returns its def name."""
        if not inspect.isfunction(fn):
            raise EmitError(
                f"cannot inline {alias!r}: {fn!r} is not a module-level "
                "Python function"
            )
        return self._add_function(fn)

    def _add_function(self, fn) -> str:
        if id(fn) in self._by_id:
            return self._by_id[id(fn)]
        name = fn.__name__
        if name == "<lambda>":
            raise EmitError("cannot inline a lambda; use a named def")
        if fn.__closure__:
            raise EmitError(
                f"cannot inline {name!r}: closures do not survive emission"
            )
        try:
            source = textwrap.dedent(inspect.getsource(fn))
        except (OSError, TypeError) as err:
            raise EmitError(f"no source available for {name!r}: {err}")
        if source.lstrip().startswith("@"):
            raise EmitError(
                f"cannot inline {name!r}: decorated defs are not supported"
            )
        previous = self.functions.get(name, None)
        if name in self.functions and previous is not None and previous != source:
            raise EmitError(
                f"two different functions named {name!r} in one table"
            )
        self._by_id[id(fn)] = name
        if name in self.functions:
            return name
        self.functions[name] = None  # reserved: breaks reference cycles
        for ref in sorted(_all_code_names(fn.__code__)):
            self._resolve(ref, fn.__globals__)
        self.functions[name] = source
        return name

    def _resolve(self, ref: str, globals_: Dict) -> None:
        if ref in RUNTIME_NAMES:
            self.runtime.add(ref)
            return
        if ref in self.functions or ref in self.data or ref in self.modules:
            return
        if ref not in globals_:
            # Attribute accesses land in co_names too; builtins and
            # attributes need no emission.
            return
        value = globals_[ref]
        if inspect.isfunction(value):
            emitted = self._add_function(value)
            if emitted != ref:
                raise EmitError(
                    f"global {ref!r} aliases function {emitted!r}; "
                    "emit cannot preserve the rebinding"
                )
            return
        if inspect.ismodule(value):
            self.modules[ref] = value.__name__
            return
        if inspect.isclass(value) and value in vars(builtins).values():
            return
        text = repr(value)
        try:
            if ast.literal_eval(text) != value:
                raise ValueError
        except (ValueError, SyntaxError):
            raise EmitError(
                f"global {ref!r} = {value!r} is not repr-round-trippable; "
                "only literal module data can be inlined"
            ) from None
        self.data[ref] = f"{ref} = {text}"

    def render(self) -> List[str]:
        """The emission chunks: imports, data, then function defs."""
        chunks: List[str] = []
        if self.runtime:
            chunks.append(
                "from skipper_kernel import "
                + ", ".join(sorted(self.runtime))
            )
        for local, module in sorted(self.modules.items()):
            if local == module:
                chunks.append(f"import {module}")
            else:
                chunks.append(f"import {module} as {local}")
        chunks.extend(self.data.values())
        for name, source in self.functions.items():
            if source is None:  # pragma: no cover - reservation leak
                raise EmitError(f"unresolved function {name!r}")
            chunks.append(source.rstrip("\n"))
        return chunks


def functions_module_source(table) -> str:
    """The emitted ``functions.py``: spec rows with inlined sources.

    The table travels as :func:`repro.serve.wire.table_payload` rows —
    the same wire form a service submit uses — with each row's ``fn``
    replaced by its inlined def and the remaining metadata kept as
    ``TABLE_ROWS`` for provenance.
    """
    from ...serve.wire import table_payload

    rows = table_payload(table)
    inliner = _Inliner()
    names: "OrderedDict[str, str]" = OrderedDict()
    for row in rows:
        names[row["name"]] = inliner.add(row["fn"], alias=row["name"])

    lines: List[str] = [
        '"""Sequential-function table, inlined by `repro emit`.',
        "",
        "Rebuilt from the serve-wire spec rows of the host table; every",
        "function is a module-level def whose source was inlined here.",
        "Do not edit by hand.",
        '"""',
        "",
        "from __future__ import annotations",
        "",
    ]
    for chunk in inliner.render():
        lines.append(chunk)
        lines.append("")
        lines.append("")
    lines.append("#: spec-row name -> inlined implementation.")
    lines.append("TABLE = {")
    for alias, fn_name in names.items():
        lines.append(f"    {alias!r}: {fn_name},")
    lines.append("}")
    lines.append("")
    lines.append("#: The remaining spec-row metadata (provenance only).")
    lines.append("TABLE_ROWS = [")
    for row in rows:
        lines.append("    {")
        lines.append(f"        'name': {row['name']!r},")
        lines.append(f"        'ins': {tuple(row['ins'])!r},")
        lines.append(f"        'outs': {tuple(row['outs'])!r},")
        lines.append(f"        'properties': {tuple(row['properties'])!r},")
        lines.append(f"        'doc': {row['doc']!r},")
        lines.append("    },")
    lines.append("]")
    lines.append("")
    return "\n".join(lines)


# -- the entry point ----------------------------------------------------------

_MAIN_TEMPLATE = '''\
"""Entry point of an emitted SKiPPER program — no repro import needed.

Generated by `repro emit`; MANIFEST.json records the build provenance.
Results print as canonical sorted key=repr(value) lines, byte-identical
to what `repro run` reports for the same program and inputs.
"""

import argparse
import ast
import sys

import executive
from functions import TABLE
from skipper_kernel import ThreadKernel, render_blackboard


def run_program(arg_values, max_iterations, timeout):
    """Build and run the executive; returns the kernel blackboard."""
    if max_iterations is not None:
        executive.MAX_ITERATIONS = max_iterations
    params = executive.PARAMS
    if len(arg_values) != len(params):
        raise SystemExit(
            "error: program takes %d argument(s), got %d"
            % (len(params), len(arg_values))
        )
    kernel = ThreadKernel()
    for name, value in zip(params, arg_values):
        kernel.blackboard["arg_" + name] = value
    _threads, sinks = executive.build_executive(kernel, TABLE)
    kernel.join_(sinks, timeout)
    return kernel.blackboard


def _child_main(out_queue, arg_values, max_iterations, timeout):
    """Run the executive inside a multiprocessing child (fork/spawn)."""
    out_queue.put(run_program(arg_values, max_iterations, timeout))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--arg", action="append", default=[], metavar="VALUE",
                        help="one-shot input value (Python literal; "
                             "repeatable)")
    parser.add_argument("--max-iterations", type=int, default=None,
                        help="bound the stream (default: the emitted bound)")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="abort a deadlocked run after SECONDS")
    parser.add_argument("--start-method", default="inline",
                        choices=("inline", "fork", "spawn", "forkserver"),
                        help="run in this process (inline) or in a "
                             "multiprocessing child")
    args = parser.parse_args(argv)
    values = [ast.literal_eval(text) for text in args.arg]
    if args.start_method == "inline":
        blackboard = run_program(values, args.max_iterations, args.timeout)
    else:
        import multiprocessing

        ctx = multiprocessing.get_context(args.start_method)
        out_queue = ctx.Queue()
        child = ctx.Process(
            target=_child_main,
            args=(out_queue, values, args.max_iterations, args.timeout),
        )
        child.start()
        try:
            blackboard = out_queue.get(timeout=args.timeout + 30.0)
        finally:
            child.join(10.0)
            if child.is_alive():
                child.terminate()
    sys.stdout.write(render_blackboard(blackboard))
    return 0


if __name__ == "__main__":
    sys.exit(main())
'''


class StandaloneGenerator(ExecutiveGenerator):
    """Python dialect against the inlined ``skipper_kernel`` runtime."""

    PROVENANCE = "repro emit (standalone target)"
    PREAMBLE = (
        "from skipper_kernel import EndOfStream, TaskOutcome, NO_PIECE, NoPiece",
    )


@register_target
class StandaloneTarget(CodegenTarget):
    name = "standalone"
    description = "self-contained emitted program (runs without repro)"
    runnable = False  # imports skipper_kernel, not loadable in-process
    standalone = True
    backend = "standalone"
    generator_class = StandaloneGenerator

    def generate(
        self, mapping: Mapping, *, max_iterations: Optional[int] = None
    ) -> str:
        source = self.generator_class(mapping, max_iterations).generate()
        params: Sequence[str] = [
            str(p.params.get("param"))
            for p in mapping.graph.by_kind(ProcessKind.INPUT)
            if p.func is None
        ]
        return (
            source
            + "\n#: One-shot input parameter names, in declaration order.\n"
            + f"PARAMS = {list(params)!r}\n"
        )

    def emit(
        self,
        mapping: Mapping,
        table,
        out_dir: str,
        *,
        max_iterations: Optional[int] = None,
    ) -> List[str]:
        files = {
            "executive.py": self.generate(
                mapping, max_iterations=max_iterations
            ),
            "skipper_kernel.py": kernel_module_source(),
            "functions.py": functions_module_source(table),
            "main.py": _MAIN_TEMPLATE,
        }
        return write_emitted_set(
            self, mapping, table, out_dir, files, max_iterations
        )
