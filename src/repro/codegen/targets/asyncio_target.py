"""The ``asyncio`` codegen target: coroutine executive, one event loop.

Same skeleton bodies as the ``python`` dialect — the generator only
turns every process body into ``async def`` and awaits each blocking
primitive (``send_``/``recv_``/``call_``/``alt_``/``stop_``), which is
the entire port surface the paper promises.  The emitted module runs on
:class:`~repro.codegen.async_kernel.AsyncioKernel` via the ``asyncio``
execution backend; because a spawned process is a Task rather than an
OS thread, thousands of concurrent stream executives fit in one
process for I/O-bound graphs.
"""

from __future__ import annotations

from typing import Optional

from ...syndex.distribute import Mapping
from .python_target import ExecutiveGenerator
from .registry import CodegenTarget, register_target

__all__ = ["AsyncioGenerator", "AsyncioTarget"]


class AsyncioGenerator(ExecutiveGenerator):
    """The coroutine dialect of the executive generator."""

    AWAIT = "await "
    DEF = "async def"
    UNITS = "tasks"
    UNIT_NOUN = "coroutine task"
    PROVENANCE = "repro.codegen.targets.asyncio"


@register_target
class AsyncioTarget(CodegenTarget):
    name = "asyncio"
    description = "coroutine executive on one event loop (asyncio backend)"
    backend = "asyncio"
    generator_class = AsyncioGenerator

    def generate(
        self, mapping: Mapping, *, max_iterations: Optional[int] = None
    ) -> str:
        return self.generator_class(mapping, max_iterations).generate()
