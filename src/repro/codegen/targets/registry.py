"""Codegen-target registry: one mapped process graph, many emissions.

SynDEx emits "processor-independent programs (m4 macro-code, one per
processor) which are finally transformed into compilable code by simply
inlining a set of kernel primitives" — porting the environment means
reimplementing exactly that primitive set (§3).  This registry is the
seam where the claim is cashed, in the DaCe idiom of one registered
code generator per substrate: a :class:`CodegenTarget` owns the
transformation of a :class:`~repro.syndex.distribute.Mapping` into an
executive for one substrate, written purely against
:data:`~repro.codegen.kernel.KERNEL_PRIMITIVES`.

Targets mirror :mod:`repro.backends.registry` deliberately — a codegen
target is the *emission* half of what an execution backend *runs*, and
several targets (``python`` → ``threads``/``processes``, ``asyncio`` →
``asyncio``) name the backend their executives are built for.  The
``standalone`` target goes one step further and emits a directory that
runs with no ``repro`` import at all.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Type

from ...syndex.distribute import Mapping

__all__ = [
    "CodegenTarget",
    "EmitError",
    "register_target",
    "get_target",
    "target_names",
    "list_targets",
    "target_capabilities",
    "build_manifest",
    "write_emitted_file",
    "MANIFEST_NAME",
]

MANIFEST_NAME = "MANIFEST.json"


class EmitError(RuntimeError):
    """A target could not emit the mapped program."""


class CodegenTarget:
    """One code-generation target for mapped skeletal programs.

    Class attributes:
        name: registry key (``python``, ``asyncio``, ``standalone``,
            ``macro``).
        description: one-line summary shown by :func:`list_targets`.
        runnable: True when :meth:`generate` produces a module that
            :func:`~repro.codegen.pygen.load_executive` can load and a
            kernel can run; False for documentation-only emissions
            (the m4 macro-code).
        standalone: True when :meth:`emit` writes a program that runs
            without the ``repro`` package installed.
        backend: the execution-backend name this target's executives
            are built for (None when no registered backend runs them).
    """

    name: str = "?"
    description: str = ""
    runnable: bool = True
    standalone: bool = False
    backend: Optional[str] = None

    def generate(
        self, mapping: Mapping, *, max_iterations: Optional[int] = None
    ) -> str:
        """The executive source text for a mapped program."""
        raise NotImplementedError

    def emit(
        self,
        mapping: Mapping,
        table,
        out_dir: str,
        *,
        max_iterations: Optional[int] = None,
    ) -> List[str]:
        """Write the emitted artefact set under ``out_dir``.

        Returns the relative paths written (manifest last).  The default
        writes the generated source as ``executive.py`` plus a
        :data:`MANIFEST_NAME`; standalone targets override this to add
        the runtime files.
        """
        source = self.generate(mapping, max_iterations=max_iterations)
        files = {"executive.py": source}
        return write_emitted_set(
            self, mapping, table, out_dir, files, max_iterations
        )


_REGISTRY: Dict[str, Type[CodegenTarget]] = {}


def register_target(cls: Type[CodegenTarget]) -> Type[CodegenTarget]:
    """Class decorator adding a :class:`CodegenTarget` to the registry."""
    if not cls.name or cls.name == "?":
        raise ValueError(f"target class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"codegen target {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_target(name: str) -> CodegenTarget:
    """Instantiate the codegen target registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise EmitError(
            f"unknown codegen target {name!r}; available: "
            f"{', '.join(target_names())}"
        ) from None
    return cls()


def target_names() -> List[str]:
    """Registered target names, sorted."""
    return sorted(_REGISTRY)


def list_targets() -> Dict[str, str]:
    """Mapping of target name -> one-line description."""
    return {name: _REGISTRY[name].description for name in target_names()}


def target_capabilities() -> Dict[str, Dict[str, object]]:
    """Per-target capability flags, in sorted-name order.

    Keys per target: ``runnable``, ``standalone``, ``backend`` — sourced
    from the registered class attributes so tooling never drifts from
    the code (the same guarantee
    :func:`repro.backends.registry.backend_capabilities` gives).
    """
    out: Dict[str, Dict[str, object]] = {}
    for name in target_names():
        cls = _REGISTRY[name]
        out[name] = {
            "runnable": bool(cls.runnable),
            "standalone": bool(cls.standalone),
            "backend": cls.backend,
        }
    return out


# -- emission helpers ---------------------------------------------------------


def write_emitted_file(out_dir: str, rel_path: str, content: str) -> str:
    """Write one emitted artefact, creating directories as needed."""
    from ...core.artifacts import ensure_parent_dir

    path = os.path.join(out_dir, rel_path)
    ensure_parent_dir(path)
    with open(path, "w") as handle:
        handle.write(content)
    return path


def build_manifest(
    target: CodegenTarget,
    mapping: Mapping,
    table,
    files: Dict[str, str],
    max_iterations: Optional[int],
) -> Dict[str, object]:
    """The ``MANIFEST.json`` document describing one emitted directory.

    Fingerprints reuse the serving plane's content hashes (bytecode for
    the table, processors+channels for the architecture), so a deployed
    directory can be matched back to the exact build that produced it.
    """
    from ... import __version__
    from ...serve.cache import arch_fingerprint, table_fingerprint

    return {
        "schema": 1,
        "target": target.name,
        "repro_version": __version__,
        "program": mapping.graph.name,
        "architecture": mapping.arch.name,
        "max_iterations": max_iterations,
        "fingerprints": {
            "table": table_fingerprint(table),
            "architecture": arch_fingerprint(mapping.arch),
        },
        "files": {
            rel: hashlib.sha256(text.encode("utf-8")).hexdigest()
            for rel, text in sorted(files.items())
        },
    }


def write_emitted_set(
    target: CodegenTarget,
    mapping: Mapping,
    table,
    out_dir: str,
    files: Dict[str, str],
    max_iterations: Optional[int],
) -> List[str]:
    """Write ``files`` plus their manifest under ``out_dir``."""
    written: List[str] = []
    for rel in sorted(files):
        write_emitted_file(out_dir, rel, files[rel])
        written.append(rel)
    manifest = build_manifest(target, mapping, table, files, max_iterations)
    write_emitted_file(
        out_dir, MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    written.append(MANIFEST_NAME)
    return written
