"""The ``python`` codegen target: mapped process graph → thread executive.

The SynDEx back end emits "processor-independent programs (m4
macro-code, one per processor) which are finally transformed into
compilable code by simply inlining a set of kernel primitives".  The
:class:`ExecutiveGenerator` here performs the equivalent transformation:
it *generates Python source text* — one ``proc_<id>_<process>`` thread
body per process, grouped per processor — written purely against the
kernel primitives of :mod:`repro.codegen.kernel`.  The generated module
is self-contained: compile it with
:func:`~repro.codegen.pygen.load_executive` and run it with any kernel
implementation.

The generator is dialect-parameterised so other targets reuse the same
per-skeleton bodies: the ``asyncio`` target prefixes every blocking
primitive with ``await`` and spawns coroutines, the ``standalone``
target swaps the runtime preamble for the inlined kernel module.  The
``python`` dialect is the identity — its output is byte-identical to
what ``repro.codegen.pygen`` historically produced, which is what keeps
the content-addressed compile cache stable across this refactor.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...pnt.graph import ProcessGraph, ProcessKind
from ...syndex.distribute import Mapping
from .registry import CodegenTarget, register_target

__all__ = ["ExecutiveGenerator", "PythonTarget", "thread_name"]


def thread_name(pid: str) -> str:
    """The executive thread name generated for process ``pid``."""
    return "proc_" + pid.replace(".", "_").replace("-", "_")


def _in_edges(graph: ProcessGraph, pid: str) -> List[Tuple[int, int]]:
    """(dst_port, edge_index) pairs, sorted by port."""
    out = []
    for idx, e in enumerate(graph.edges):
        if e.dst == pid:
            out.append((e.dst_port, idx))
    out.sort()
    return out


def _out_edges(graph: ProcessGraph, pid: str, port: int) -> List[int]:
    return [
        idx
        for idx, e in enumerate(graph.edges)
        if e.src == pid and e.src_port == port
    ]


class ExecutiveGenerator:
    """Generate the executive for one dialect of the kernel primitives.

    Dialect knobs (class attributes, overridden by subclasses):
        AWAIT: prefix of every blocking primitive call (``"await "`` for
            coroutine dialects, empty for threads).
        DEF: how a process body is declared.
        UNITS: the name of the spawned-unit list in ``build_executive``.
        UNIT_NOUN: what one spawned unit is called in docstrings.
        PROVENANCE: the generator named in the emitted module docstring.
        PREAMBLE: the runtime-support import lines.
    """

    AWAIT = ""
    DEF = "def"
    UNITS = "threads"
    UNIT_NOUN = "thread"
    PROVENANCE = "repro.codegen.pygen"
    PREAMBLE = (
        "from repro.core.semantics import EndOfStream, TaskOutcome",
        "from repro.codegen.kernel import NO_PIECE, NoPiece",
    )

    def __init__(self, mapping: Mapping, max_iterations: Optional[int]):
        self.mapping = mapping
        self.graph = mapping.graph
        self.max_iterations = max_iterations

    # -- dialect-aware send/stop helpers ------------------------------------

    def _send_all(self, indices: List[int], value_expr: str, indent: str) -> str:
        return "".join(
            f"{indent}{self.AWAIT}kernel.send_('e{idx}', {value_expr})\n"
            for idx in indices
        )

    def _stop_all(self, pid: str, indent: str) -> str:
        lines = ""
        proc = self.graph[pid]
        for port in range(proc.n_out):
            for idx in _out_edges(self.graph, pid, port):
                lines += f"{indent}{self.AWAIT}kernel.stop_('e{idx}')\n"
        return lines

    # -- per-kind bodies ----------------------------------------------------

    def gen_input(self, pid: str) -> str:
        proc = self.graph[pid]
        outs = _out_edges(self.graph, pid, 0)
        if proc.func is None:  # one-shot parameter
            param = proc.params.get("param", pid)
            body = f"    value = kernel.blackboard['arg_{param}']\n"
            body += self._send_all(outs, "value", "    ")
            body += self._stop_all(pid, "    ")
            return body
        source = repr(proc.params.get("source"))
        body = "    iterations = 0\n"
        body += "    while MAX_ITERATIONS is None or iterations < MAX_ITERATIONS:\n"
        body += "        try:\n"
        body += (
            f"            value = {self.AWAIT}kernel.call_"
            f"(table[{proc.func!r}], {source})\n"
        )
        body += "        except EndOfStream:\n"
        body += "            break\n"
        body += self._send_all(outs, "value", "        ")
        body += "        iterations += 1\n"
        body += self._stop_all(pid, "    ")
        return body

    def gen_const(self, pid: str) -> str:
        proc = self.graph[pid]
        outs = _out_edges(self.graph, pid, 0)
        body = f"    value = {proc.params['value']!r}\n"
        body += "    while True:\n"
        body += self._send_all(outs, "value", "        ")
        return body

    def gen_mem(self, pid: str) -> str:
        proc = self.graph[pid]
        outs = _out_edges(self.graph, pid, 0)
        loop_in = _in_edges(self.graph, pid)[0][1]
        if "init_func" in proc.params:
            init = (
                f"{self.AWAIT}kernel.call_"
                f"(table[{proc.params['init_func']!r}])"
            )
        else:
            init = repr(proc.params["init_value"])
        body = f"    state = {init}\n"
        body += "    while True:\n"
        body += self._send_all(outs, "state", "        ")
        body += f"        new = {self.AWAIT}kernel.recv_('e{loop_in}')\n"
        body += "        if kernel.is_stop(new):\n"
        body += "            kernel.blackboard['final_state'] = state\n"
        body += "            break\n"
        body += "        state = new\n"
        return body

    def gen_apply(self, pid: str) -> str:
        proc = self.graph[pid]
        ins = _in_edges(self.graph, pid)
        body = "    while True:\n"
        for port, idx in ins:
            body += f"        in{port} = {self.AWAIT}kernel.recv_('e{idx}')\n"
        if ins:
            stops = " or ".join(f"kernel.is_stop(in{port})" for port, _ in ins)
            body += f"        if {stops}:\n"
            body += self._stop_all(pid, "            ")
            body += "            break\n"
        # Nullary functions fire every iteration, throttled by the bounded
        # channels (like constant sources); shutdown unwinds them.
        args = ", ".join(f"in{port}" for port, _ in ins)
        body += (
            f"        result = {self.AWAIT}kernel.call_"
            f"(table[{proc.func!r}], {args})\n"
        )
        if proc.n_out == 1:
            body += self._send_all(
                _out_edges(self.graph, pid, 0), "result", "        "
            )
        else:
            for port in range(proc.n_out):
                body += self._send_all(
                    _out_edges(self.graph, pid, port), f"result[{port}]", "        "
                )
        return body

    def gen_worker(self, pid: str) -> str:
        proc = self.graph[pid]
        (_, in_idx), = _in_edges(self.graph, pid)
        outs = _out_edges(self.graph, pid, 0)
        body = "    while True:\n"
        body += f"        x = {self.AWAIT}kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(x):\n"
        body += self._stop_all(pid, "            ")
        body += "            break\n"
        body += "        if is_no_piece(x):\n"
        body += self._send_all(outs, "NO_PIECE", "            ")
        body += "            continue\n"
        body += (
            f"        y = {self.AWAIT}kernel.call_(table[{proc.func!r}], x)\n"
        )
        body += self._send_all(outs, "y", "        ")
        return body

    def gen_router(self, pid: str) -> str:
        (_, in_idx), = _in_edges(self.graph, pid)
        outs = _out_edges(self.graph, pid, 0)
        body = "    while True:\n"
        body += f"        x = {self.AWAIT}kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(x):\n"
        body += self._stop_all(pid, "            ")
        body += "            break\n"
        body += self._send_all(outs, "x", "        ")
        return body

    def gen_split(self, pid: str) -> str:
        proc = self.graph[pid]
        degree = proc.params["degree"]
        (_, in_idx), = _in_edges(self.graph, pid)
        body = "    while True:\n"
        body += f"        x = {self.AWAIT}kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(x):\n"
        body += self._stop_all(pid, "            ")
        body += "            break\n"
        body += (
            f"        pieces = {self.AWAIT}kernel.call_"
            f"(table[{proc.func!r}], {degree}, x)\n"
        )
        for i in range(degree):
            piece = f"pieces[{i}] if {i} < len(pieces) else NO_PIECE"
            body += self._send_all(
                _out_edges(self.graph, pid, i), f"({piece})", "        "
            )
        return body

    def gen_merge(self, pid: str) -> str:
        proc = self.graph[pid]
        degree = proc.params["degree"]
        ins = dict((port, idx) for port, idx in _in_edges(self.graph, pid))
        body = "    while True:\n"
        body += f"        x = {self.AWAIT}kernel.recv_('e{ins[0]}')\n"
        body += "        parts = []\n"
        for i in range(degree):
            body += (
                f"        parts.append({self.AWAIT}kernel.recv_"
                f"('e{ins[1 + i]}'))\n"
            )
        body += (
            "        if kernel.is_stop(x) or any(kernel.is_stop(p) for p in parts):\n"
        )
        body += self._stop_all(pid, "            ")
        body += "            break\n"
        body += "        parts = [p for p in parts if not is_no_piece(p)]\n"
        body += (
            f"        y = {self.AWAIT}kernel.call_"
            f"(table[{proc.func!r}], x, parts)\n"
        )
        body += self._send_all(_out_edges(self.graph, pid, 0), "y", "        ")
        return body

    def gen_master(self, pid: str) -> str:
        proc = self.graph[pid]
        degree = proc.params["degree"]
        kind = proc.params["farm_kind"]
        ins = dict(_in_edges(self.graph, pid))
        # Port layout: in 0=z, 1=xs, 2+i=collect(i); out 0=result, 1+i=dispatch(i).
        z_idx, xs_idx = ins[0], ins[1]
        collect = {f"e{ins[2 + i]}": i for i in range(degree)}
        dispatch = [
            _out_edges(self.graph, pid, 1 + i)[0] for i in range(degree)
        ]
        result_edges = _out_edges(self.graph, pid, 0)
        body = f"    collect = {collect!r}\n"
        body += f"    dispatch = {['e%d' % d for d in dispatch]!r}\n"
        body += "    while True:\n"
        body += f"        z = {self.AWAIT}kernel.recv_('e{z_idx}')\n"
        body += f"        xs = {self.AWAIT}kernel.recv_('e{xs_idx}')\n"
        body += "        if kernel.is_stop(z) or kernel.is_stop(xs):\n"
        body += self._stop_all(pid, "            ")
        body += "            break\n"
        body += "        acc = z\n"
        body += "        work = list(xs)\n"
        body += f"        busy = [False] * {degree}\n"
        body += "        pending = 0\n"
        body += f"        for i in range({degree}):\n"
        body += "            if work and not busy[i]:\n"
        body += (
            f"                {self.AWAIT}kernel.send_"
            "(dispatch[i], work.pop(0))\n"
        )
        body += "                busy[i] = True\n"
        body += "                pending += 1\n"
        body += "        while pending:\n"
        body += (
            f"            edge, y = {self.AWAIT}kernel.alt_(list(collect))\n"
        )
        body += "            if kernel.is_stop(y):\n"
        body += self._stop_all(pid, "                ")
        body += "                return\n"
        body += "            i = collect[edge]\n"
        body += "            pending -= 1\n"
        body += "            busy[i] = False\n"
        if kind == "tf":
            body += "            outcome = normalize_outcome(y)\n"
            body += "            for r in outcome.results:\n"
            body += (
                f"                acc = {self.AWAIT}kernel.call_"
                f"(table[{proc.func!r}], acc, r)\n"
            )
            body += "            work.extend(outcome.subtasks)\n"
        else:
            body += (
                f"            acc = {self.AWAIT}kernel.call_"
                f"(table[{proc.func!r}], acc, y)\n"
            )
        body += "            if work:\n"
        body += (
            f"                {self.AWAIT}kernel.send_"
            "(dispatch[i], work.pop(0))\n"
        )
        body += "                busy[i] = True\n"
        body += "                pending += 1\n"
        body += self._send_all(result_edges, "acc", "        ")
        return body

    def gen_output(self, pid: str) -> str:
        proc = self.graph[pid]
        (_, in_idx), = _in_edges(self.graph, pid)
        body = "    while True:\n"
        body += f"        y = {self.AWAIT}kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(y):\n"
        body += "            break\n"
        if proc.params.get("discard"):
            body += "        pass\n"
        elif proc.func is not None:
            body += (
                f"        {self.AWAIT}kernel.call_(table[{proc.func!r}], y)\n"
            )
            body += (
                "        kernel.blackboard.setdefault('outputs', []).append(y)\n"
            )
        else:
            index = proc.params.get("index", 0)
            body += f"        kernel.blackboard['result_{index}'] = y\n"
            body += "        break\n"
        return body

    # -- assembly ------------------------------------------------------------

    _GENERATORS = {
        ProcessKind.INPUT: gen_input,
        ProcessKind.CONST: gen_const,
        ProcessKind.MEM: gen_mem,
        ProcessKind.APPLY: gen_apply,
        ProcessKind.WORKER: gen_worker,
        ProcessKind.ROUTER_MW: gen_router,
        ProcessKind.ROUTER_WM: gen_router,
        ProcessKind.SPLIT: gen_split,
        ProcessKind.MERGE: gen_merge,
        ProcessKind.MASTER: gen_master,
        ProcessKind.OUTPUT: gen_output,
    }

    thread_name = staticmethod(thread_name)

    def generate(self) -> str:
        graph, mapping = self.graph, self.mapping
        units, noun = self.UNITS, self.UNIT_NOUN
        lines = [
            f'"""Distributed executive generated by {self.PROVENANCE}.',
            "",
            f"Program: {graph.name!r}",
            f"Architecture: {mapping.arch.name!r}",
            "",
            "Written against the kernel primitives only (see",
            "repro.codegen.kernel.KERNEL_PRIMITIVES); do not edit by hand.",
            '"""',
            "",
            *self.PREAMBLE,
            "",
            f"MAX_ITERATIONS = {self.max_iterations!r}",
            "",
            "",
            "def is_no_piece(x):",
            "    # isinstance, not identity: tokens may cross OS processes.",
            "    return isinstance(x, NoPiece)",
            "",
            "",
            "def normalize_outcome(y):",
            "    if isinstance(y, TaskOutcome):",
            "        return y",
            "    results, subtasks = y",
            "    return TaskOutcome(results=list(results), subtasks=list(subtasks))",
            "",
            "",
            f"{self.DEF} build_executive(kernel, table):",
            f'    """Spawn every executive {noun}; returns ({units}, sinks)."""',
            f"    {units} = []",
            "    sinks = []",
        ]
        # Group processes per processor, as the m4 story demands.
        for proc_id in mapping.arch.processor_ids():
            members = mapping.processes_on(proc_id)
            if not members:
                continue
            lines.append("")
            lines.append(f"    # ==== processor {proc_id} ====")
            for pid in members:
                process = graph[pid]
                gen = self._GENERATORS[process.kind]
                body = gen(self, pid)
                name = self.thread_name(pid)
                lines.append("")
                lines.append(f"    {self.DEF} {name}():")
                lines.append(f'        """{process.kind} process {pid!r}."""')
                lines.extend(
                    ("    " + line) if line.strip() else line
                    for line in body.rstrip("\n").split("\n")
                )
                lines.append(f"    _t = kernel.spawn_({name.__repr__()}, {name})")
                lines.append(f"    {units}.append(_t)")
                is_sink = process.kind == ProcessKind.OUTPUT and not process.params.get(
                    "discard"
                )
                if is_sink or process.kind == ProcessKind.MEM:
                    lines.append("    sinks.append(_t)")
        lines.append("")
        lines.append(f"    return {units}, sinks")
        lines.append("")
        return "\n".join(lines)


@register_target
class PythonTarget(CodegenTarget):
    """Threaded Python executive — the reference dialect.

    The same module runs on :class:`~repro.codegen.kernel.ThreadKernel`
    (the ``threads`` backend), per-process on the multiprocess kernel,
    and on the tcp worker cluster — it is the one dialect every
    in-process substrate shares.
    """

    name = "python"
    description = "Python thread executive (threads/processes/tcp backends)"
    backend = "threads"
    generator_class = ExecutiveGenerator

    def generate(
        self, mapping: Mapping, *, max_iterations: Optional[int] = None
    ) -> str:
        return self.generator_class(mapping, max_iterations).generate()
