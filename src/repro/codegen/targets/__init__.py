"""Pluggable codegen targets: every substrate is one registry entry.

The paper's portability claim — the kernel primitives are "the only
platform-dependent part of the programming environment" — made concrete
the way dace does it: emission is a registry of targets, and adding a
substrate means registering one :class:`CodegenTarget` (plus a kernel
implementing ``KERNEL_PRIMITIVES``) rather than forking ``pygen.py``.

Built-in targets:

``python``
    The reference thread executive (``threads``/``processes``/``tcp``
    backends run it).
``asyncio``
    The same skeleton bodies as coroutines on one event loop; runs on
    the ``asyncio`` execution backend.
``macro``
    SynDEx-style m4 macro-code, one program per processor (Fig. 2 of
    the paper); documentation, not runnable.
``standalone``
    A self-contained emitted program (``repro emit``): executive +
    inlined kernel primitives + inlined function table, no ``repro``
    import at runtime.
"""

from .registry import (
    MANIFEST_NAME,
    CodegenTarget,
    EmitError,
    build_manifest,
    get_target,
    list_targets,
    register_target,
    target_capabilities,
    target_names,
    write_emitted_file,
    write_emitted_set,
)

# Importing a target module registers it (the dace one-import-per-target
# idiom): each module ends in a @register_target class.
from . import python_target   # noqa: E402,F401  (registers "python")
from . import asyncio_target  # noqa: E402,F401  (registers "asyncio")
from . import macro_target    # noqa: E402,F401  (registers "macro")
from . import standalone_target  # noqa: E402,F401  (registers "standalone")

from .asyncio_target import AsyncioGenerator, AsyncioTarget
from .macro_target import MacroTarget
from .python_target import ExecutiveGenerator, PythonTarget, thread_name
from .standalone_target import StandaloneTarget, render_blackboard

__all__ = [
    "CodegenTarget",
    "EmitError",
    "MANIFEST_NAME",
    "register_target",
    "get_target",
    "target_names",
    "list_targets",
    "target_capabilities",
    "build_manifest",
    "write_emitted_file",
    "write_emitted_set",
    "ExecutiveGenerator",
    "AsyncioGenerator",
    "PythonTarget",
    "AsyncioTarget",
    "MacroTarget",
    "StandaloneTarget",
    "thread_name",
    "render_blackboard",
]
