"""The executive kernel: the only platform-dependent layer.

"The code of these primitives — which basically support thread creation,
communication and synchronisation and sequentialisation of user supplied
computation functions and of inter-processor communications — is the
only platform-dependent part of the programming environment, making it
highly portable" (section 3).

:data:`KERNEL_PRIMITIVES` documents the primitive set the macro-code is
written against; :class:`ThreadKernel` is this repo's reference
implementation (Python threads + bounded queues standing in for
Transputer processes + channels).  Porting the generated executive to a
different substrate means reimplementing exactly this class.
"""

from __future__ import annotations

import inspect
import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.trace import Trace

__all__ = [
    "KERNEL_PRIMITIVES",
    "Stop",
    "NoPiece",
    "NO_PIECE",
    "Shutdown",
    "ThreadKernel",
]

#: The kernel primitive set: name -> (signature, description).
KERNEL_PRIMITIVES: Dict[str, Tuple[str, str]] = {
    "spawn_": ("(name, body) -> thread", "create and start an executive thread"),
    "send_": ("(edge, value) -> unit", "blocking send on a logical channel"),
    "recv_": ("(edge) -> value", "blocking receive on a logical channel"),
    "try_recv_": (
        "(edge) -> value | raises queue.Empty",
        "non-blocking receive (supervisor polling; not used by generated code)",
    ),
    "call_": ("(func, *args) -> value", "run a user sequential function"),
    "stop_": ("(edge) -> unit", "propagate end-of-stream on a channel"),
    "alt_": ("(edges) -> (edge, value)", "wait on several channels (ALT)"),
    "join_": ("() -> unit", "wait for executive completion"),
}


class Stop:
    """End-of-stream token, forwarded edge-to-edge to unwind the network."""

    def __repr__(self) -> str:
        return "<stop>"


class NoPiece:
    """Placeholder for scm splits shorter than the split degree.

    Tokens cross OS-process boundaries on the multiprocess kernel, so the
    class lives here (importable, hence picklable) and the generated code
    tests with ``isinstance`` rather than object identity.
    """

    def __repr__(self) -> str:
        return "<no-piece>"


NO_PIECE = NoPiece()


class Shutdown(Exception):
    """Raised inside executive threads when the run is torn down."""


@dataclass
class _Channel:
    """A logical point-to-point channel (one per process-graph edge)."""

    q: "queue.Queue"


class ThreadKernel:
    """Threads-and-queues implementation of the kernel primitives.

    Channels are bounded so constant sources self-throttle instead of
    running arbitrarily ahead of the computation (the Transputer links
    they model are rendezvous channels).

    With ``trace`` set, every ``call_`` records a wall-clock compute span
    (µs since kernel construction) attributed to the processor hosting
    the calling thread (``placement`` maps spawned thread names to
    processor ids) — the same recording the simulator makes in simulated
    time, so Gantt rendering and busy statistics work on real runs.
    """

    def __init__(
        self,
        *,
        queue_size: int = 4,
        poll_s: float = 0.05,
        trace: Optional["Trace"] = None,
        placement: Optional[Dict[str, str]] = None,
    ):
        self._channels: Dict[str, _Channel] = {}
        self._threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._queue_size = queue_size
        self._poll_s = poll_s
        self.stop_token = Stop()
        self.trace = trace
        self.placement: Dict[str, str] = placement or {}
        self._epoch = time.perf_counter()
        #: Scratch space the generated code uses for final results.
        self.blackboard: Dict[str, Any] = {}

    # -- primitives ------------------------------------------------------------

    def channel(self, edge: str) -> _Channel:
        if edge not in self._channels:
            self._channels[edge] = _Channel(queue.Queue(maxsize=self._queue_size))
        return self._channels[edge]

    def spawn_(self, name: str, body: Callable[[], None]) -> threading.Thread:
        def runner() -> None:
            try:
                body()
            except Shutdown:
                pass

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()
        return thread

    def send_(self, edge: str, value: Any) -> None:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                channel.q.put(value, timeout=self._poll_s)
                return
            except queue.Full:
                continue

    def recv_(self, edge: str) -> Any:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                return channel.q.get(timeout=self._poll_s)
            except queue.Empty:
                continue

    def try_recv_(self, edge: str) -> Any:
        """Non-blocking receive: raises ``queue.Empty`` when idle.

        Not used by generated executives; the fault supervisor polls
        with it so one thread can watch several channels *and* run
        timeout scans between polls.
        """
        if self._stop_event.is_set():
            raise Shutdown
        return self.channel(edge).q.get_nowait()

    def stop_(self, edge: str) -> None:
        self.send_(edge, self.stop_token)

    def alt_(self, edges: List[str]) -> Tuple[str, Any]:
        """Wait for a message on any of ``edges`` (the Transputer ALT)."""
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            for edge in edges:
                try:
                    return edge, self.channel(edge).q.get_nowait()
                except queue.Empty:
                    continue
            # Sub-millisecond poll: ALT latency directly gates farm
            # throughput (one poll per collected packet).
            self._stop_event.wait(0.0002)

    @staticmethod
    def _resolve(result: Any) -> Any:
        # Async-native table functions: each call drives its own loop on
        # this thread, so awaited I/O still overlaps across threads.
        if inspect.iscoroutine(result):
            import asyncio

            return asyncio.run(result)
        return result

    def call_(self, func: Callable, *args: Any) -> Any:
        if self.trace is None:
            return self._resolve(func(*args))
        start = time.perf_counter()
        try:
            return self._resolve(func(*args))
        finally:
            end = time.perf_counter()
            name = threading.current_thread().name
            self.trace.add_compute(
                self.placement.get(name, "?"),
                name,
                (start - self._epoch) * 1e6,
                (end - self._epoch) * 1e6,
            )

    def join_(self, sinks: List[threading.Thread], timeout: float = 60.0) -> None:
        """Wait for the sink threads, then tear everything down."""
        for thread in sinks:
            thread.join(timeout)
            if thread.is_alive():
                self._stop_event.set()
                raise RuntimeError(
                    f"executive thread {thread.name!r} did not terminate"
                )
        self._stop_event.set()
        for thread in self._threads:
            thread.join(1.0)

    def is_stop(self, value: Any) -> bool:
        return isinstance(value, Stop)
