"""The executive kernel: the only platform-dependent layer.

"The code of these primitives — which basically support thread creation,
communication and synchronisation and sequentialisation of user supplied
computation functions and of inter-processor communications — is the
only platform-dependent part of the programming environment, making it
highly portable" (section 3).

:data:`KERNEL_PRIMITIVES` documents the primitive set the macro-code is
written against; :class:`ThreadKernel` is this repo's reference
implementation (Python threads + bounded queues standing in for
Transputer processes + channels).  Porting the generated executive to a
different substrate means reimplementing exactly this class.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["KERNEL_PRIMITIVES", "Stop", "Shutdown", "ThreadKernel"]

#: The kernel primitive set: name -> (signature, description).
KERNEL_PRIMITIVES: Dict[str, Tuple[str, str]] = {
    "spawn_": ("(name, body) -> thread", "create and start an executive thread"),
    "send_": ("(edge, value) -> unit", "blocking send on a logical channel"),
    "recv_": ("(edge) -> value", "blocking receive on a logical channel"),
    "call_": ("(func, *args) -> value", "run a user sequential function"),
    "stop_": ("(edge) -> unit", "propagate end-of-stream on a channel"),
    "alt_": ("(edges) -> (edge, value)", "wait on several channels (ALT)"),
    "join_": ("() -> unit", "wait for executive completion"),
}


class Stop:
    """End-of-stream token, forwarded edge-to-edge to unwind the network."""

    def __repr__(self) -> str:
        return "<stop>"


class Shutdown(Exception):
    """Raised inside executive threads when the run is torn down."""


@dataclass
class _Channel:
    """A logical point-to-point channel (one per process-graph edge)."""

    q: "queue.Queue"


class ThreadKernel:
    """Threads-and-queues implementation of the kernel primitives.

    Channels are bounded so constant sources self-throttle instead of
    running arbitrarily ahead of the computation (the Transputer links
    they model are rendezvous channels).
    """

    def __init__(self, *, queue_size: int = 4, poll_s: float = 0.05):
        self._channels: Dict[str, _Channel] = {}
        self._threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._queue_size = queue_size
        self._poll_s = poll_s
        self.stop_token = Stop()
        #: Scratch space the generated code uses for final results.
        self.blackboard: Dict[str, Any] = {}

    # -- primitives ------------------------------------------------------------

    def channel(self, edge: str) -> _Channel:
        if edge not in self._channels:
            self._channels[edge] = _Channel(queue.Queue(maxsize=self._queue_size))
        return self._channels[edge]

    def spawn_(self, name: str, body: Callable[[], None]) -> threading.Thread:
        def runner() -> None:
            try:
                body()
            except Shutdown:
                pass

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()
        return thread

    def send_(self, edge: str, value: Any) -> None:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                channel.q.put(value, timeout=self._poll_s)
                return
            except queue.Full:
                continue

    def recv_(self, edge: str) -> Any:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                return channel.q.get(timeout=self._poll_s)
            except queue.Empty:
                continue

    def stop_(self, edge: str) -> None:
        self.send_(edge, self.stop_token)

    def alt_(self, edges: List[str]) -> Tuple[str, Any]:
        """Wait for a message on any of ``edges`` (the Transputer ALT)."""
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            for edge in edges:
                try:
                    return edge, self.channel(edge).q.get_nowait()
                except queue.Empty:
                    continue
            # Sub-millisecond poll: ALT latency directly gates farm
            # throughput (one poll per collected packet).
            self._stop_event.wait(0.0002)

    @staticmethod
    def call_(func: Callable, *args: Any) -> Any:
        return func(*args)

    def join_(self, sinks: List[threading.Thread], timeout: float = 60.0) -> None:
        """Wait for the sink threads, then tear everything down."""
        for thread in sinks:
            thread.join(timeout)
            if thread.is_alive():
                self._stop_event.set()
                raise RuntimeError(
                    f"executive thread {thread.name!r} did not terminate"
                )
        self._stop_event.set()
        for thread in self._threads:
            thread.join(1.0)

    def is_stop(self, value: Any) -> bool:
        return isinstance(value, Stop)
