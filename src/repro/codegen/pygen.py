"""Executable code generation: mapped process graph → Python executive.

The SynDEx back end emits "processor-independent programs (m4
macro-code, one per processor) which are finally transformed into
compilable code by simply inlining a set of kernel primitives".  The
equivalent transformation for the Python target lives in
:mod:`repro.codegen.targets.python_target`; this module keeps the
historical entry points (:func:`generate_python`, :func:`load_executive`,
:func:`run_generated`, :func:`thread_name`) as thin veneers over the
target registry, plus the executive *loader* shared by every runnable
target.

The generated executive is functionally equivalent to both the
sequential emulation and the discrete-event simulation (the test suite
checks all three agree); unlike the simulator it really runs
concurrently, on Python threads.
"""

from __future__ import annotations

import hashlib
import sys
import threading
import types
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping
from .targets.python_target import thread_name  # noqa: F401  (re-export)

__all__ = [
    "generate_python",
    "load_executive",
    "run_generated",
    "thread_name",
    "MODULE_CACHE_SIZE",
]

#: Generated executives kept registered in ``sys.modules`` at once.  A
#: long-lived serve daemon compiles many programs per process; without a
#: bound every compile leaked a module (source + code objects) for the
#: life of the interpreter.
MODULE_CACHE_SIZE = 32

_MODULE_PREFIX = "repro_executive_"
_modules_lock = threading.Lock()
_modules: "OrderedDict[str, types.ModuleType]" = OrderedDict()


def generate_python(mapping: Mapping, *, max_iterations: Optional[int] = None) -> str:
    """Generate the Python (thread-dialect) executive source."""
    from .targets import get_target

    return get_target("python").generate(mapping, max_iterations=max_iterations)


def executive_module_name(source: str) -> str:
    """The ``sys.modules`` name a generated source loads under."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    return _MODULE_PREFIX + digest


def load_executive(source: str):
    """Compile generated executive source; returns its module namespace.

    The source is executed as a real module registered in ``sys.modules``
    under a content-addressed name, so functions defined by the executive
    have a resolvable ``__module__`` (tracebacks, pickling by reference).
    Registrations are bounded: at most :data:`MODULE_CACHE_SIZE` stay
    registered (least-recently-loaded evicted first), and re-loading the
    same source evicts the stale module and executes a fresh one — the
    caller always gets pristine module globals, never a previous run's.
    """
    name = executive_module_name(source)
    module = types.ModuleType(name)
    module.__dict__["__file__"] = f"<generated-executive {name}>"
    exec(compile(source, f"<generated-executive {name}>", "exec"), module.__dict__)
    with _modules_lock:
        stale = _modules.pop(name, None)
        if stale is not None and sys.modules.get(name) is stale:
            del sys.modules[name]
        sys.modules[name] = module
        _modules[name] = module
        while len(_modules) > MODULE_CACHE_SIZE:
            old_name, old_module = _modules.popitem(last=False)
            if sys.modules.get(old_name) is old_module:
                del sys.modules[old_name]
    return module.__dict__


def run_generated(
    mapping: Mapping,
    table,
    *,
    kernel=None,
    max_iterations: Optional[int] = None,
    args: Optional[Tuple] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    """Generate, load and run the executive on a thread-style kernel.

    ``kernel`` defaults to a fresh :class:`~repro.codegen.kernel.ThreadKernel`;
    any object implementing the in-process kernel primitives works.
    Returns the kernel blackboard: ``outputs`` / ``final_state`` for
    stream programs, ``result_<i>`` entries for one-shot programs.
    """
    from .kernel import ThreadKernel

    source = generate_python(mapping, max_iterations=max_iterations)
    module = load_executive(source)
    if kernel is None:
        kernel = ThreadKernel()
    inputs = [
        p for p in mapping.graph.by_kind(ProcessKind.INPUT) if p.func is None
    ]
    if len(args or ()) != len(inputs):
        # Validate even when args is omitted: a one-shot executive with
        # unseeded parameters would block until the join timeout.
        raise ValueError(
            f"program takes {len(inputs)} argument(s), got {len(args or ())}"
        )
    for process, value in zip(inputs, args or ()):
        kernel.blackboard[f"arg_{process.params.get('param')}"] = value
    fns = {spec.name: spec.fn for spec in table}
    _threads, sinks = module["build_executive"](kernel, fns)
    kernel.join_(sinks, timeout)
    return kernel.blackboard
