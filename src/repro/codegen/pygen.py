"""Executable code generation: mapped process graph → Python executive.

The SynDEx back end emits "processor-independent programs (m4
macro-code, one per processor) which are finally transformed into
compilable code by simply inlining a set of kernel primitives".  This
module performs the equivalent transformation for the Python target:
it *generates Python source text* — one ``proc_<id>_<process>`` thread
body per process, grouped per processor — written purely against the
kernel primitives of :mod:`repro.codegen.kernel`.  The generated module
is self-contained: compile it with :func:`load_executive` and run it
with any kernel implementation.

The generated executive is functionally equivalent to both the
sequential emulation and the discrete-event simulation (the test suite
checks all three agree); unlike the simulator it really runs
concurrently, on Python threads.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List, Optional, Tuple

from ..pnt.graph import Edge, ProcessGraph, ProcessKind
from ..syndex.distribute import Mapping

__all__ = ["generate_python", "load_executive", "run_generated", "thread_name"]


def thread_name(pid: str) -> str:
    """The executive thread name generated for process ``pid``."""
    return "proc_" + pid.replace(".", "_").replace("-", "_")


def _in_edges(graph: ProcessGraph, pid: str) -> List[Tuple[int, int]]:
    """(dst_port, edge_index) pairs, sorted by port."""
    out = []
    for idx, e in enumerate(graph.edges):
        if e.dst == pid:
            out.append((e.dst_port, idx))
    out.sort()
    return out


def _out_edges(graph: ProcessGraph, pid: str, port: int) -> List[int]:
    return [
        idx
        for idx, e in enumerate(graph.edges)
        if e.src == pid and e.src_port == port
    ]


def _send_all(indices: List[int], value_expr: str, indent: str) -> str:
    return "".join(
        f"{indent}kernel.send_('e{idx}', {value_expr})\n" for idx in indices
    )


def _stop_all(graph: ProcessGraph, pid: str, indent: str) -> str:
    lines = ""
    proc = graph[pid]
    for port in range(proc.n_out):
        for idx in _out_edges(graph, pid, port):
            lines += f"{indent}kernel.stop_('e{idx}')\n"
    return lines


class _Generator:
    def __init__(self, mapping: Mapping, max_iterations: Optional[int]):
        self.mapping = mapping
        self.graph = mapping.graph
        self.max_iterations = max_iterations

    # -- per-kind bodies ----------------------------------------------------

    def gen_input(self, pid: str) -> str:
        proc = self.graph[pid]
        outs = _out_edges(self.graph, pid, 0)
        if proc.func is None:  # one-shot parameter
            param = proc.params.get("param", pid)
            body = f"    value = kernel.blackboard['arg_{param}']\n"
            body += _send_all(outs, "value", "    ")
            body += _stop_all(self.graph, pid, "    ")
            return body
        source = repr(proc.params.get("source"))
        body = "    iterations = 0\n"
        body += "    while MAX_ITERATIONS is None or iterations < MAX_ITERATIONS:\n"
        body += "        try:\n"
        body += f"            value = kernel.call_(table[{proc.func!r}], {source})\n"
        body += "        except EndOfStream:\n"
        body += "            break\n"
        body += _send_all(outs, "value", "        ")
        body += "        iterations += 1\n"
        body += _stop_all(self.graph, pid, "    ")
        return body

    def gen_const(self, pid: str) -> str:
        proc = self.graph[pid]
        outs = _out_edges(self.graph, pid, 0)
        body = f"    value = {proc.params['value']!r}\n"
        body += "    while True:\n"
        body += _send_all(outs, "value", "        ")
        return body

    def gen_mem(self, pid: str) -> str:
        proc = self.graph[pid]
        outs = _out_edges(self.graph, pid, 0)
        loop_in = _in_edges(self.graph, pid)[0][1]
        if "init_func" in proc.params:
            init = f"kernel.call_(table[{proc.params['init_func']!r}])"
        else:
            init = repr(proc.params["init_value"])
        body = f"    state = {init}\n"
        body += "    while True:\n"
        body += _send_all(outs, "state", "        ")
        body += f"        new = kernel.recv_('e{loop_in}')\n"
        body += "        if kernel.is_stop(new):\n"
        body += f"            kernel.blackboard['final_state'] = state\n"
        body += "            break\n"
        body += "        state = new\n"
        return body

    def gen_apply(self, pid: str) -> str:
        proc = self.graph[pid]
        ins = _in_edges(self.graph, pid)
        body = "    while True:\n"
        for port, idx in ins:
            body += f"        in{port} = kernel.recv_('e{idx}')\n"
        if ins:
            stops = " or ".join(f"kernel.is_stop(in{port})" for port, _ in ins)
            body += f"        if {stops}:\n"
            body += _stop_all(self.graph, pid, "            ")
            body += "            break\n"
        # Nullary functions fire every iteration, throttled by the bounded
        # channels (like constant sources); shutdown unwinds them.
        args = ", ".join(f"in{port}" for port, _ in ins)
        body += f"        result = kernel.call_(table[{proc.func!r}], {args})\n"
        if proc.n_out == 1:
            body += _send_all(_out_edges(self.graph, pid, 0), "result", "        ")
        else:
            for port in range(proc.n_out):
                body += _send_all(
                    _out_edges(self.graph, pid, port), f"result[{port}]", "        "
                )
        return body

    def gen_worker(self, pid: str) -> str:
        proc = self.graph[pid]
        (_, in_idx), = _in_edges(self.graph, pid)
        outs = _out_edges(self.graph, pid, 0)
        body = "    while True:\n"
        body += f"        x = kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(x):\n"
        body += _stop_all(self.graph, pid, "            ")
        body += "            break\n"
        body += "        if is_no_piece(x):\n"
        body += _send_all(outs, "NO_PIECE", "            ")
        body += "            continue\n"
        body += f"        y = kernel.call_(table[{proc.func!r}], x)\n"
        body += _send_all(outs, "y", "        ")
        return body

    def gen_router(self, pid: str) -> str:
        (_, in_idx), = _in_edges(self.graph, pid)
        outs = _out_edges(self.graph, pid, 0)
        body = "    while True:\n"
        body += f"        x = kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(x):\n"
        body += _stop_all(self.graph, pid, "            ")
        body += "            break\n"
        body += _send_all(outs, "x", "        ")
        return body

    def gen_split(self, pid: str) -> str:
        proc = self.graph[pid]
        degree = proc.params["degree"]
        (_, in_idx), = _in_edges(self.graph, pid)
        body = "    while True:\n"
        body += f"        x = kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(x):\n"
        body += _stop_all(self.graph, pid, "            ")
        body += "            break\n"
        body += (
            f"        pieces = kernel.call_(table[{proc.func!r}], {degree}, x)\n"
        )
        for i in range(degree):
            piece = f"pieces[{i}] if {i} < len(pieces) else NO_PIECE"
            body += _send_all(_out_edges(self.graph, pid, i), f"({piece})", "        ")
        return body

    def gen_merge(self, pid: str) -> str:
        proc = self.graph[pid]
        degree = proc.params["degree"]
        ins = dict((port, idx) for port, idx in _in_edges(self.graph, pid))
        body = "    while True:\n"
        body += f"        x = kernel.recv_('e{ins[0]}')\n"
        body += "        parts = []\n"
        for i in range(degree):
            body += f"        parts.append(kernel.recv_('e{ins[1 + i]}'))\n"
        body += (
            "        if kernel.is_stop(x) or any(kernel.is_stop(p) for p in parts):\n"
        )
        body += _stop_all(self.graph, pid, "            ")
        body += "            break\n"
        body += "        parts = [p for p in parts if not is_no_piece(p)]\n"
        body += f"        y = kernel.call_(table[{proc.func!r}], x, parts)\n"
        body += _send_all(_out_edges(self.graph, pid, 0), "y", "        ")
        return body

    def gen_master(self, pid: str) -> str:
        proc = self.graph[pid]
        degree = proc.params["degree"]
        kind = proc.params["farm_kind"]
        ins = dict(_in_edges(self.graph, pid))
        # Port layout: in 0=z, 1=xs, 2+i=collect(i); out 0=result, 1+i=dispatch(i).
        z_idx, xs_idx = ins[0], ins[1]
        collect = {f"e{ins[2 + i]}": i for i in range(degree)}
        dispatch = [
            _out_edges(self.graph, pid, 1 + i)[0] for i in range(degree)
        ]
        result_edges = _out_edges(self.graph, pid, 0)
        body = f"    collect = {collect!r}\n"
        body += f"    dispatch = {['e%d' % d for d in dispatch]!r}\n"
        body += "    while True:\n"
        body += f"        z = kernel.recv_('e{z_idx}')\n"
        body += f"        xs = kernel.recv_('e{xs_idx}')\n"
        body += "        if kernel.is_stop(z) or kernel.is_stop(xs):\n"
        body += _stop_all(self.graph, pid, "            ")
        body += "            break\n"
        body += "        acc = z\n"
        body += "        work = list(xs)\n"
        body += f"        busy = [False] * {degree}\n"
        body += "        pending = 0\n"
        body += f"        for i in range({degree}):\n"
        body += "            if work and not busy[i]:\n"
        body += "                kernel.send_(dispatch[i], work.pop(0))\n"
        body += "                busy[i] = True\n"
        body += "                pending += 1\n"
        body += "        while pending:\n"
        body += "            edge, y = kernel.alt_(list(collect))\n"
        body += "            if kernel.is_stop(y):\n"
        body += _stop_all(self.graph, pid, "                ")
        body += "                return\n"
        body += "            i = collect[edge]\n"
        body += "            pending -= 1\n"
        body += "            busy[i] = False\n"
        if kind == "tf":
            body += "            outcome = normalize_outcome(y)\n"
            body += "            for r in outcome.results:\n"
            body += (
                f"                acc = kernel.call_(table[{proc.func!r}], acc, r)\n"
            )
            body += "            work.extend(outcome.subtasks)\n"
        else:
            body += (
                f"            acc = kernel.call_(table[{proc.func!r}], acc, y)\n"
            )
        body += "            if work:\n"
        body += "                kernel.send_(dispatch[i], work.pop(0))\n"
        body += "                busy[i] = True\n"
        body += "                pending += 1\n"
        body += _send_all(result_edges, "acc", "        ")
        return body

    def gen_output(self, pid: str) -> str:
        proc = self.graph[pid]
        (_, in_idx), = _in_edges(self.graph, pid)
        body = "    while True:\n"
        body += f"        y = kernel.recv_('e{in_idx}')\n"
        body += "        if kernel.is_stop(y):\n"
        body += "            break\n"
        if proc.params.get("discard"):
            body += "        pass\n"
        elif proc.func is not None:
            body += f"        kernel.call_(table[{proc.func!r}], y)\n"
            body += (
                "        kernel.blackboard.setdefault('outputs', []).append(y)\n"
            )
        else:
            index = proc.params.get("index", 0)
            body += f"        kernel.blackboard['result_{index}'] = y\n"
            body += "        break\n"
        return body

    # -- assembly ------------------------------------------------------------

    _GENERATORS = {
        ProcessKind.INPUT: gen_input,
        ProcessKind.CONST: gen_const,
        ProcessKind.MEM: gen_mem,
        ProcessKind.APPLY: gen_apply,
        ProcessKind.WORKER: gen_worker,
        ProcessKind.ROUTER_MW: gen_router,
        ProcessKind.ROUTER_WM: gen_router,
        ProcessKind.SPLIT: gen_split,
        ProcessKind.MERGE: gen_merge,
        ProcessKind.MASTER: gen_master,
        ProcessKind.OUTPUT: gen_output,
    }

    thread_name = staticmethod(thread_name)

    def generate(self) -> str:
        graph, mapping = self.graph, self.mapping
        lines = [
            '"""Distributed executive generated by repro.codegen.pygen.',
            "",
            f"Program: {graph.name!r}",
            f"Architecture: {mapping.arch.name!r}",
            "",
            "Written against the kernel primitives only (see",
            "repro.codegen.kernel.KERNEL_PRIMITIVES); do not edit by hand.",
            '"""',
            "",
            "from repro.core.semantics import EndOfStream, TaskOutcome",
            "from repro.codegen.kernel import NO_PIECE, NoPiece",
            "",
            f"MAX_ITERATIONS = {self.max_iterations!r}",
            "",
            "",
            "def is_no_piece(x):",
            "    # isinstance, not identity: tokens may cross OS processes.",
            "    return isinstance(x, NoPiece)",
            "",
            "",
            "def normalize_outcome(y):",
            "    if isinstance(y, TaskOutcome):",
            "        return y",
            "    results, subtasks = y",
            "    return TaskOutcome(results=list(results), subtasks=list(subtasks))",
            "",
            "",
            "def build_executive(kernel, table):",
            '    """Spawn every executive thread; returns (threads, sinks)."""',
            "    threads = []",
            "    sinks = []",
        ]
        # Group processes per processor, as the m4 story demands.
        for proc_id in mapping.arch.processor_ids():
            members = mapping.processes_on(proc_id)
            if not members:
                continue
            lines.append("")
            lines.append(f"    # ==== processor {proc_id} ====")
            for pid in members:
                process = graph[pid]
                gen = self._GENERATORS[process.kind]
                body = gen(self, pid)
                name = self.thread_name(pid)
                lines.append("")
                lines.append(f"    def {name}():")
                lines.append(f'        """{process.kind} process {pid!r}."""')
                lines.extend(
                    ("    " + line) if line.strip() else line
                    for line in body.rstrip("\n").split("\n")
                )
                lines.append(f"    _t = kernel.spawn_({name.__repr__()}, {name})")
                lines.append("    threads.append(_t)")
                is_sink = process.kind == ProcessKind.OUTPUT and not process.params.get(
                    "discard"
                )
                if is_sink or process.kind == ProcessKind.MEM:
                    lines.append("    sinks.append(_t)")
        lines.append("")
        lines.append("    return threads, sinks")
        lines.append("")
        return "\n".join(lines)


def generate_python(mapping: Mapping, *, max_iterations: Optional[int] = None) -> str:
    """Generate the Python executive source for a mapped program."""
    return _Generator(mapping, max_iterations).generate()


def load_executive(source: str):
    """Compile generated executive source; returns its module namespace."""
    namespace: Dict[str, object] = {}
    exec(compile(source, "<generated-executive>", "exec"), namespace)
    return namespace


def run_generated(
    mapping: Mapping,
    table,
    *,
    kernel=None,
    max_iterations: Optional[int] = None,
    args: Optional[Tuple] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    """Generate, load and run the executive on a thread-style kernel.

    ``kernel`` defaults to a fresh :class:`~repro.codegen.kernel.ThreadKernel`;
    any object implementing the in-process kernel primitives works.
    Returns the kernel blackboard: ``outputs`` / ``final_state`` for
    stream programs, ``result_<i>`` entries for one-shot programs.
    """
    from .kernel import ThreadKernel

    source = generate_python(mapping, max_iterations=max_iterations)
    module = load_executive(source)
    if kernel is None:
        kernel = ThreadKernel()
    inputs = [
        p for p in mapping.graph.by_kind(ProcessKind.INPUT) if p.func is None
    ]
    if len(args or ()) != len(inputs):
        # Validate even when args is omitted: a one-shot executive with
        # unseeded parameters would block until the join timeout.
        raise ValueError(
            f"program takes {len(inputs)} argument(s), got {len(args or ())}"
        )
    for process, value in zip(inputs, args or ()):
        kernel.blackboard[f"arg_{process.params.get('param')}"] = value
    fns = {spec.name: spec.fn for spec in table}
    _threads, sinks = module["build_executive"](kernel, fns)
    kernel.join_(sinks, timeout)
    return kernel.blackboard
