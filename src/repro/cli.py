"""Command-line driver for the SKiPPER environment.

The original system was driven by makefiles around the custom Caml
compiler and SynDEx; this module is the equivalent front door::

    python -m repro typecheck spec.ml --functions app:TABLE
    python -m repro compile   spec.ml --functions app:TABLE --arch ring:8 --emit summary
    python -m repro compile   spec.ml --functions app:TABLE --arch ring:8 --emit macro
    python -m repro emulate   spec.ml --functions app:TABLE --max-iterations 5
    python -m repro simulate  spec.ml --functions app:TABLE --arch ring:8 --gantt
    python -m repro run       spec.ml --functions app:TABLE --arch ring:8 --backend processes
    python -m repro run       spec.ml --functions app:TABLE --backend asyncio
    python -m repro emit      spec.ml --functions app:TABLE --arch ring:4 -o deploy/
    python -m repro run       spec.ml --functions app:TABLE --faults plan.json
    python -m repro run       spec.ml --functions app:TABLE --deadline-ms 40 --overload-policy shed-oldest
    python -m repro faults    --skeleton scm --backend processes
    python -m repro soak      --backend processes --frames 200 --seed 7
    python -m repro check     --backends simulate,threads --cases 50 --seed 7
    python -m repro worker    --connect 127.0.0.1:7070
    python -m repro run       spec.ml --functions app:TABLE --backend tcp --cluster 4
    python -m repro serve     --listen 127.0.0.1:7460 --cluster 4
    python -m repro submit    spec.ml --functions app:TABLE --connect 127.0.0.1:7460
    python -m repro ps        --connect 127.0.0.1:7460
    python -m repro stats     --connect 127.0.0.1:7460
    python -m repro backends

``--functions`` names the application's sequential-function table as
``module:attribute`` (the attribute may be a
:class:`~repro.core.functions.FunctionTable` or a zero-argument callable
returning one); the module is imported from the current directory like
any Python module.
"""

from __future__ import annotations

import argparse
import ast
import importlib
import sys
from typing import List, Optional

from .backends import BackendError, backend_names, list_backends
from .core.artifacts import ensure_parent_dir
from .core.functions import FunctionTable
from .machine.executive import RunReport
from .minicaml.compile import compile_source, typecheck_source
from .minicaml.types import type_to_str
from .pipeline import build
from .syndex import arch as arch_mod

__all__ = ["main", "parse_architecture", "load_table"]


def parse_architecture(spec: str):
    """Parse ``ring:8``, ``now:4``, ``mesh:2x3``, ``full:5``, ``chain:3``."""
    try:
        kind, _, size = spec.partition(":")
        if kind == "mesh":
            rows, _, cols = size.partition("x")
            return arch_mod.mesh(int(rows), int(cols))
        builder = {
            "ring": arch_mod.ring,
            "chain": arch_mod.chain,
            "star": arch_mod.star,
            "full": arch_mod.fully_connected,
            "now": arch_mod.now,
        }[kind]
        return builder(int(size))
    except (KeyError, ValueError):
        raise SystemExit(
            f"error: bad architecture {spec!r} "
            "(expected ring:N, chain:N, star:N, full:N, now:N or mesh:RxC)"
        )


def load_table(spec: str) -> FunctionTable:
    """Import a function table from ``module:attribute``."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise SystemExit(
            f"error: bad --functions {spec!r} (expected module:attribute)"
        )
    sys.path.insert(0, ".")
    try:
        module = importlib.import_module(module_name)
    except ImportError as err:
        raise SystemExit(f"error: cannot import {module_name!r}: {err}")
    finally:
        # Repeated in-process calls must not accumulate path entries.
        try:
            sys.path.remove(".")
        except ValueError:
            pass
    try:
        value = getattr(module, attr)
    except AttributeError:
        raise SystemExit(f"error: {module_name!r} has no attribute {attr!r}")
    if callable(value) and not isinstance(value, FunctionTable):
        value = value()
    if not isinstance(value, FunctionTable):
        raise SystemExit(
            f"error: {spec!r} is not a FunctionTable (got {type(value).__name__})"
        )
    return value


def _read_source(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as err:
        raise SystemExit(f"error: cannot read {path!r}: {err}")


def _cmd_typecheck(args) -> int:
    source = _read_source(args.spec)
    table = load_table(args.functions)
    schemes = typecheck_source(source, table)
    for name, scheme in schemes.items():
        print(f"val {name} : {type_to_str(scheme.instantiate())}")
    return 0


def _cmd_compile(args) -> int:
    source = _read_source(args.spec)
    table = load_table(args.functions)
    built = build(
        source, table, parse_architecture(args.arch), entry=args.entry,
        profile_iterations=args.profile, scheduler=args.scheduler,
    )
    if args.emit == "summary":
        print(built.graph.summary())
        print(built.mapping.summary())
        print(built.deadlock.render())
    elif args.emit == "dot":
        print(built.graph.to_dot())
    else:
        # Any registered codegen target renders to stdout.
        from .codegen.targets import get_target

        print(get_target(args.emit).generate(built.mapping))
    return 0


def _cmd_emit(args) -> int:
    from .codegen.targets import EmitError, get_target

    try:
        target = get_target(args.target)
    except EmitError as err:
        raise SystemExit(f"error: {err}")
    source = _read_source(args.spec)
    table = load_table(args.functions)
    built = build(
        source, table, parse_architecture(args.arch), entry=args.entry,
        profile_iterations=args.profile, scheduler=args.scheduler,
    )
    try:
        files = target.emit(
            built.mapping, table, args.out,
            max_iterations=args.max_iterations,
        )
    except EmitError as err:
        raise SystemExit(f"error: cannot emit {args.target!r}: {err}")
    for rel in files:
        print(f"  {args.out}/{rel}")
    print(f"emitted {len(files)} file(s) ({args.target} target) "
          f"to {args.out}")
    return 0


def _cmd_map(args) -> int:
    """Score every registered scheduling policy's mapping of one program."""
    import json

    from .pipeline import expand, profile as profile_stage
    from .sched import get_scheduler, list_schedulers, predict

    source = _read_source(args.spec)
    table = load_table(args.functions)
    arch = parse_architecture(args.arch)
    compiled = compile_source(source, table, entry=args.entry)
    graph = expand(compiled.ir, table)
    durations = edge_bytes = None
    if args.profile:
        prof = profile_stage(graph, table, max_iterations=args.profile)
        durations, edge_bytes = prof.durations(), prof.edge_bytes
    criteria = dict(
        durations=durations, edge_bytes=edge_bytes, items_hint=args.items,
        latency_budget_us=args.latency_budget_us,
        throughput_target_hz=args.throughput_target_hz,
    )
    rows = []
    for info in list_schedulers():
        mapping = get_scheduler(info["name"]).place(graph, arch, **criteria)
        estimate = predict(
            mapping, durations=durations, edge_bytes=edge_bytes,
            items_hint=args.items,
        )
        rows.append({
            "policy": info["name"],
            "description": info["description"],
            "estimate": estimate.to_dict(),
            "assignment": dict(sorted(mapping.assignment.items())),
        })

    costs = "measured costs" if durations else "structural weights"
    print(f"candidate mappings of {graph.name!r} onto {arch.name!r} "
          f"({costs}, items hint {args.items}):")
    print(f"  {'policy':<12} {'latency':>12} {'period':>12} "
          f"{'throughput':>12} {'reliability':>12}")
    for row in rows:
        e = row["estimate"]
        print(f"  {row['policy']:<12} {e['latency_us']:>10.1f}us "
              f"{e['period_us']:>10.1f}us {e['throughput_hz']:>10.1f}/s "
              f"{e['reliability']:>12.9f}")
    for label, key, best in (
        ("latency", "latency_us", min),
        ("throughput", "period_us", min),
        ("reliability", "reliability", max),
    ):
        winner = best(rows, key=lambda r: r["estimate"][key])
        print(f"  best {label}: {winner['policy']}")
    if args.json:
        ensure_parent_dir(args.json)
        with open(args.json, "w") as handle:
            json.dump({
                "program": graph.name,
                "arch": arch.name,
                "items_hint": args.items,
                "latency_budget_us": args.latency_budget_us,
                "throughput_target_hz": args.throughput_target_hz,
                "policies": rows,
            }, handle, indent=2)
            handle.write("\n")
        print(f"mappings written to {args.json}")
    return 0


def _cmd_emulate(args) -> int:
    source = _read_source(args.spec)
    table = load_table(args.functions)
    compiled = compile_source(source, table, entry=args.entry)
    result = compiled.emulate(max_iterations=args.max_iterations)
    print(f"final memory: {result!r}")
    return 0


def _write_trace(report: RunReport, path: str) -> None:
    if report.trace is None:
        print(f"warning: backend {report.backend!r} recorded no trace; "
              f"{path!r} not written", file=sys.stderr)
        return
    ensure_parent_dir(path)
    with open(path, "w") as handle:
        handle.write(report.trace.to_chrome_json(indent=2))
    print(f"trace written to {path} (chrome://tracing / Perfetto)")


def _print_report(report: RunReport, args) -> None:
    print(report.summary())
    if report.one_shot_results is not None:
        for idx, value in enumerate(report.one_shot_results):
            print(f"  result[{idx}] = {value!r}")
    elif report.outputs:
        shown = report.outputs[:8]
        tail = "" if len(report.outputs) <= 8 else f" ... ({len(report.outputs)} total)"
        print(f"  outputs: {shown!r}{tail}")
    for proc, frac in sorted(report.utilisation().items()):
        print(f"  {proc}: {100 * frac:5.1f}% busy")
    health_rows = (report.faults.health_rows()
                   if getattr(report.faults, "health_rows", None) else [])
    if health_rows:
        print(f"  {'worker':<24} {'state':<8} {'score':>9} "
              f"{'flagged':>7} {'restored':>8}")
        for row in health_rows:
            score = (f"{row['score_ms']:.2f}ms"
                     if row["score_ms"] is not None else "-")
            print(f"  {row['worker']:<24} {row['state']:<8} {score:>9} "
                  f"{row['flagged']:>7} {row['restored']:>8}")
    if getattr(args, "gantt", False) and report.trace is not None:
        from .machine.trace import render_gantt

        print(render_gantt(report.trace, width=args.gantt_width))
    if getattr(args, "trace_out", None):
        _write_trace(report, args.trace_out)


def _cmd_simulate(args) -> int:
    source = _read_source(args.spec)
    table = load_table(args.functions)
    built = build(
        source, table, parse_architecture(args.arch), entry=args.entry,
        profile_iterations=args.profile, scheduler=args.scheduler,
    )
    record = args.gantt or bool(args.trace_out)
    report = built.run(
        backend=args.backend,
        max_iterations=args.max_iterations,
        real_time=args.real_time,
        args=_parse_run_args(args.arg),
        record_trace=record,
        **_load_fault_plan(args),
        **_load_budget(args),
    )
    _print_report(report, args)
    return 0


def _add_fault_options(p) -> None:
    p.add_argument("--faults", metavar="PLAN.json", default=None,
                   help="inject faults from a FaultPlan JSON file and "
                        "enable farm supervision")
    p.add_argument("--fault-timeout", type=float, default=None, metavar="S",
                   help="per-packet dispatch deadline in seconds "
                        "(real backends; heartbeat deadline is S/2)")
    p.add_argument("--no-hedge", action="store_true",
                   help="disable hedged re-dispatch (keep limplock "
                        "detection and health-weighted dispatch) — for "
                        "A/B runs against the gray-failure defense")
    p.add_argument("--no-health", action="store_true",
                   help="disable the whole gray-failure defense layer "
                        "(limplock detection, demotion and hedging)")


def _add_realtime_options(p) -> None:
    from .realtime import OVERLOAD_POLICIES

    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="per-frame latency budget; attaches the realtime "
                        "layer to stream runs (deadline watchdog, bounded "
                        "admission, frame ledger)")
    p.add_argument("--overload-policy", choices=OVERLOAD_POLICIES,
                   default="block",
                   help="what to do when the admission buffer overflows "
                        "(default: block)")
    p.add_argument("--max-in-flight", type=int, default=4, metavar="N",
                   help="frames allowed between admission and delivery "
                        "(default: 4)")
    p.add_argument("--frame-period-ms", type=float, default=0.0,
                   metavar="MS",
                   help="pace the stream source to one frame per MS "
                        "(default: free-running)")


def _load_budget(args) -> dict:
    """Backend options implementing ``--deadline-ms`` and friends."""
    if getattr(args, "deadline_ms", None) is None:
        return {}
    from .realtime import LatencyBudget

    try:
        budget = LatencyBudget(
            deadline_ms=args.deadline_ms,
            policy=args.overload_policy,
            max_in_flight=args.max_in_flight,
            frame_period_ms=args.frame_period_ms,
        )
    except ValueError as err:
        raise SystemExit(f"error: bad latency budget: {err}")
    return {"budget": budget}


def _load_fault_plan(args) -> dict:
    """Backend options implementing ``--faults PLAN.json``."""
    if not getattr(args, "faults", None):
        return {}
    from .faults import FaultPlan, FaultPolicy, PlanError

    try:
        plan = FaultPlan.load(args.faults)
    except (OSError, PlanError) as err:
        raise SystemExit(f"error: cannot load fault plan: {err}")
    options = {"fault_plan": plan}
    policy_kwargs = {}
    if getattr(args, "fault_timeout", None):
        policy_kwargs.update(
            packet_timeout_s=args.fault_timeout,
            heartbeat_timeout_s=args.fault_timeout / 2,
        )
    if getattr(args, "no_health", False):
        from .health import HealthPolicy
        policy_kwargs["health"] = HealthPolicy(enabled=False)
    elif getattr(args, "no_hedge", False):
        from .health import HealthPolicy
        policy_kwargs["health"] = HealthPolicy(hedge_enabled=False)
    if policy_kwargs:
        options["fault_policy"] = FaultPolicy(**policy_kwargs)
    return options


def _parse_run_args(values: List[str]) -> Optional[tuple]:
    if not values:
        return None
    parsed = []
    for text in values:
        try:
            parsed.append(ast.literal_eval(text))
        except (SyntaxError, ValueError):
            parsed.append(text)  # bare words pass through as strings
    return tuple(parsed)


def _cmd_run(args) -> int:
    source = _read_source(args.spec)
    table = load_table(args.functions)
    built = build(
        source, table, parse_architecture(args.arch), entry=args.entry,
        profile_iterations=args.profile, scheduler=args.scheduler,
    )
    record = args.gantt or bool(args.trace_out)
    options = _load_fault_plan(args)
    options.update(_load_budget(args))
    if args.backend == "tcp" and args.scheduler:
        # The same policy also drives the coordinator's processor->worker
        # assignment half.
        options["scheduler"] = args.scheduler
    if args.start_method:
        options["start_method"] = args.start_method
    if getattr(args, "transport", None):
        options["transport"] = args.transport
    if getattr(args, "cluster", None):
        options["cluster_size"] = args.cluster
    if getattr(args, "listen", None):
        options["listen"] = args.listen
    try:
        report = built.run(
            backend=args.backend,
            max_iterations=args.max_iterations,
            args=_parse_run_args(args.arg),
            record_trace=record,
            timeout=args.timeout,
            **options,
        )
    except (BackendError, ValueError) as err:
        raise SystemExit(f"error: {err}")
    _print_report(report, args)
    return 0


def _cmd_check(args) -> int:
    from .conformance import run_conformance

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if not backends:
        raise SystemExit("error: --backends names no backend")
    unknown = sorted(set(backends) - set(backend_names()))
    if unknown:
        raise SystemExit(
            f"error: unknown backend(s) {', '.join(unknown)} "
            f"(available: {', '.join(backend_names())})"
        )
    report = run_conformance(
        backends=backends,
        cases=args.cases,
        seed=args.seed,
        faults=args.faults,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        timeout=args.timeout,
        log=print,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_faults(args) -> int:
    from .faults.demo import main as demo_main

    return demo_main([])


def _cmd_soak(args) -> int:
    from .realtime.soak import main as soak_main

    return soak_main([])


def _cmd_worker(args) -> int:
    from .net.worker import worker_main

    return worker_main(
        args.connect,
        retries=args.retries,
        backoff_s=args.backoff_ms / 1000.0,
    )


def _cmd_serve(args) -> int:
    from .serve.server import serve_main

    return serve_main(
        args.listen,
        cluster_size=args.cluster,
        workers_per_run=args.workers_per_run,
        cache_entries=args.cache_size,
        max_concurrent=args.max_concurrent,
        ready_file=args.ready_file,
    )


def _tenant_policy(args):
    if getattr(args, "tenant_policy", None) is None:
        return None
    from .realtime import LatencyBudget

    try:
        return LatencyBudget(
            deadline_ms=args.tenant_deadline_ms,
            policy=args.tenant_policy,
            max_in_flight=args.tenant_max_in_flight,
            queue_depth=args.tenant_queue_depth,
        )
    except ValueError as err:
        raise SystemExit(f"error: bad tenant policy: {err}")


def _cmd_submit(args) -> int:
    from .serve.client import ServeClient

    source = _read_source(args.spec)
    table = load_table(args.functions)
    arch = parse_architecture(args.arch)
    options = _load_fault_plan(args)
    options.update(_load_budget(args))
    with ServeClient(
        args.connect, tenant=args.tenant, tenant_policy=_tenant_policy(args),
    ) as client:
        outcomes = [
            client.submit(
                source, table, arch,
                entry=args.entry,
                max_iterations=args.max_iterations,
                args=_parse_run_args(args.arg),
                timeout=args.timeout,
                **options,
            )
            for _ in range(args.count)
        ]
        failures = 0
        for idx, outcome in enumerate(outcomes):
            doc = outcome.wait(args.timeout + 60.0)
            label = f"[{idx}] " if args.count > 1 else ""
            warm = "warm" if doc.get("cache_hit") else "cold"
            if doc["status"] == "ok":
                print(f"{label}ok ({warm} cache)")
                _print_report(doc["report"], args)
            else:
                failures += 1
                detail = doc.get("error", "").strip().splitlines()
                print(f"{label}{doc['status']}"
                      f"{': ' + detail[-1] if detail else ''}")
    return 1 if failures else 0


def _cmd_ps(args) -> int:
    from .serve.client import ServeClient

    with ServeClient(args.connect) as client:
        doc = client.ps_doc()
    rows = doc.get("runs", [])
    if not rows:
        print("no live requests")
    else:
        print(f"  {'id':>5} {'tenant':<12} {'state':<8} {'cache':<6} age")
        for row in rows:
            print(f"  {row['id']:>5} {row['tenant']:<12} {row['state']:<8} "
                  f"{'warm' if row['cache_hit'] else 'cold':<6} "
                  f"{row['age_s']:.1f}s")
    health = doc.get("health", {})
    if health:
        print("worker health (last supervised run per tenant):")
        print(f"  {'tenant':<12} {'worker':<24} {'state':<8} "
              f"{'score':>9} {'flagged':>7}")
        for tenant, entries in sorted(health.items()):
            for row in entries:
                score = (f"{row['score_ms']:.2f}ms"
                         if row.get("score_ms") is not None else "-")
                print(f"  {tenant:<12} {row['worker']:<24} "
                      f"{row['state']:<8} {score:>9} {row['flagged']:>7}")
    return 0


def _cmd_stats(args) -> int:
    import json

    from .serve.client import ServeClient

    with ServeClient(args.connect) as client:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_transports(args) -> int:
    from .shm import list_transports, transport_capabilities

    descriptions = list_transports()
    capabilities = transport_capabilities()
    flag = lambda on: "yes" if on else "-"  # noqa: E731
    print(f"  {'transport':<10} {'shm':<5} {'batching':<9} "
          f"{'prealloc':<9} description")
    for name in sorted(descriptions):
        caps = capabilities[name]
        print(f"  {name:<10} {flag(caps['shared_memory']):<5} "
              f"{flag(caps['batching']):<9} {flag(caps['preallocated']):<9} "
              f"{descriptions[name]}")
    return 0


def _cmd_backends(args) -> int:
    from .backends import backend_capabilities

    descriptions = list_backends()
    capabilities = backend_capabilities()
    flag = lambda on: "yes" if on else "-"  # noqa: E731
    print(f"  {'backend':<10} {'faults':<7} {'realtime':<9} "
          f"{'distributed':<12} description")
    for name in sorted(descriptions):
        caps = capabilities[name]
        print(f"  {name:<10} {flag(caps['faults']):<7} "
              f"{flag(caps['realtime']):<9} {flag(caps['distributed']):<12} "
              f"{descriptions[name]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # ``faults`` owns its whole option surface (argparse.REMAINDER cannot
    # pass through leading ``--option`` tokens), so hand over early.
    if argv[:1] == ["faults"]:
        from .faults.demo import main as demo_main

        return demo_main(argv[1:])
    if argv[:1] == ["soak"]:
        from .realtime.soak import main as soak_main

        return soak_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SKiPPER: skeleton-based parallel programming environment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, arch=False):
        p.add_argument("spec", help="the .ml specification file")
        p.add_argument(
            "--functions", required=True,
            help="sequential-function table as module:attribute",
        )
        p.add_argument("--entry", default="main", help="entry binding")
        if arch:
            p.add_argument(
                "--arch", default="ring:8",
                help="target architecture (ring:N, now:N, mesh:RxC, ...)",
            )
            p.add_argument(
                "--profile", type=int, default=0, metavar="N",
                help="profile N iterations on one processor and use the "
                     "measured costs for placement (AAA adequation); "
                     "note: consumes N stream items",
            )
            p.add_argument(
                "--scheduler", default=None, metavar="POLICY",
                help="placement policy (round-robin, aaa, bicriteria; "
                     "default: the AAA heuristic — see `repro map`)",
            )

    p = sub.add_parser("typecheck", help="infer and print top-level types")
    common(p)
    p.set_defaults(fn=_cmd_typecheck)

    p = sub.add_parser("compile", help="compile, map, and emit artefacts")
    common(p, arch=True)
    p.add_argument(
        "--emit",
        choices=("summary", "dot", "macro", "python", "asyncio"),
        default="summary",
    )
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser(
        "emit",
        help="emit a deployable program directory (repro emit -o dir/)",
    )
    common(p, arch=True)
    p.add_argument("-o", "--out", required=True, metavar="DIR",
                   help="output directory (created if missing)")
    p.add_argument("--target", default="standalone",
                   help="codegen target (default: standalone — a "
                        "self-contained program with no repro import)")
    p.add_argument("--max-iterations", type=int, default=None,
                   help="bake a stream bound into the emitted executive")
    p.set_defaults(fn=_cmd_emit)

    p = sub.add_parser(
        "map",
        help="score every scheduling policy's mapping (latency / "
             "throughput / reliability)",
    )
    common(p, arch=True)
    p.add_argument("--items", type=int, default=8,
                   help="items per farm iteration the cost model assumes "
                        "(default: 8)")
    p.add_argument("--latency-budget-us", type=float, default=None,
                   metavar="US",
                   help="bi-criteria mode: maximise throughput subject to "
                        "this latency budget")
    p.add_argument("--throughput-target-hz", type=float, default=None,
                   metavar="HZ",
                   help="bi-criteria mode: minimise latency subject to "
                        "this throughput target")
    p.add_argument("--json", metavar="FILE", default=None,
                   help="write the candidate mappings as JSON to FILE")
    p.set_defaults(fn=_cmd_map)

    p = sub.add_parser("emulate", help="run the sequential emulation")
    common(p)
    p.add_argument("--max-iterations", type=int, default=None)
    p.set_defaults(fn=_cmd_emulate)

    p = sub.add_parser("simulate", help="run on the simulated machine")
    common(p, arch=True)
    p.add_argument("--max-iterations", type=int, default=None)
    p.add_argument("--arg", action="append", default=[], metavar="VALUE",
                   help="one-shot input value (Python literal; repeatable)")
    p.add_argument("--real-time", action="store_true",
                   help="25 Hz frame timing with frame skipping")
    p.add_argument("--backend", choices=backend_names(), default="simulate",
                   help="execution backend (default: simulate)")
    p.add_argument("--gantt", action="store_true",
                   help="print a text Gantt chart of the run")
    p.add_argument("--gantt-width", type=int, default=72)
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write the trace as Chrome trace-event JSON")
    _add_fault_options(p)
    _add_realtime_options(p)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "run", help="execute on a real backend (threads/processes)",
    )
    common(p, arch=True)
    p.add_argument("--backend", choices=backend_names(), default="threads",
                   help="execution backend (default: threads)")
    p.add_argument("--max-iterations", type=int, default=None)
    p.add_argument("--arg", action="append", default=[], metavar="VALUE",
                   help="one-shot input value (Python literal; repeatable)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="abort a (deadlocked) run after SECONDS")
    p.add_argument("--start-method", default=None,
                   choices=("fork", "spawn", "forkserver"),
                   help="multiprocessing start method (processes backend)")
    p.add_argument("--transport", default=None, metavar="NAME",
                   help="intra-host transport for the processes backend "
                        "(queue|ring; default from REPRO_TRANSPORT)")
    p.add_argument("--cluster", type=int, default=None, metavar="N",
                   help="tcp backend: spawn a private localhost cluster "
                        "of N workers (default: shared 4-worker cluster)")
    p.add_argument("--listen", metavar="HOST:PORT", default=None,
                   help="tcp backend: bind there and wait for externally "
                        "started `repro worker --connect` processes "
                        "(--cluster gives the count to wait for)")
    p.add_argument("--gantt", action="store_true",
                   help="print a text Gantt chart of the run")
    p.add_argument("--gantt-width", type=int, default=72)
    p.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write the trace as Chrome trace-event JSON")
    _add_fault_options(p)
    _add_realtime_options(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "check",
        help="cross-backend conformance fuzzing (differential + trace "
             "invariants)",
    )
    p.add_argument("--backends", default="simulate,threads",
                   help="comma-separated backends to check against the "
                        "emulation reference (default: simulate,threads)")
    p.add_argument("--cases", type=int, default=25, metavar="N",
                   help="number of generated cases (default: 25)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed of the case stream (default: 0)")
    p.add_argument("--faults", action="store_true",
                   help="also generate seeded fault plans (crash/delay on "
                        "farm workers)")
    p.add_argument("--corpus", metavar="DIR", default=None,
                   help="replay this reproducer corpus first and write "
                        "shrunk failures into it")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-run deadline in seconds (real backends)")
    p.add_argument("--no-shrink", action="store_true",
                   help="keep failing cases unshrunk (faster triage loop)")
    p.set_defaults(fn=_cmd_check)

    # Listed for --help only; main() dispatches to the demo before parsing.
    p = sub.add_parser(
        "faults",
        help="demonstrate fault injection and supervised recovery",
        add_help=False,
    )
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "soak",
        help="chaos-soak a stream under a latency budget (frame "
             "conservation proof)",
        add_help=False,
    )
    p.set_defaults(fn=_cmd_soak)

    p = sub.add_parser(
        "worker",
        help="serve a tcp-backend coordinator as a cluster worker",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the coordinator's listening address")
    p.add_argument("--retries", type=int, default=8,
                   help="consecutive failed dials before giving up "
                        "(default: 8)")
    p.add_argument("--backoff-ms", type=float, default=50.0,
                   help="initial reconnect backoff, doubled per failure "
                        "(default: 50)")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the compile-once/run-many service daemon",
    )
    p.add_argument("--listen", metavar="HOST:PORT", default="127.0.0.1:7460",
                   help="bind the client-facing endpoint there "
                        "(default: 127.0.0.1:7460; port 0 picks a free one)")
    p.add_argument("--cluster", type=int, default=4, metavar="N",
                   help="size of the persistent worker pool (default: 4)")
    p.add_argument("--workers-per-run", type=int, default=1, metavar="N",
                   help="workers checked out per run (default: 1)")
    p.add_argument("--cache-size", type=int, default=64, metavar="N",
                   help="compiled-artefact cache budget (default: 64)")
    p.add_argument("--max-concurrent", type=int, default=None, metavar="N",
                   help="run slots (default: pool size / workers-per-run)")
    p.add_argument("--ready-file", metavar="FILE", default=None,
                   help="write the bound address there once listening "
                        "(for scripts)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a program to a running `repro serve` daemon",
    )
    common(p, arch=True)
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the daemon's client endpoint")
    p.add_argument("--tenant", default="default",
                   help="tenant name for admission control and accounting")
    p.add_argument("--count", type=int, default=1, metavar="N",
                   help="submit the request N times concurrently")
    p.add_argument("--max-iterations", type=int, default=None)
    p.add_argument("--arg", action="append", default=[], metavar="VALUE",
                   help="one-shot input value (Python literal; repeatable)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-run deadline in seconds on the daemon")
    p.add_argument("--tenant-policy", default=None,
                   choices=("block", "shed-newest", "shed-oldest", "degrade"),
                   help="admission policy when this tenant's request "
                        "queue is full (default: the daemon's)")
    p.add_argument("--tenant-deadline-ms", type=float, default=60_000.0,
                   help="submit-to-result turnaround budget (default: 60s)")
    p.add_argument("--tenant-queue-depth", type=int, default=8)
    p.add_argument("--tenant-max-in-flight", type=int, default=2)
    _add_fault_options(p)
    _add_realtime_options(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "ps", help="list a serve daemon's live requests",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.set_defaults(fn=_cmd_ps)

    p = sub.add_parser(
        "stats",
        help="print a serve daemon's cache/tenant/pool statistics",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "backends",
        help="list the execution backends and their capability matrix",
    )
    p.set_defaults(fn=_cmd_backends)

    p = sub.add_parser(
        "transports",
        help="list the intra-host transports of the processes backend",
    )
    p.set_defaults(fn=_cmd_transports)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
