"""Greedy shrinking of a failing conformance case.

Given a failing :class:`~repro.conformance.generator.CaseSpec` and a
predicate that re-runs the oracle, :func:`shrink_case` repeatedly tries
structure-reducing transformations — drop a fault, drop a stage, lower
a farm degree, simplify the input, shrink the machine — keeping any
candidate that still fails, until a fixpoint (or the probe budget runs
out).  The result is the minimal reproducer that lands in the corpus.

Stage removal renumbers skeleton instance ids (``df0``, ``tf1``, ... are
assigned by binding order), so fault events are re-targeted through a
(stage index, branch) coordinate that survives the edit.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .generator import CaseSpec, chain_tags

__all__ = ["shrink_case"]

#: (stage index, branch key or None) -> skeleton instance coordinates.
FarmKey = Tuple[int, Optional[str]]


def _farm_coords(spec: CaseSpec) -> Dict[str, Tuple[FarmKey, int]]:
    """Map each farm's skeleton id to ((stage, branch), degree).

    Mirrors the pnt expander's naming: one running counter over all
    skeleton bindings, prefixed by the skeleton kind.
    """
    coords: Dict[str, Tuple[FarmKey, int]] = {}
    counter = 0
    for i, stage in enumerate(spec.stages):
        op = stage["op"]
        if op in ("df", "dfl"):
            coords[f"df{counter}"] = ((i, None), int(stage["degree"]))
            counter += 1
        elif op == "tf":
            coords[f"tf{counter}"] = ((i, None), int(stage["degree"]))
            counter += 1
        elif op == "scm":
            counter += 1
        elif op == "fanout":
            for branch in ("left", "right"):
                coords[f"df{counter}"] = (
                    (i, branch), int(stage[branch]["degree"])
                )
                counter += 1
    return coords


def _retarget_faults(old: CaseSpec, new: CaseSpec) -> Optional[CaseSpec]:
    """Rewrite ``new``'s fault process ids after a stage edit.

    ``new.faults`` still carries the *old* spec's skeleton ids; translate
    each through its (stage, branch) coordinate.  Faults whose farm was
    removed, or whose worker index no longer exists, are dropped; a
    crash left alone on a degree-1 farm makes the candidate invalid
    (that loss is legitimately unrecoverable, not a conformance bug).
    """
    old_coords = _farm_coords(old)
    new_by_key = {
        key: (sid, degree)
        for sid, (key, degree) in _farm_coords(new).items()
    }
    # Stage indices may have shifted on removal: map old index -> new.
    index_of = {id(s): i for i, s in enumerate(new.stages)}
    faults: List[Dict[str, Any]] = []
    for event in new.faults:
        process = event.get("process", "")
        sid, _, worker = process.partition(".worker")
        if sid not in old_coords or not worker.isdigit():
            return None  # untranslatable event: refuse the candidate
        (old_idx, branch), _old_degree = old_coords[sid]
        if old_idx >= len(old.stages):
            return None
        stage_obj = old.stages[old_idx]
        new_idx = index_of.get(id(stage_obj))
        if new_idx is None and len(new.stages) == len(old.stages):
            new_idx = old_idx  # in-place stage edit: position is stable
        if new_idx is None:
            continue  # the faulted stage was removed; drop its fault
        entry = new_by_key.get((new_idx, branch))
        if entry is None:
            continue
        new_sid, degree = entry
        widx = int(worker)
        if widx >= degree:
            continue  # the faulted worker was shrunk away
        if event.get("kind") == "crash" and degree < 2:
            return None  # crash with no survivor: not a valid repro
        moved = dict(event)
        moved["process"] = f"{new_sid}.worker{widx}"
        faults.append(moved)
    new.faults = faults
    return new


def _with_stages(spec: CaseSpec, stages: List[Dict]) -> Optional[CaseSpec]:
    """A candidate with edited stages (faults retargeted), or None."""
    cand = CaseSpec(
        seed=spec.seed, kind=spec.kind, arch=spec.arch,
        input=list(spec.input), iterations=spec.iterations,
        stages=stages, faults=[dict(f) for f in spec.faults],
    )
    if chain_tags(cand) is None:
        return None
    return _retarget_faults(spec, cand)


def _candidates(spec: CaseSpec) -> Iterator[CaseSpec]:
    """Simpler variants of ``spec``, most aggressive first."""
    # 1. Fewer faults (a fault-free repro is the most valuable kind).
    for i in range(len(spec.faults)):
        cand = copy.deepcopy(spec)
        del cand.faults[i]
        yield cand

    # 2. Fewer stages.  Stage dicts keep identity through the list copy
    #    below, which _retarget_faults uses to follow the renumbering.
    for i in range(len(spec.stages)):
        stages = [s for j, s in enumerate(spec.stages) if j != i]
        cand = _with_stages(spec, stages)
        if cand is not None:
            yield cand

    # 3. A fan-out collapses to its left branch.
    for i, stage in enumerate(spec.stages):
        if stage["op"] == "fanout":
            left = stage["left"]
            stages = list(spec.stages)
            stages[i] = {"op": "df", "comp": left["comp"],
                         "acc": left["acc"], "degree": left["degree"]}
            cand = _with_stages(spec, stages)
            if cand is not None:
                yield cand

    # 4. Smaller farm degrees.
    for i, stage in enumerate(spec.stages):
        degrees = []
        if "degree" in stage:
            degrees = [(None, int(stage["degree"]))]
        elif stage["op"] == "fanout":
            degrees = [(b, int(stage[b]["degree"]))
                       for b in ("left", "right")]
        for branch, degree in degrees:
            for smaller in {1, degree // 2} - {0, degree}:
                stages = copy.deepcopy(spec.stages)
                if branch is None:
                    stages[i]["degree"] = smaller
                else:
                    stages[i][branch]["degree"] = smaller
                # deepcopy broke dict identity; rebuild it for retargeting
                for j, s in enumerate(stages):
                    if j != i:
                        stages[j] = spec.stages[j]
                cand = _with_stages(spec, stages)
                if cand is not None:
                    yield cand

    # 5. Simpler input data.
    shrunk_inputs: List[List[int]] = []
    xs = spec.input
    if xs:
        shrunk_inputs.append([])
        if len(xs) > 1:
            shrunk_inputs.append(xs[:len(xs) // 2])
            shrunk_inputs.append(xs[len(xs) // 2:])
            shrunk_inputs.append(xs[1:])
        halved = [x // 2 for x in xs]
        if halved != xs:
            shrunk_inputs.append(halved)
    for inp in shrunk_inputs:
        cand = copy.deepcopy(spec)
        cand.input = inp
        yield cand

    # 6. Fewer stream iterations.
    if spec.iterations > 1:
        cand = copy.deepcopy(spec)
        cand.iterations = 1
        yield cand

    # 7. A smaller, simpler machine.
    kind, n = spec.arch
    for smaller in ((("ring", 1),) if (kind, n) != ("ring", 1) else ()):
        cand = copy.deepcopy(spec)
        cand.arch = smaller
        yield cand
    if n > 1:
        cand = copy.deepcopy(spec)
        cand.arch = (kind, max(1, n // 2))
        yield cand


def shrink_case(
    spec: CaseSpec,
    is_failing: Callable[[CaseSpec], bool],
    *,
    budget: int = 150,
) -> CaseSpec:
    """Reduce ``spec`` to a (locally) minimal still-failing case.

    ``is_failing`` re-runs the oracle on a candidate; any failure counts
    (the shrunk case may fail differently from the original — it is
    still a bug).  At most ``budget`` oracle probes are spent.
    """
    current = spec
    probes = 0
    improved = True
    while improved and probes < budget:
        improved = False
        for cand in _candidates(current):
            if probes >= budget:
                break
            if cand.size() >= current.size():
                continue
            probes += 1
            if is_failing(cand):
                current = cand
                improved = True
                break  # restart candidate generation from the new base
    return current
