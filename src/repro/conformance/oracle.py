"""The differential + invariant oracle for one conformance case.

:func:`run_case` elaborates a :class:`~repro.conformance.generator.CaseSpec`,
establishes the sequential-emulation reference (the left branch of the
paper's Fig. 2), then executes the same program on each requested
backend and demands (a) bit-identical outputs and (b) a clean bill from
the trace invariant checker.  The first discrepancy comes back as a
:class:`CaseFailure`; ``None`` means the case conforms everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..backends import get_backend
from ..faults import FaultPlan, FaultPolicy, FaultSpec
from ..machine.costs import FAST_TEST
from ..pnt import expand_program
from ..syndex.distribute import Mapping, distribute
from .functions import make_counting_table, reset_stream
from .generator import BuiltCase, CaseSpec, build_case, make_arch
from .invariants import check_trace_invariants

__all__ = ["CaseFailure", "run_case", "fault_plan_of"]

#: Failure phases, in pipeline order.
PHASES = ("build", "reference", "run", "differential", "invariant")

#: Snappy supervision for injected faults on real backends (the
#: interactive defaults would dominate the fuzzing budget).
CHECK_POLICY = FaultPolicy(
    packet_timeout_s=0.3,
    heartbeat_timeout_s=0.15,
    poll_s=0.002,
)


@dataclass
class CaseFailure:
    """One conformance violation, with everything needed to reproduce it."""

    spec: CaseSpec
    phase: str       # see PHASES
    backend: Optional[str]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "backend": self.backend,
            "detail": self.detail,
        }

    def describe(self) -> str:
        where = f" [{self.backend}]" if self.backend else ""
        return f"case seed={self.spec.seed} {self.phase}{where}: {self.detail}"


def fault_plan_of(spec: CaseSpec) -> Optional[FaultPlan]:
    """The case's concrete fault plan (None when fault-free)."""
    if not spec.faults:
        return None
    return FaultPlan(
        events=[FaultSpec.from_dict(dict(e)) for e in spec.faults],
        seed=spec.seed,
    )


def _diff_reports(reference, report) -> Optional[str]:
    """First observable difference against the emulation reference."""
    if report.outputs != reference.outputs:
        return (f"outputs diverge: {report.outputs!r} != "
                f"{reference.outputs!r} (reference)")
    if report.final_state != reference.final_state:
        return (f"final state diverges: {report.final_state!r} != "
                f"{reference.final_state!r} (reference)")
    if (reference.one_shot_results is not None
            and report.one_shot_results != reference.one_shot_results):
        return (f"one-shot results diverge: {report.one_shot_results!r} != "
                f"{reference.one_shot_results!r} (reference)")
    return None


def build_mapping(built: BuiltCase) -> Mapping:
    """Expand and place the case once (shared by every backend run)."""
    graph = expand_program(built.program, built.table)
    return distribute(graph, make_arch(built.spec))


def run_case(
    spec: CaseSpec,
    backends: Sequence[str],
    *,
    timeout: float = 30.0,
) -> Optional[CaseFailure]:
    """Run one case differentially; the first failure, or None."""
    try:
        built = build_case(spec)
        mapping = build_mapping(built)
    except Exception as err:  # noqa: BLE001 - any build error is a finding
        return CaseFailure(spec, "build", None, f"{type(err).__name__}: {err}")

    # Sequential-emulation reference, on a call-counting shadow table so
    # the invariant checker knows how many packets each farm owes.
    counting_table, expected_calls = make_counting_table(built.table)
    reset_stream()
    try:
        reference = get_backend("emulate").run(
            None, counting_table,
            program=built.program,
            args=built.args,
            max_iterations=built.max_iterations,
        )
    except Exception as err:  # noqa: BLE001
        return CaseFailure(
            spec, "reference", "emulate", f"{type(err).__name__}: {err}"
        )
    expected_calls = dict(expected_calls)  # freeze the reference's counts

    plan = fault_plan_of(spec)
    for name in backends:
        if name == "emulate":
            continue  # it *is* the reference
        backend = get_backend(name)
        options: Dict[str, Any] = {}
        if plan is not None:
            if not backend.supports_faults:
                # A fault case still exercises every other backend; a
                # backend that cannot inject (asyncio, standalone) just
                # skips the fault legs rather than failing them.
                continue
            options["fault_plan"] = fault_plan_of(spec)  # fresh matcher state
            if backend.real:
                options["fault_policy"] = CHECK_POLICY
        reset_stream()
        try:
            report = backend.run(
                mapping, built.table,
                program=built.program,
                costs=FAST_TEST,
                args=built.args,
                max_iterations=built.max_iterations,
                record_trace=True,
                timeout=timeout,
                **options,
            )
        except Exception as err:  # noqa: BLE001
            return CaseFailure(
                spec, "run", name, f"{type(err).__name__}: {err}"
            )

        detail = _diff_reports(reference, report)
        if detail is not None:
            return CaseFailure(spec, "differential", name, detail)

        # The simulator is deterministic and fully serialised, so it
        # answers to the strictest invariants; real backends get the
        # clock-independent subset.
        if name == "simulate":
            violations = check_trace_invariants(
                report, mapping, expected_calls, strict_serial=True
            )
        else:
            violations = check_trace_invariants(report, mapping, None)
        if violations:
            return CaseFailure(
                spec, "invariant", name, "; ".join(violations[:4])
            )
    return None


def available_backends(names: Sequence[str]) -> List[str]:
    """The subset of ``names`` that can run here (registry-checked)."""
    from ..backends import BackendError

    usable = []
    for name in names:
        try:
            get_backend(name)
        except BackendError:
            continue
        usable.append(name)
    return usable
