"""Trace invariants: the second oracle of the conformance harness.

The differential oracle proves a backend produced the *right answer*;
these checks prove it got there by the *right execution* — catching bugs
like a master double-dispatching a packet whose accumulator happens to
be idempotent, a worker computing past Stop, or a crash the supervisor
silently swallowed.

All checks are phrased over artefacts every backend already reports
(:class:`~repro.machine.trace.Trace` spans,
:class:`~repro.faults.report.FaultReport` records), so the checker needs
no backend cooperation.  Violations come back as human-readable strings;
an empty list means the execution was clean.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from ..machine.executive import RunReport
from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping

__all__ = [
    "check_trace_invariants",
    "check_fault_accounting",
    "check_frame_conservation",
    "check_deadline_accounting",
]

#: Slack for float comparisons on span endpoints (µs).
EPS = 1e-6


def _packet_conservation(
    trace, mapping: Mapping, expected_calls: Dict[str, int]
) -> List[str]:
    """Worker firing counts must match the sequential emulation exactly.

    For a df/tf farm: every comp call of the emulation corresponds to
    exactly one worker compute span — no packet is lost, duplicated, or
    invented, even across crash re-dispatches (a crashed firing records
    no span; its re-dispatch records the one span the packet is owed).

    For scm: every split firing dispatches exactly ``degree`` pieces
    (NoPiece padding included), so worker spans = degree x split calls.
    """
    violations: List[str] = []
    graph = mapping.graph
    owner_spans = Counter(span.owner for span in trace.compute)

    def worker_span_count(sid: str) -> int:
        workers = [
            p for p in graph.skeleton_processes(sid)
            if p.kind == ProcessKind.WORKER
        ]
        return sum(owner_spans.get(w.id, 0) for w in workers), workers

    for master in graph.by_kind(ProcessKind.MASTER):
        sid = master.skeleton
        got, workers = worker_span_count(sid)
        if not workers:
            continue
        comp = workers[0].func
        want = expected_calls.get(comp, 0)
        if got != want:
            violations.append(
                f"packet conservation: farm {sid} fired {got} worker "
                f"span(s) but emulation called {comp!r} {want} time(s)"
            )
    for split in graph.by_kind(ProcessKind.SPLIT):
        sid = split.skeleton
        got, workers = worker_span_count(sid)
        degree = len(workers)
        split_calls = expected_calls.get(split.func, 0)
        want = degree * split_calls
        if got != want:
            violations.append(
                f"packet conservation: scm {sid} fired {got} worker "
                f"span(s), expected degree {degree} x {split_calls} "
                f"split call(s) = {want}"
            )
    return violations


def _span_bounds(trace, makespan: float, slack: float) -> List[str]:
    """No span may be inverted or extend past the end of the run.

    "No worker activity after Stop": once the executive declares the run
    finished (the report's makespan), every recorded compute/transfer
    interval must already have closed.  ``slack`` absorbs clock skew on
    wall-clock backends (each OS worker timestamps its own spans).
    """
    violations: List[str] = []
    limit = makespan + slack + EPS
    for category, spans in (("compute", trace.compute),
                            ("transfer", trace.transfer)):
        for span in spans:
            if span.end < span.start - EPS:
                violations.append(
                    f"causality: {category} span {span.owner} on "
                    f"{span.resource} ends before it starts "
                    f"({span.start:.1f} -> {span.end:.1f})"
                )
            if span.end > limit:
                violations.append(
                    f"activity after Stop: {category} span {span.owner} on "
                    f"{span.resource} ends at {span.end:.1f} us, past the "
                    f"makespan {makespan:.1f} us"
                )
    return violations


def _serial_processors(trace) -> List[str]:
    """A (simulated) processor executes one process at a time.

    The discrete-event executive serialises compute on each processor;
    two overlapping spans on one resource mean the virtual clock went
    wrong.  (Real backends intentionally skip this check: an OS may give
    one mapped "processor" two concurrent slices.)
    """
    violations: List[str] = []
    by_resource: Dict[str, list] = {}
    for span in trace.compute:
        by_resource.setdefault(span.resource, []).append(span)
    for resource, spans in sorted(by_resource.items()):
        spans.sort(key=lambda s: (s.start, s.end))
        for prev, cur in zip(spans, spans[1:]):
            if cur.start < prev.end - EPS:
                violations.append(
                    f"serial execution: {resource} runs {prev.owner} "
                    f"until {prev.end:.1f} us but {cur.owner} starts at "
                    f"{cur.start:.1f} us"
                )
                break  # one report per processor is enough
    return violations


def check_fault_accounting(report: RunReport) -> List[str]:
    """Every injected crash/stall must be detected and resolved.

    Resolution means the supervisor either re-dispatched the lost packet
    to a survivor or quarantined the worker (or, at worst, explicitly
    abandoned the packet) — never silence.  Detection must not precede
    injection (causal ordering of the fault story).
    """
    faults = report.faults
    if not faults:
        return []
    violations: List[str] = []
    detections = faults.by_category("detected")
    resolutions = (
        faults.by_category("redispatch")
        + faults.by_category("quarantine")
        + faults.by_category("abandoned")
    )
    for injected in faults.injected:
        if injected.kind not in ("crash", "stall"):
            continue  # delays/drops need no recovery action
        found = [
            d for d in detections
            if d.time_us >= injected.time_us - EPS
        ]
        if not found:
            violations.append(
                f"fault accounting: injected {injected.kind} on "
                f"{injected.target} at {injected.time_us:.1f} us was "
                f"never detected"
            )
            continue
        if not any(r.time_us >= injected.time_us - EPS for r in resolutions):
            violations.append(
                f"fault accounting: injected {injected.kind} on "
                f"{injected.target} was detected but neither re-dispatched "
                f"nor quarantined nor abandoned"
            )
    return violations


def check_frame_conservation(report: RunReport) -> List[str]:
    """delivered + shed + failed == submitted — nothing lost silently.

    A real-time run that sheds load must account for every grabbed
    frame.  Additionally, the frames the ledger says were delivered must
    be the outputs the run actually produced (same count), shed/failed
    frames must carry a reason, and statuses must be terminal.
    """
    rt = report.realtime
    if rt is None:
        return []
    violations: List[str] = []
    ledger = rt.ledger
    if not ledger.conserved():
        violations.append(
            f"frame conservation: {ledger.unaccounted()} of "
            f"{ledger.submitted} frame(s) unaccounted for "
            f"({len(ledger.delivered)} delivered, {len(ledger.shed)} shed, "
            f"{len(ledger.failed)} failed)"
        )
    for rec in ledger.frames:
        if rec.status == "in-flight":
            violations.append(
                f"frame conservation: frame {rec.frame} still in flight "
                f"after the run ended"
            )
        elif rec.status in ("shed", "failed") and not rec.reason:
            violations.append(
                f"frame conservation: frame {rec.frame} was {rec.status} "
                f"without a recorded reason"
            )
    delivered = len(ledger.delivered)
    produced = len(report.outputs)
    if ledger.frames and delivered != produced:
        violations.append(
            f"frame conservation: ledger says {delivered} frame(s) "
            f"delivered but the run produced {produced} output(s)"
        )
    return violations


def check_deadline_accounting(report: RunReport) -> List[str]:
    """Deadline misses must be both flagged and evented, consistently.

    Every delivered frame whose measured latency exceeds the budget must
    carry ``deadline_missed``; every flagged frame must have a
    ``deadline-miss`` event (the watchdog saw it *while* in flight or the
    assembler flagged it at join); no event may name a frame the ledger
    never admitted.
    """
    rt = report.realtime
    if rt is None:
        return []
    violations: List[str] = []
    deadline_us = rt.budget.deadline_us
    known = {rec.frame for rec in rt.ledger.frames}
    evented = {e.frame for e in rt.deadline_miss_events}
    for rec in rt.ledger.delivered:
        late = rec.latency_us is not None and \
            rec.latency_us > deadline_us + EPS
        if late and not rec.deadline_missed:
            violations.append(
                f"deadline accounting: frame {rec.frame} took "
                f"{rec.latency_us / 1000:.1f} ms against a "
                f"{rt.budget.deadline_ms:.0f} ms budget but was not "
                f"flagged as missed"
            )
    for e in rt.deadline_miss_events:
        if e.frame is not None and e.frame not in known:
            violations.append(
                f"deadline accounting: deadline-miss event names frame "
                f"{e.frame}, which the ledger never admitted"
            )
    for rec in rt.ledger.frames:
        if rec.deadline_missed and rec.frame not in evented:
            violations.append(
                f"deadline accounting: frame {rec.frame} is flagged "
                f"missed but no deadline-miss event was recorded"
            )
    return violations


def check_trace_invariants(
    report: RunReport,
    mapping: Mapping,
    expected_calls: Optional[Dict[str, int]] = None,
    *,
    strict_serial: bool = False,
) -> List[str]:
    """All trace invariants applicable to one run report.

    ``expected_calls`` (per-function call counts observed by the
    sequential-emulation reference) enables packet conservation; pass it
    for deterministic backends (the simulator).  ``strict_serial``
    additionally requires per-processor non-overlap, which only holds
    where the backend controls the clock.
    """
    violations: List[str] = []
    if report.trace is not None:
        # Real backends measure the makespan on the parent's clock while
        # workers stamp their own spans; allow a skew allowance there.
        # The simulator's virtual clock gets none.
        slack = 0.05 * report.makespan + 200.0 if report.wall_clock else 0.0
        violations += _span_bounds(report.trace, report.makespan, slack)
        if strict_serial:
            violations += _serial_processors(report.trace)
        if expected_calls is not None:
            violations += _packet_conservation(
                report.trace, mapping, expected_calls
            )
    violations += check_fault_accounting(report)
    return violations
