"""Seeded generation of random well-typed skeletal programs.

A :class:`CaseSpec` is a *plain-data recipe* — JSON round-trippable, so
a failing case shrinks, persists to the corpus and replays bit-for-bit —
that :func:`build_case` elaborates into a real
:class:`~repro.core.ir.Program` plus a picklable function table.

The grammar is a typed pipeline over a current value tagged ``int`` or
``list``:

====== ============== =======================================================
op     type           meaning
====== ============== =======================================================
map     int -> int    a sequential function application
expand  int -> list   re-expand a scalar into a packet list
pair    list -> int   ``bounds``/``span`` — tuple payload through two applies
df      list -> int   Data Farming with a commutative accumulator
dfl     list -> list  Data Farming into a sorted-list accumulator
tf      list -> int   Task Farming (bounded divide-and-conquer comps)
scm     list -> int   Split-Compute-Merge over list chunks
fanout  list -> int   two farms on the same value, joined by an apply
====== ============== =======================================================

Stream cases wrap the body in ``itermem`` (params ``(state, item)``,
results ``(state', y)``) over the deterministic synthetic stream of
:mod:`~repro.conformance.functions`.  Every skeleton role function is
registered under a stage-unique alias (``s3_comp`` etc.) so trace
invariants can attribute packet counts to one skeleton instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.builder import ProgramBuilder
from ..core.functions import FunctionTable
from ..core.ir import Program, SkelApply
from ..syndex import arch as arch_mod
from . import functions as pool

__all__ = ["CaseSpec", "BuiltCase", "generate_case", "build_case",
           "make_arch", "STAGE_TAGS", "chain_tags"]

#: op -> (input tag, output tag)
STAGE_TAGS: Dict[str, Tuple[str, str]] = {
    "map": ("int", "int"),
    "expand": ("int", "list"),
    "pair": ("list", "int"),
    "df": ("list", "int"),
    "dfl": ("list", "list"),
    "tf": ("list", "int"),
    "scm": ("list", "int"),
    "fanout": ("list", "int"),
}

SKELETON_OPS = ("df", "dfl", "tf", "scm", "fanout")

ARCH_KINDS = ("ring", "chain", "now")


@dataclass
class CaseSpec:
    """One conformance case, as replayable plain data."""

    seed: int
    kind: str                      # "oneshot" | "stream"
    arch: Tuple[str, int]          # (topology, processor count)
    input: List[int]               # one-shot payload (stream: unused)
    iterations: int                # stream iterations (one-shot: 0)
    stages: List[Dict[str, Any]]
    faults: List[Dict[str, Any]] = field(default_factory=list)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": 1,
            "seed": self.seed,
            "kind": self.kind,
            "arch": list(self.arch),
            "input": list(self.input),
            "iterations": self.iterations,
            "stages": [dict(s) for s in self.stages],
        }
        if self.faults:
            out["faults"] = [dict(f) for f in self.faults]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CaseSpec":
        version = data.get("version", 1)
        if version != 1:
            raise ValueError(f"unsupported case version {version!r}")
        return cls(
            seed=data.get("seed", 0),
            kind=data["kind"],
            arch=(data["arch"][0], int(data["arch"][1])),
            input=[int(x) for x in data.get("input", [])],
            iterations=int(data.get("iterations", 0)),
            stages=[dict(s) for s in data["stages"]],
            faults=[dict(f) for f in data.get("faults", [])],
        )

    # -- structure ---------------------------------------------------------

    def size(self) -> Tuple[int, ...]:
        """Shrink-ordering key: smaller tuple = simpler case."""
        degrees = sum(int(s.get("degree", 0)) for s in self.stages)
        return (
            len(self.stages), len(self.faults), len(self.input),
            degrees, self.arch[1], self.iterations,
            sum(abs(x) for x in self.input),
        )

    def skeleton_stage_count(self) -> int:
        return sum(1 for s in self.stages if s["op"] in SKELETON_OPS)


def chain_tags(spec: CaseSpec) -> Optional[str]:
    """The output tag of the stage chain, or None when ill-typed.

    Stream bodies start from the scalar stream item and must end on a
    scalar ``y``; one-shot bodies start from the list parameter.
    """
    tag = "int" if spec.kind == "stream" else "list"
    for stage in spec.stages:
        op = stage.get("op")
        if op not in STAGE_TAGS:
            return None
        want, out = STAGE_TAGS[op]
        if tag != want:
            return None
        tag = out
    if spec.kind == "stream" and tag != "int":
        return None
    return tag


# -- generation ---------------------------------------------------------------

def _draw_stage(rng: random.Random, tag: str) -> Dict[str, Any]:
    if tag == "int":
        if rng.random() < 0.6:
            return {"op": "expand", "fn": rng.choice(pool.EXPANDERS)}
        return {"op": "map", "fn": rng.choice(pool.COMPS)}
    op = rng.choice(("df", "df", "dfl", "tf", "scm", "scm", "fanout", "pair"))
    degree = rng.randint(1, 4)
    if op == "df":
        return {"op": op, "comp": rng.choice(pool.COMPS),
                "acc": rng.choice(pool.ACCS), "degree": degree}
    if op == "dfl":
        return {"op": op, "comp": rng.choice(pool.COMPS), "degree": degree}
    if op == "tf":
        return {"op": op, "comp": rng.choice(pool.TF_COMPS),
                "acc": rng.choice(("add", "maxi")), "degree": degree}
    if op == "scm":
        return {"op": op, "split": rng.choice(pool.SPLITS),
                "comp": rng.choice(pool.SCM_COMPS),
                "merge": rng.choice(pool.MERGES), "degree": degree}
    if op == "fanout":
        return {
            "op": op,
            "left": {"comp": rng.choice(pool.COMPS),
                     "acc": rng.choice(pool.ACCS),
                     "degree": rng.randint(1, 3)},
            "right": {"comp": rng.choice(pool.COMPS),
                      "acc": rng.choice(pool.ACCS),
                      "degree": rng.randint(1, 3)},
            "combine": rng.choice(pool.COMBINERS),
        }
    return {"op": "pair"}


def generate_case(
    seed: int,
    *,
    max_stages: int = 3,
    allow_faults: bool = False,
) -> CaseSpec:
    """Draw one case deterministically from ``seed``."""
    rng = random.Random(seed)
    kind = "stream" if rng.random() < 0.25 else "oneshot"
    spec = CaseSpec(
        seed=seed,
        kind=kind,
        arch=(rng.choice(ARCH_KINDS), rng.randint(1, 5)),
        input=[rng.randint(-9, 9) for _ in range(rng.randint(0, 8))],
        iterations=rng.randint(1, 3) if kind == "stream" else 0,
        stages=[],
    )
    tag = "int" if kind == "stream" else "list"
    for _ in range(rng.randint(1, max_stages)):
        stage = _draw_stage(rng, tag)
        spec.stages.append(stage)
        tag = STAGE_TAGS[stage["op"]][1]
    # Guarantee at least one skeleton instance.
    if spec.skeleton_stage_count() == 0:
        if tag == "int":
            spec.stages.append({"op": "expand",
                                "fn": rng.choice(pool.EXPANDERS)})
        stage = _draw_stage(rng, "list")
        while stage["op"] not in SKELETON_OPS:
            stage = _draw_stage(rng, "list")
        spec.stages.append(stage)
        tag = STAGE_TAGS[stage["op"]][1]
    # A stream body must return a scalar y.
    if kind == "stream" and tag == "list":
        spec.stages.append({"op": "pair"})
    if allow_faults:
        spec.faults = _draw_faults(rng, spec)
    assert chain_tags(spec) is not None, f"generator produced ill-typed {spec}"
    return spec


def _farm_sids(spec: CaseSpec) -> List[Tuple[str, int]]:
    """(skeleton id, degree) of every df/tf instance, in expansion order.

    Mirrors :mod:`repro.pnt.expand`, which names instances
    ``<kind><running index over all SkelApply bindings>``.
    """
    sids: List[Tuple[str, int]] = []
    counter = 0
    for stage in spec.stages:
        op = stage["op"]
        if op in ("df", "dfl", "tf"):
            kind = "tf" if op == "tf" else "df"
            sids.append((f"{kind}{counter}", int(stage["degree"])))
            counter += 1
        elif op == "scm":
            counter += 1  # scm instances are not fault targets (v1)
        elif op == "fanout":
            for branch in ("left", "right"):
                sids.append((f"df{counter}", int(stage[branch]["degree"])))
                counter += 1
    return sids


def _draw_faults(rng: random.Random, spec: CaseSpec) -> List[Dict[str, Any]]:
    """Seeded fault events over the case's df/tf workers.

    Crashes only hit farms with >= 2 workers (a degree-1 farm that loses
    its only worker is legitimately unrecoverable), at most one crash
    per farm, and only on one-shot cases (the supervised stream path is
    exercised by the dedicated chaos suite).
    """
    if spec.kind != "oneshot":
        return []
    farms = _farm_sids(spec)
    if not farms:
        return []
    events: List[Dict[str, Any]] = []
    crashed = set()
    for _ in range(rng.randint(1, 2)):
        sid, degree = rng.choice(farms)
        worker = rng.randint(0, degree - 1)
        if rng.random() < 0.6 and degree >= 2 and sid not in crashed:
            crashed.add(sid)
            events.append({
                "kind": "crash",
                "process": f"{sid}.worker{worker}",
                "occurrence": rng.randint(0, 1),
            })
        else:
            events.append({
                "kind": "delay",
                "process": f"{sid}.worker{worker}",
                "occurrence": rng.randint(0, 1),
                "delay_us": float(rng.choice((200, 500, 1000))),
            })
    return events


# -- elaboration --------------------------------------------------------------

@dataclass
class BuiltCase:
    """A case elaborated into runnable artefacts."""

    spec: CaseSpec
    program: Program
    table: FunctionTable
    args: Optional[Tuple]          # one-shot inputs (None for streams)
    max_iterations: Optional[int]  # stream bound (None for one-shot)

    def farm_instances(self) -> List[SkelApply]:
        return self.program.skeleton_instances()


def make_arch(spec: CaseSpec):
    """The architecture graph a case maps onto."""
    kind, n = spec.arch
    builder = {"ring": arch_mod.ring, "chain": arch_mod.chain,
               "now": arch_mod.now}[kind]
    return builder(n)


def _alias(table: FunctionTable, index: int, role: str, base: str) -> str:
    return pool.register_alias(table, f"s{index}_{role}_{base}", base)


def build_case(spec: CaseSpec) -> BuiltCase:
    """Elaborate a spec into (program, table, args)."""
    if chain_tags(spec) is None:
        raise ValueError(f"ill-typed stage chain in case {spec.seed}")
    table = FunctionTable()
    for name in ("s_read", "s_emit", "state_step", "bounds", "span"):
        pool.register_alias(table, name, name)
    for name in pool.COMPS + pool.EXPANDERS + pool.COMBINERS:
        if name not in table:
            pool.register_alias(table, name, name)

    b = ProgramBuilder(f"conf_{spec.seed}", table)
    if spec.kind == "stream":
        state, current = b.params("state", "item")
    else:
        (current,) = b.params("xs")

    for i, stage in enumerate(spec.stages):
        op = stage["op"]
        if op == "map" or op == "expand":
            current = b.apply(stage["fn"], current)
        elif op == "pair":
            current = b.apply("span", b.apply("bounds", current))
        elif op == "df":
            comp = _alias(table, i, "comp", stage["comp"])
            acc = _alias(table, i, "acc", stage["acc"])
            z = b.const(pool.ACC_ZERO[stage["acc"]])
            current = b.df(stage["degree"], comp=comp, acc=acc, z=z,
                           xs=current)
        elif op == "dfl":
            comp = _alias(table, i, "comp", stage["comp"])
            acc = _alias(table, i, "acc", "tolist")
            current = b.df(stage["degree"], comp=comp, acc=acc,
                           z=b.const([]), xs=current)
        elif op == "tf":
            comp = _alias(table, i, "comp", stage["comp"])
            acc = _alias(table, i, "acc", stage["acc"])
            z = b.const(pool.ACC_ZERO[stage["acc"]])
            current = b.tf(stage["degree"], comp=comp, acc=acc, z=z,
                           xs=current)
        elif op == "scm":
            split = _alias(table, i, "split", stage["split"])
            comp = _alias(table, i, "comp", stage["comp"])
            merge = _alias(table, i, "merge", stage["merge"])
            current = b.scm(stage["degree"], split=split, comp=comp,
                            merge=merge, x=current)
        elif op == "fanout":
            results = []
            for tag in ("left", "right"):
                branch = stage[tag]
                comp = _alias(table, i, f"{tag}_comp", branch["comp"])
                acc = _alias(table, i, f"{tag}_acc", branch["acc"])
                z = b.const(pool.ACC_ZERO[branch["acc"]])
                results.append(
                    b.df(branch["degree"], comp=comp, acc=acc, z=z,
                         xs=current)
                )
            current = b.apply(stage["combine"], *results)
        else:
            raise ValueError(f"unknown stage op {op!r}")

    if spec.kind == "stream":
        new_state = b.apply("state_step", state, current)
        program = b.stream(new_state, current, inp="s_read", out="s_emit",
                           init_value=0, source=None)
        return BuiltCase(spec, program, table, None, spec.iterations)
    program = b.returns(current)
    return BuiltCase(spec, program, table, (list(spec.input),), None)
