"""The conformance harness's pool of sequential building blocks.

Every function is a module-level ``def`` so a generated program's
:class:`~repro.core.functions.FunctionTable` pickles under the ``spawn``
start method (the same constraint the backend-equivalence suite obeys).
Accumulators are commutative and associative — the paper's condition for
farm accumulation-order insensitivity — and list accumulators sort, so
every backend's arrival order produces the same value.

Stream inputs are a fixed deterministic function of the read index (see
:func:`stream_read`): a spawned worker OS process re-imports this module
and must reproduce the exact same stream without any shipped state.
Call :func:`reset_stream` before *every* run so fork/threads runs start
from index 0 too.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.functions import FunctionTable
from ..core.semantics import TaskOutcome

__all__ = [
    "BASES",
    "COMPS",
    "ACCS",
    "ACC_ZERO",
    "TF_COMPS",
    "SCM_COMPS",
    "SPLITS",
    "MERGES",
    "EXPANDERS",
    "COMBINERS",
    "fresh_table",
    "register_alias",
    "reset_stream",
]


# -- int -> int computations --------------------------------------------------

def inc(x):
    return x + 1


def dbl(x):
    return 2 * x


def sq(x):
    return x * x


def negabs(x):
    return -abs(x)


# -- commutative/associative accumulators -------------------------------------

def add(a, b):
    return a + b


def mul(a, b):
    return a * b


def maxi(a, b):
    return max(a, b)


def mini(a, b):
    return min(a, b)


def tolist(acc, y):
    """Order-insensitive list accumulator (``append`` up to reordering)."""
    return sorted(acc + [y], key=repr)


# -- task-farm computations (bounded divide-and-conquer) ----------------------

def halve(x):
    """Split |x| in two until small; the magnitude guard bounds the farm
    against the huge values a preceding ``mul``/``sq`` stage can feed it."""
    if abs(x) <= 1 or abs(x) > 64:
        return TaskOutcome(results=[x])
    return TaskOutcome(subtasks=[x // 2, x - x // 2])


def countdown(x):
    """Emit x and recurse on x-1 — a linear packet chain, bounded."""
    if x <= 0 or x > 16:
        return TaskOutcome(results=[x])
    return TaskOutcome(results=[x], subtasks=[x - 1])


# -- scm: split / per-piece compute / merge -----------------------------------

def chunk(n, xs):
    """Balanced contiguous chunks; fewer than n when the list is short."""
    base, extra = divmod(len(xs), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(xs[start:start + size])
        start += size
    return out


def stride(n, xs):
    """Round-robin decomposition (piece i takes xs[i::n])."""
    return [xs[i::n] for i in range(n) if xs[i::n]]


def sumlist(piece):
    return sum(piece)


def maxlist(piece):
    return max(piece, default=0)


def lenlist(piece):
    return len(piece)


def total(_orig, parts):
    return sum(parts)


def peak(_orig, parts):
    return max(parts, default=0)


# -- expanders (int -> int list) and tuple payloads ---------------------------

def spread(x):
    return [x + d for d in range(3)]


def rangeto(x):
    return list(range(abs(x) % 5 + 1))


def bounds(xs):
    """List -> (min, max) tuple payload."""
    if not xs:
        return (0, 0)
    return (min(xs), max(xs))


def span(pair):
    lo, hi = pair
    return hi - lo


# -- combiners for fan-out joins (plain applies, need not commute) ------------

def diff(a, b):
    return a - b


# -- stream endpoints ---------------------------------------------------------

_STREAM = {"i": 0}


def reset_stream() -> None:
    """Rewind the synthetic stream (call before every run)."""
    _STREAM["i"] = 0


def stream_read(_src):
    """Deterministic synthetic video stream: item i is a pure function of
    i, so a re-imported (spawn) worker reproduces it with no shipped
    state."""
    i = _STREAM["i"]
    _STREAM["i"] += 1
    return ((7 * i + 3) % 11) - 5


def stream_emit(_y):
    return None


def state_step(state, y):
    return state + y


# -- the base registry --------------------------------------------------------

#: name -> (fn, ins, outs, cost_us, properties)
BASES: Dict[str, Tuple] = {
    "inc": (inc, ["int"], ["int"], 30.0, ()),
    "dbl": (dbl, ["int"], ["int"], 30.0, ()),
    "sq": (sq, ["int"], ["int"], 40.0, ()),
    "negabs": (negabs, ["int"], ["int"], 30.0, ()),
    "add": (add, ["int", "int"], ["int"], 10.0,
            ("commutative", "associative")),
    "mul": (mul, ["int", "int"], ["int"], 10.0,
            ("commutative", "associative")),
    "maxi": (maxi, ["int", "int"], ["int"], 10.0,
             ("commutative", "associative")),
    "mini": (mini, ["int", "int"], ["int"], 10.0,
             ("commutative", "associative")),
    "tolist": (tolist, ["'a list", "'a"], ["'a list"], 10.0, ("append",)),
    "halve": (halve, ["int"], ["outcome"], 30.0, ()),
    "countdown": (countdown, ["int"], ["outcome"], 30.0, ()),
    "chunk": (chunk, ["int", "int list"], ["int list list"], 20.0, ()),
    "stride": (stride, ["int", "int list"], ["int list list"], 20.0, ()),
    "sumlist": (sumlist, ["int list"], ["int"], 40.0, ()),
    "maxlist": (maxlist, ["int list"], ["int"], 40.0, ()),
    "lenlist": (lenlist, ["int list"], ["int"], 20.0, ()),
    "total": (total, ["int list", "int list"], ["int"], 20.0, ()),
    "peak": (peak, ["int list", "int list"], ["int"], 20.0, ()),
    "spread": (spread, ["int"], ["int list"], 20.0, ()),
    "rangeto": (rangeto, ["int"], ["int list"], 20.0, ()),
    "bounds": (bounds, ["int list"], ["int * int"], 20.0, ()),
    "span": (span, ["int * int"], ["int"], 10.0, ()),
    "diff": (diff, ["int", "int"], ["int"], 10.0, ()),
    "s_read": (stream_read, ["unit"], ["int"], 10.0, ()),
    "s_emit": (stream_emit, ["int"], ["unit"], 5.0, ()),
    "state_step": (state_step, ["int", "int"], ["int"], 10.0, ()),
}

#: Pools the generator draws from, by role.
COMPS: Sequence[str] = ("inc", "dbl", "sq", "negabs")
ACCS: Sequence[str] = ("add", "mul", "maxi", "mini")
#: The accumulator seed per accumulator (any value preserves equivalence
#: for an order-insensitive acc; identities keep values tame).
ACC_ZERO: Dict[str, int] = {"add": 0, "mul": 1, "maxi": 0, "mini": 0}
TF_COMPS: Sequence[str] = ("halve", "countdown")
SCM_COMPS: Sequence[str] = ("sumlist", "maxlist", "lenlist")
SPLITS: Sequence[str] = ("chunk", "stride")
MERGES: Sequence[str] = ("total", "peak")
EXPANDERS: Sequence[str] = ("spread", "rangeto")
COMBINERS: Sequence[str] = ("add", "maxi", "diff")


def register_alias(table: FunctionTable, alias: str, base: str) -> str:
    """Register base function ``base`` under ``alias``.

    Each generated farm stage gets stage-unique aliases for its role
    functions, so the invariant checker can key packet counts to one
    skeleton instance even when two stages share an implementation.
    """
    fn, ins, outs, cost, props = BASES[base]
    table.register(alias, ins=ins, outs=outs, cost=cost, properties=props)(fn)
    return alias


def fresh_table(names: Sequence[str] = ()) -> FunctionTable:
    """A new table holding the named base functions (all when empty)."""
    table = FunctionTable()
    for name in (names or BASES):
        register_alias(table, name, name)
    return table


def make_counting_table(table: FunctionTable):
    """A shadow table whose functions count their calls by name.

    The wrapper closures are *not* picklable; use the counting table
    only for the in-process sequential-emulation reference.  Returns
    ``(table, counts)`` where ``counts`` fills in as the run proceeds —
    the per-alias totals are the expected packet counts of the trace
    invariant checker.
    """
    from ..core.functions import FunctionSpec

    counts: Dict[str, int] = {}
    shadow = FunctionTable()
    for spec in table:
        def counted(*args, _fn=spec.fn, _name=spec.name):
            counts[_name] = counts.get(_name, 0) + 1
            return _fn(*args)

        shadow.add(
            FunctionSpec(
                spec.name, counted, spec.ins, spec.outs, spec.cost,
                spec.doc, spec.properties,
            )
        )
    return shadow, counts
