"""Cross-backend conformance harness.

The paper's central correctness claim is the equivalence of each
skeleton's declarative semantics and its expanded operational process
network (§2, Fig. 2).  This package checks that claim mechanically and
at scale:

* :mod:`~repro.conformance.generator` draws random well-typed skeletal
  programs (all four skeletons, nesting under ``itermem``, fan-out,
  list/tuple payloads, seeded fault plans) from one integer seed;
* :mod:`~repro.conformance.oracle` runs each program differentially
  across the registered execution backends and diffs every output
  against the sequential emulation reference;
* :mod:`~repro.conformance.invariants` checks *trace invariants* on the
  run report — packet conservation per farm, causal span ordering,
  fault-recovery accounting, no activity after termination — catching
  "right answer, wrong execution" bugs the differential oracle misses;
* :mod:`~repro.conformance.shrink` reduces a failing case to a minimal
  reproducer, and :mod:`~repro.conformance.corpus` persists it as JSON
  so every later run replays it as a regression test;
* :mod:`~repro.conformance.runner` ties it together behind
  ``repro check`` and the CI conformance job.
"""

from .generator import CaseSpec, build_case, generate_case
from .invariants import check_trace_invariants
from .oracle import CaseFailure, run_case
from .corpus import (
    case_fingerprint,
    load_corpus,
    replay_corpus,
    save_reproducer,
)
from .runner import ConformanceReport, run_conformance
from .shrink import shrink_case

__all__ = [
    "CaseSpec",
    "generate_case",
    "build_case",
    "CaseFailure",
    "run_case",
    "check_trace_invariants",
    "shrink_case",
    "case_fingerprint",
    "save_reproducer",
    "load_corpus",
    "replay_corpus",
    "ConformanceReport",
    "run_conformance",
]
