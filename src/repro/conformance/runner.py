"""The conformance campaign driver behind ``repro check`` and CI.

One call to :func:`run_conformance` does, in order:

1. replay the reproducer corpus (regression leg — cheap, deterministic);
2. fuzz ``cases`` fresh programs from a base seed, running each through
   the differential + invariant oracle on every requested backend;
3. shrink each failure to a minimal case and write it to the corpus.

Everything is derived from ``(seed, cases, backends, faults)``, so a CI
failure reproduces locally from the numbers in the log line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .corpus import replay_corpus, save_reproducer
from .generator import generate_case
from .oracle import CaseFailure, available_backends, run_case
from .shrink import shrink_case

__all__ = ["ConformanceReport", "run_conformance"]

#: Per-case seed spacing: any two base seeds < 1e6 apart still produce
#: disjoint case streams.
SEED_STRIDE = 1_000_003


@dataclass
class ConformanceReport:
    """Outcome of one conformance campaign."""

    backends: List[str]
    skipped_backends: List[str]
    cases_run: int = 0
    replayed: int = 0
    failures: List[CaseFailure] = field(default_factory=list)
    replay_failures: List[CaseFailure] = field(default_factory=list)
    reproducers: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.replay_failures

    def summary(self) -> str:
        lines = [
            f"conformance: {self.cases_run} fuzz case(s) + "
            f"{self.replayed} corpus replay(s) on "
            f"{', '.join(self.backends) or 'no backends'}"
        ]
        if self.skipped_backends:
            lines.append(
                "  skipped (unavailable): "
                + ", ".join(self.skipped_backends)
            )
        for failure in self.replay_failures:
            lines.append(f"  REGRESSION {failure.describe()}")
        for failure in self.failures:
            lines.append(f"  FAIL {failure.describe()}")
        for path in self.reproducers:
            lines.append(f"  reproducer written: {path}")
        if self.ok:
            lines.append("  all cases conform")
        return "\n".join(lines)


def run_conformance(
    *,
    backends: Sequence[str],
    cases: int,
    seed: int,
    faults: bool = False,
    corpus_dir: Optional[str] = None,
    shrink: bool = True,
    max_failures: int = 3,
    timeout: float = 30.0,
    log: Optional[Callable[[str], None]] = None,
) -> ConformanceReport:
    """Run a bounded conformance campaign; see the module docstring."""
    def say(message: str) -> None:
        if log is not None:
            log(message)

    usable = available_backends(backends)
    report = ConformanceReport(
        backends=usable,
        skipped_backends=[b for b in backends if b not in usable],
    )
    if not usable:
        say("no requested backend is available; nothing to check")
        return report

    if corpus_dir is not None:
        report.replayed, report.replay_failures = replay_corpus(
            corpus_dir, usable, timeout=timeout
        )
        say(f"corpus: {report.replayed} entr(ies) replayed, "
            f"{len(report.replay_failures)} regression(s)")

    for i in range(cases):
        case_seed = seed * SEED_STRIDE + i
        spec = generate_case(case_seed, allow_faults=faults)
        failure = run_case(spec, usable, timeout=timeout)
        report.cases_run += 1
        if failure is None:
            continue
        say(f"case {i} (seed {case_seed}) failed: {failure.describe()}")
        if shrink:
            # Re-probe only the backend that failed (plus the implicit
            # emulation reference): an order of magnitude cheaper, and
            # any failure on it keeps the candidate.
            probe = [failure.backend] if failure.backend else usable

            def is_failing(cand) -> bool:
                return run_case(cand, probe, timeout=timeout) is not None

            shrunk = shrink_case(spec, is_failing)
            final = run_case(shrunk, probe, timeout=timeout) or failure
            failure = CaseFailure(shrunk, final.phase, final.backend,
                                  final.detail)
            say(f"  shrunk {spec.size()} -> {shrunk.size()}")
        report.failures.append(failure)
        if corpus_dir is not None:
            path = save_reproducer(
                failure.spec, failure, corpus_dir,
                note=f"fuzz seed {seed} case {i}",
            )
            report.reproducers.append(path)
            say(f"  reproducer: {path}")
        if len(report.failures) >= max_failures:
            say(f"stopping after {max_failures} failure(s)")
            break
    return report
