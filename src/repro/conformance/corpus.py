"""The JSON reproducer corpus: failures become regression tests.

Every case the fuzzer ever shrank lives as one small JSON file under
``tests/conformance/corpus/``.  CI (and ``repro check --corpus``)
replays the whole directory deterministically before spending any fuzz
budget, so a fixed bug stays fixed; a handful of committed ``seed_*``
entries keep the replay leg meaningful even while the corpus has no
captured failures.

Entry format (version 1)::

    {"version": 1,
     "spec": { ... CaseSpec.to_dict() ... },
     "failure": {"phase": "differential", "backend": "simulate",
                 "detail": "..."},        # null for seed entries
     "note": "free-form provenance"}
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .generator import CaseSpec
from .oracle import CaseFailure, run_case

__all__ = [
    "case_fingerprint",
    "save_reproducer",
    "load_corpus",
    "replay_corpus",
]


def case_fingerprint(spec: CaseSpec) -> str:
    """A short stable id for a case (content-addressed file naming)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True)
    return hashlib.sha1(canonical.encode()).hexdigest()[:12]


def save_reproducer(
    spec: CaseSpec,
    failure: Optional[CaseFailure],
    corpus_dir: str,
    *,
    note: str = "",
) -> str:
    """Write one corpus entry; returns its path.

    Shrunk reproducers are content-addressed (re-finding the same bug is
    idempotent); pass ``failure=None`` for hand-committed seed entries.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    entry: Dict = {"version": 1, "spec": spec.to_dict()}
    entry["failure"] = failure.to_dict() if failure is not None else None
    if note:
        entry["note"] = note
    path = os.path.join(
        corpus_dir, f"shrunk_{case_fingerprint(spec)}.json"
    )
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(corpus_dir: str) -> List[Tuple[str, CaseSpec, Optional[Dict]]]:
    """All corpus entries as (path, spec, recorded failure or None)."""
    if not os.path.isdir(corpus_dir):
        return []
    entries = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path) as handle:
            data = json.load(handle)
        if data.get("version", 1) != 1:
            raise ValueError(f"{path}: unsupported corpus version")
        entries.append(
            (path, CaseSpec.from_dict(data["spec"]), data.get("failure"))
        )
    return entries


def replay_corpus(
    corpus_dir: str,
    backends: Sequence[str],
    *,
    timeout: float = 30.0,
) -> Tuple[int, List[CaseFailure]]:
    """Re-run every corpus entry; (entries replayed, current failures).

    An entry's *recorded* failure documents why it was captured; replay
    demands the case passes **now** — each entry is a regression test
    for the bug it once exposed.
    """
    failures: List[CaseFailure] = []
    entries = load_corpus(corpus_dir)
    for _path, spec, _recorded in entries:
        failure = run_case(spec, backends, timeout=timeout)
        if failure is not None:
            failures.append(failure)
    return len(entries), failures
