"""Farm topology extraction: what the supervisor needs to know.

The generated executive is written purely against the kernel primitives
and never changes (the paper's portability claim).  Supervision
therefore hooks the *kernel*, and the kernel needs a map of the farm
protocol edges: which edges carry dispatched packets, which carry
results, and which worker each belongs to.  This module derives that map
once from the :class:`~repro.syndex.distribute.Mapping` — the same
structure the code generator consumed — so the supervisor in every
worker process agrees on edge roles without any runtime negotiation.

Edge names follow the generated code: ``e<i>`` indexes
``mapping.graph.edges``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..codegen.pygen import thread_name
from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping

__all__ = ["FarmWorker", "Farm", "FaultTopology"]


@dataclass
class FarmWorker:
    """One worker of a supervised farm and its protocol edges."""

    pid: str  # process-graph id, e.g. "df0.worker1"
    index: int  # worker index within the farm (= master port - offset)
    processor: str
    slot: int  # heartbeat-board slot (unique across the whole program)
    dispatch_edge: str  # master/split -> (router ->) worker
    work_in_edge: str  # the edge the worker itself receives on
    work_out_edge: str  # the edge the worker itself sends results on
    collect_edge: str  # (router ->) master/merge


@dataclass
class Farm:
    """One farm (df/tf master-worker or scm split-merge) instance."""

    sid: str  # skeleton instance id, e.g. "df0"
    kind: str  # "farm" (df/tf master protocol) or "scm"
    owner_pid: str  # the supervising process: master, or the scm merge
    dispatcher_pid: str  # master, or the scm split
    workers: List[FarmWorker] = field(default_factory=list)
    #: False when supervision cannot cover this instance (scm whose split
    #: and merge map to different processors: the dispatcher's in-flight
    #: record would not be visible to the collector's OS process).
    supervised: bool = True

    @property
    def degree(self) -> int:
        return len(self.workers)


class FaultTopology:
    """Edge-role map of every farm in one mapped program."""

    def __init__(self, farms: List[Farm], thread_to_pid: Dict[str, str],
                 pid_to_processor: Dict[str, str]):
        self.farms = farms
        self.thread_to_pid = thread_to_pid
        self.pid_to_processor = pid_to_processor
        self.n_slots = sum(f.degree for f in farms)
        # Role lookups over supervised farms only: unsupervised farms run
        # the plain un-enveloped protocol in every process.
        self.dispatch_edges: Dict[str, Tuple[Farm, FarmWorker]] = {}
        self.work_in_edges: Dict[str, Tuple[Farm, FarmWorker]] = {}
        self.work_out_edges: Dict[str, Tuple[Farm, FarmWorker]] = {}
        self.collect_edges: Dict[str, Tuple[Farm, FarmWorker]] = {}
        for farm in farms:
            if not farm.supervised:
                continue
            for worker in farm.workers:
                self.dispatch_edges[worker.dispatch_edge] = (farm, worker)
                self.work_in_edges[worker.work_in_edge] = (farm, worker)
                self.work_out_edges[worker.work_out_edge] = (farm, worker)
                self.collect_edges[worker.collect_edge] = (farm, worker)

    @property
    def worker_pids(self) -> List[str]:
        return [w.pid for farm in self.farms for w in farm.workers]

    def farm_of_collect_edges(self, edges) -> Optional[Farm]:
        """The single supervised farm owning *all* of ``edges``, if any."""
        farm: Optional[Farm] = None
        for edge in edges:
            entry = self.collect_edges.get(edge)
            if entry is None:
                return None
            if farm is None:
                farm = entry[0]
            elif entry[0] is not farm:
                return None
        return farm

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "FaultTopology":
        graph = mapping.graph
        edge_name = {id(e): f"e{i}" for i, e in enumerate(graph.edges)}

        def edge_between(src: str, dst: str, *, src_port=None,
                         dst_port=None) -> str:
            for e in graph.edges:
                if e.src != src or e.dst != dst:
                    continue
                if src_port is not None and e.src_port != src_port:
                    continue
                if dst_port is not None and e.dst_port != dst_port:
                    continue
                return edge_name[id(e)]
            raise ValueError(f"no edge {src!r} -> {dst!r} in {graph.name!r}")

        farms: List[Farm] = []
        slot = 0
        skeletons = sorted({
            p.skeleton for p in graph.processes.values()
            if p.skeleton is not None
        })
        for sid in skeletons:
            members = graph.skeleton_processes(sid)
            workers = sorted(
                (p for p in members if p.kind == ProcessKind.WORKER),
                key=lambda p: p.params["index"],
            )
            if not workers:
                continue
            masters = [p for p in members if p.kind == ProcessKind.MASTER]
            if masters:
                master = masters[0]
                farm = Farm(sid=sid, kind="farm", owner_pid=master.id,
                            dispatcher_pid=master.id)
                for w in workers:
                    i = w.params["index"]
                    mw, wm = f"{sid}.mw{i}", f"{sid}.wm{i}"
                    farm.workers.append(FarmWorker(
                        pid=w.id, index=i,
                        processor=mapping.processor_of(w.id), slot=slot,
                        dispatch_edge=edge_between(master.id, mw),
                        work_in_edge=edge_between(mw, w.id),
                        work_out_edge=edge_between(w.id, wm),
                        collect_edge=edge_between(wm, master.id),
                    ))
                    slot += 1
            else:
                splits = [p for p in members if p.kind == ProcessKind.SPLIT]
                merges = [p for p in members if p.kind == ProcessKind.MERGE]
                if not splits or not merges:
                    continue
                split, merge = splits[0], merges[0]
                farm = Farm(
                    sid=sid, kind="scm", owner_pid=merge.id,
                    dispatcher_pid=split.id,
                    supervised=(mapping.processor_of(split.id)
                                == mapping.processor_of(merge.id)),
                )
                for w in workers:
                    i = w.params["index"]
                    in_edge = edge_between(split.id, w.id, src_port=i)
                    out_edge = edge_between(w.id, merge.id, dst_port=1 + i)
                    farm.workers.append(FarmWorker(
                        pid=w.id, index=i,
                        processor=mapping.processor_of(w.id), slot=slot,
                        dispatch_edge=in_edge, work_in_edge=in_edge,
                        work_out_edge=out_edge, collect_edge=out_edge,
                    ))
                    slot += 1
            farms.append(farm)

        thread_to_pid = {thread_name(pid): pid for pid in graph.processes}
        pid_to_processor = dict(mapping.assignment)
        return cls(farms, thread_to_pid, pid_to_processor)
