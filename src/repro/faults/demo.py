"""Self-contained fault-tolerance demonstration (``repro faults``).

Builds a small farm program, derives (or loads) a deterministic
:class:`~repro.faults.plan.FaultPlan`, executes it on the chosen
backend with supervision enabled, and prints the fault story next to
the fault-free sequential reference — the quickest way to watch a
worker die and the farm recover.

Every sequential function is a module-level ``def`` so the table
survives pickling under the ``spawn`` start method.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..backends import BackendError, get_backend
from ..core import FunctionTable, ProgramBuilder, TaskOutcome
from ..machine import FAST_TEST
from ..pnt import ProcessKind, expand_program
from ..syndex import distribute, ring
from .plan import EDGE_KINDS, FaultPlan, PlanError
from .policy import FaultPolicy
from .topology import FaultTopology

__all__ = ["main", "make_demo", "worker_pids"]


# -- module-level sequential functions (spawn-picklable) ----------------------

def chunk(n, xs):
    base, extra = divmod(len(xs), n)
    out, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        if size:
            out.append(xs[start:start + size])
        start += size
    return out


def sumsq(chunk_):
    return sum(x * x for x in chunk_)


def total(_orig, parts):
    return sum(parts)


def square(x):
    return x * x


def add(a, b):
    return a + b


def halve(x):
    if abs(x) <= 1:
        return TaskOutcome(results=[x])
    return TaskOutcome(subtasks=[x // 2, x - x // 2])


# -- demo programs ------------------------------------------------------------

def make_scm():
    table = FunctionTable()
    table.register("chunk", ins=["int", "int list"], outs=["int list list"])(chunk)
    table.register("sumsq", ins=["int list"], outs=["int"], cost=50.0)(sumsq)
    table.register("total", ins=["int list", "int list"], outs=["int"], cost=20.0)(total)
    b = ProgramBuilder("faults_scm", table)
    (xs,) = b.params("xs")
    r = b.scm(3, split="chunk", comp="sumsq", merge="total", x=xs)
    return b.returns(r), table, (list(range(12)),)


def make_df():
    table = FunctionTable()
    table.register("square", ins=["int"], outs=["int"], cost=50.0)(square)
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=10.0,
        properties=["commutative", "associative"],
    )(add)
    b = ProgramBuilder("faults_df", table)
    (xs,) = b.params("xs")
    r = b.df(3, comp="square", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table, (list(range(10)),)


def make_tf():
    table = FunctionTable()
    table.register("halve", ins=["int"], outs=["outcome"], cost=30.0)(halve)
    table.register(
        "add", ins=["int", "int"], outs=["int"], cost=10.0,
        properties=["commutative", "associative"],
    )(add)
    b = ProgramBuilder("faults_tf", table)
    (xs,) = b.params("xs")
    r = b.tf(3, comp="halve", acc="add", z=b.const(0), xs=xs)
    return b.returns(r), table, ([13, 7, 21],)


RECIPES = {"scm": make_scm, "df": make_df, "tf": make_tf}


def make_demo(skeleton: str, arch_size: int = 4):
    """Build one demo program, fully mapped: (program, table, args, mapping)."""
    prog, table, args = RECIPES[skeleton]()
    mapping = distribute(expand_program(prog, table), ring(arch_size))
    return prog, table, args, mapping


def worker_pids(mapping) -> List[str]:
    """The farm-worker process ids of a mapping, in a stable order."""
    return sorted(
        p.id for p in mapping.graph.processes.values()
        if p.kind == ProcessKind.WORKER
    )


# -- the demo run -------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="demonstrate fault injection and supervised recovery",
    )
    parser.add_argument(
        "--skeleton", choices=sorted(RECIPES), default="df",
        help="which farm skeleton to run (default: df)",
    )
    parser.add_argument(
        "--backend", choices=("simulate", "threads", "processes"),
        default="threads",
        help="execution backend (default: threads)",
    )
    parser.add_argument(
        "--kind",
        choices=("crash", "stall", "delay", "limplock",
                 "partial-partition", "credit-starvation"),
        default="crash",
        help="fault kind for the generated plan (default: crash)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the generated plan (default: 0)",
    )
    parser.add_argument(
        "--plan", metavar="FILE", default=None,
        help="load the fault plan from FILE instead of generating one",
    )
    parser.add_argument(
        "--save-plan", metavar="FILE", default=None,
        help="write the plan that was used to FILE (JSON)",
    )
    parser.add_argument(
        "--arch", type=int, default=4, metavar="N",
        help="ring size (default: 4)",
    )
    parser.add_argument(
        "--start-method", default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method (processes backend)",
    )
    args = parser.parse_args(argv)

    prog, table, run_args, mapping = make_demo(args.skeleton, args.arch)
    workers = worker_pids(mapping)

    if args.plan:
        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, PlanError) as err:
            raise SystemExit(f"error: cannot load plan: {err}")
    else:
        edges = None
        if args.kind in EDGE_KINDS:
            topo = FaultTopology.from_mapping(mapping)
            edges = [
                w.dispatch_edge
                for farm in topo.farms for w in farm.workers
                if w.dispatch_edge
            ]
        plan = FaultPlan.random(
            args.seed, workers=workers, kinds=(args.kind,),
            delay_us=5_000.0, max_count=3, factor=8.0, edges=edges,
        )
    if args.save_plan:
        plan.save(args.save_plan)
        print(f"plan written to {args.save_plan}")

    print(f"program : {args.skeleton} farm on ring:{args.arch} "
          f"({len(workers)} workers: {', '.join(workers)})")
    print(f"backend : {args.backend}")
    for event in plan.events:
        extra = ""
        if event.kind in ("delay", "slow-worker"):
            extra = f" (+{event.delay_us:.0f} us)"
        elif event.kind == "limplock":
            extra = f" (x{event.factor:g} for the rest of the run)"
        elif event.count > 1:
            extra = f" (window of {event.count})"
        print(f"fault   : {event.kind} on {event.target} "
              f"(occurrence {event.occurrence}){extra}")

    reference = get_backend("emulate").run(
        None, table, program=prog, costs=FAST_TEST, args=run_args,
    )

    # Short real-time deadlines keep the demo snappy; the simulator
    # ignores the policy's wall-clock knobs and uses detect_us.
    policy = FaultPolicy(
        packet_timeout_s=0.3, heartbeat_timeout_s=0.15, poll_s=0.002,
    )
    options = {}
    if args.start_method:
        options["start_method"] = args.start_method
    try:
        report = get_backend(args.backend).run(
            mapping, table, program=prog, costs=FAST_TEST, args=run_args,
            timeout=60.0, fault_plan=plan, fault_policy=policy, **options,
        )
    except (BackendError, ValueError) as err:
        raise SystemExit(f"error: {err}")

    print()
    print(report.summary())
    if report.faults is not None:
        for record in report.faults.sorted().records:
            line = (f"  [{record.category:<10}] {record.kind:<5} "
                    f"{record.target}")
            if record.latency_us:
                line += f"  latency {record.latency_us / 1000.0:.2f} ms"
            if record.note:
                line += f"  ({record.note})"
            print(line)

    got = (report.one_shot_results
           if report.one_shot_results is not None else report.outputs)
    want = (reference.one_shot_results
            if reference.one_shot_results is not None else reference.outputs)
    print()
    print(f"results   : {got!r}")
    print(f"reference : {want!r} (fault-free sequential emulation)")
    if got == want:
        print("recovered : yes — outputs identical despite the fault")
        return 0
    print("recovered : NO — outputs diverged from the reference")
    return 1


if __name__ == "__main__":
    sys.exit(main())
