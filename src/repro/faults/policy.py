"""Supervision tuning knobs shared by all fault-aware execution layers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..health.policy import HealthPolicy
from ..sched.remap import RemapPolicy

__all__ = ["FaultPolicy"]


@dataclass(frozen=True)
class FaultPolicy:
    """How aggressively the supervised executive detects and recovers.

    The defaults suit interactive runs (sub-second detection without
    false positives on a loaded laptop); chaos tests shrink the timeouts
    to keep the suite fast.
    """

    #: Seconds a dispatched packet may stay unanswered before the
    #: supervisor suspects the worker (first attempt; grows by
    #: ``backoff`` per re-dispatch).
    packet_timeout_s: float = 0.5
    #: Seconds between heartbeat writes from each worker OS process.
    heartbeat_interval_s: float = 0.02
    #: Heartbeat staleness that marks an OS process dead.
    heartbeat_timeout_s: float = 0.2
    #: A worker whose heartbeat is *fresh* but whose packet is overdue is
    #: merely slow: its deadline stretches up to ``stall_factor`` times
    #: before it is declared stalled and quarantined anyway.
    stall_factor: float = 4.0
    #: Re-dispatch budget per packet before it is abandoned (and the
    #: run aborts rather than silently losing data).
    max_redispatch: int = 3
    #: Multiplier applied to the packet timeout on each re-dispatch.
    backoff: float = 1.5
    #: Supervisor polling granularity while blocked in ``alt_``.
    poll_s: float = 0.005
    #: Virtual detection latency charged by the simulator (µs) between a
    #: fault occurring and the master acting on it.
    detect_us: float = 500.0
    #: Seconds after quarantine before the circuit breaker sends the
    #: first probation packet to the retired worker.  The default is
    #: deliberately longer than typical short chaos runs, so probation
    #: only engages where it is asked for (soaks, long streams).
    probe_after_s: float = 1.0
    #: Multiplier applied to the probe delay after each failed probe.
    probe_backoff: float = 2.0
    #: Failed probes before quarantine becomes permanent.
    max_probes: int = 3
    #: Supervision scans a queued re-dispatch may stay unsendable before
    #: it is dropped from the pending list and the packet times out
    #: again through the normal path (bounds the `queue.Full` retry).
    max_flush_attempts: int = 400
    #: Gray-failure defense knobs (limplock detection, health-weighted
    #: dispatch, hedged re-dispatch).  ``None`` means the defaults of
    #: :class:`~repro.health.policy.HealthPolicy`; pass one with
    #: ``enabled=False`` / ``hedge_enabled=False`` to switch the layer
    #: off for A/B comparisons.
    health: Optional[HealthPolicy] = None
    #: Online re-mapping knobs (migrate processors off workers that stay
    #: limping, count-based so the simulator reproduces every decision
    #: in virtual time).  ``None`` means re-mapping is off and the
    #: demotion/hedging defenses stand alone.
    remap: Optional[RemapPolicy] = None

    def health_policy(self) -> HealthPolicy:
        return self.health if self.health is not None else HealthPolicy()

    def remap_policy(self) -> RemapPolicy:
        return self.remap if self.remap is not None \
            else RemapPolicy(enabled=False)

    def deadline_s(self, attempts: int) -> float:
        """Packet timeout for the given (0-based) dispatch attempt."""
        return self.packet_timeout_s * (self.backoff ** attempts)

    def probe_delay_s(self, probes: int) -> float:
        """Breaker delay before the (0-based) n-th probation packet."""
        return self.probe_after_s * (self.probe_backoff ** probes)
