"""Supervised kernel: fault injection and farm recovery behind the primitives.

:class:`SupervisedKernel` wraps a base kernel (the reference
``ThreadKernel`` or the multiprocess ``ProcessKernel``) and adds two
things without touching a single line of generated executive code:

* **Injection** — ``call_`` and ``send_`` consult the
  :class:`~repro.faults.plan.PlanMatcher` and make planned crash/stall/
  delay/drop events actually happen (a crash kills the executive thread,
  a stall parks it until teardown, a drop swallows one message).

* **Supervision** — on farm protocol edges (see
  :class:`~repro.faults.topology.FaultTopology`) dispatched work is
  wrapped in sequence-numbered envelopes, workers heartbeat a shared
  health board, and the collector side (the ``df``/``tf`` master's
  ``alt_``, the ``scm`` merge's ``recv_``) detects dead or stalled
  workers, re-dispatches their in-flight packets to survivors, and
  quarantines them — so the farm degrades gracefully instead of hanging.

The master's own ``busy[]``/``pending`` bookkeeping stays consistent
because ``alt_`` returns the *physical* arrival edge of each result: a
dead worker simply never returns, stays "busy" forever, and naturally
drops out of the master's dispatch rotation.  The ``scm`` merge instead
receives port-by-port, so results carry their *origin* slot and a stash
reorders them; this requires split and merge to share one supervisor
instance, which is why an ``scm`` farm is only supervised when both are
mapped to the same processor.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..codegen.kernel import Shutdown
from ..health import HEALTHY, FarmHealth, HealthPolicy, HedgeClock, LIMPING
from .plan import FaultPlan, PlanMatcher
from .policy import FaultPolicy
from .report import FaultReport
from .topology import Farm, FarmWorker, FaultTopology

__all__ = [
    "Packet",
    "Result",
    "WorkerCrash",
    "HealthBoard",
    "SupervisedKernel",
]


class WorkerCrash(Exception):
    """An injected crash: kills the raising executive thread only."""


class Packet:
    """Dispatch envelope: one unit of farm work with a sequence number."""

    __slots__ = ("seq", "value")

    def __init__(self, seq: int, value: Any):
        self.seq = seq
        self.value = value

    def __getstate__(self):
        return (self.seq, self.value)

    def __setstate__(self, state):
        self.seq, self.value = state

    def __repr__(self) -> str:
        return f"<packet #{self.seq}>"


class Result:
    """Collect envelope: a worker's answer, tagged with the packet seq."""

    __slots__ = ("seq", "value")

    def __init__(self, seq: int, value: Any):
        self.seq = seq
        self.value = value

    def __getstate__(self):
        return (self.seq, self.value)

    def __setstate__(self, state):
        self.seq, self.value = state

    def __repr__(self) -> str:
        return f"<result #{self.seq}>"


class HealthBoard:
    """Per-worker heartbeat timestamps (``time.monotonic`` seconds).

    Backed by a plain list on the threads backend or a lock-free
    ``multiprocessing.Array('d', n)`` on the processes backend —
    ``CLOCK_MONOTONIC`` is system-wide on Linux, so timestamps written
    in one OS process are comparable in another.  A slot still at its
    initial ``0.0`` means the worker has not started yet, which the
    supervisor treats as *fresh* (a worker that never ran cannot have
    died; the slower stall path covers one that never starts).
    """

    def __init__(self, slots: Any):
        self._slots = slots

    @classmethod
    def local(cls, n: int) -> "HealthBoard":
        return cls([0.0] * max(1, n))

    def beat(self, slot: int) -> None:
        self._slots[slot] = time.monotonic()

    def last(self, slot: int) -> float:
        return self._slots[slot]

    def stale(self, slot: int, now: float, timeout: float) -> bool:
        last = self._slots[slot]
        return last > 0.0 and (now - last) > timeout


class _InFlight:
    """One dispatched, not-yet-answered packet."""

    __slots__ = ("seq", "value", "origin_slot", "assigned", "sent_at",
                 "attempts", "redispatch_record", "sends", "hedges")

    def __init__(self, seq: int, value: Any, origin_slot: int,
                 assigned: int, sent_at: float):
        self.seq = seq
        self.value = value
        self.origin_slot = origin_slot  # the port the collector expects
        self.assigned = assigned  # worker index currently holding it
        self.sent_at = sent_at
        self.attempts = 0
        self.redispatch_record = None  # FaultRecord awaiting its latency
        #: worker index -> when this packet was sent to it (dispatch,
        #: re-dispatch, hedge, probe); attributes each answer's service
        #: time to the worker that actually produced it.
        self.sends: Dict[int, float] = {assigned: sent_at}
        #: Speculative duplicates issued for this packet.
        self.hedges = 0


class _Suspect:
    """A worker that lost a hedge race and still owes its answer.

    First-result-wins means a rescued packet leaves the in-flight table
    before the classic timeout can pass judgement on the worker that
    failed to answer it.  The suspect entry keeps that judgement alive:
    the worker clears itself by answering *anything*, or is convicted —
    detected, quarantined, and the winning hedge retroactively recorded
    as the packet's re-dispatch — when its silence outlives the normal
    crash/stall deadlines (or the run ends first).
    """

    __slots__ = ("seq", "since", "win_latency_us", "rescued_by")

    def __init__(self, seq: int, since: float, win_latency_us: float,
                 rescued_by: FarmWorker):
        self.seq = seq
        self.since = since  # monotonic time of the unanswered send
        self.win_latency_us = win_latency_us
        self.rescued_by = rescued_by


class _Breaker:
    """Circuit-breaker state for one quarantined worker.

    After ``probe_after_s`` the supervisor duplicates a live in-flight
    packet onto the quarantined worker's dispatch edge (a *probation
    packet*: real work, so a false-positive quarantine costs nothing but
    one duplicate answer, which the dedupe path already discards).  Any
    result arriving on the worker's collect edge proves it alive and
    re-admits it to the dispatch rotation; ``max_probes`` unanswered
    probes make the quarantine permanent.
    """

    __slots__ = ("next_probe_at", "probes")

    def __init__(self, next_probe_at: float):
        self.next_probe_at = next_probe_at
        self.probes = 0


#: Settled send maps remembered for late-answer service-time attribution.
_RECENT_SENDS = 512


class _FarmState:
    """Supervisor-side state of one farm (lives in the owner process)."""

    def __init__(self, farm: Farm, health_policy: Optional[HealthPolicy]
                 = None):
        self.farm = farm
        self.lock = threading.Lock()
        self.next_seq = 0
        self.inflight: Dict[int, _InFlight] = {}
        #: seq -> origin slot, kept only for re-dispatched packets so a
        #: late answer from a falsely-suspected worker is discarded.
        self.satisfied: Dict[int, int] = {}
        #: Gray-failure defense: per-worker scores + the hedge clock.
        hp = health_policy or HealthPolicy()
        self.health = FarmHealth(len(farm.workers), hp)
        self.hedge = HedgeClock(hp)
        #: Seqs that ever received a speculative duplicate (labels the
        #: loser's late arrival as hedge waste rather than a mystery).
        self.hedged: set = set()
        #: seq -> send map of settled packets (bounded), so a late
        #: answer still updates the answering worker's score — that is
        #: how a limping worker's trickle earns its recovery.
        self.recent_sends: Dict[int, Dict[int, float]] = {}
        #: worker index -> outstanding hedge-race loss (see _Suspect).
        self.suspects: Dict[int, _Suspect] = {}
        #: Monotonic time of the last periodic health sample.
        self.last_sample_at = 0.0
        self.quarantined: set = set()
        #: worker index -> probation state (created at quarantine).
        self.breakers: Dict[int, _Breaker] = {}
        self.stopping = False
        #: Results that arrived for a port the collector is not currently
        #: waiting on (scm out-of-order recovery).
        self.stash: Dict[int, Any] = {}
        #: (edge, envelope, flush_attempts) re-dispatches waiting for
        #: queue space.
        self.pending_sends: List[Tuple[str, Any, int]] = []
        #: Dispatch edges whose Stop is withheld until no packet is in
        #: flight: releasing Stop early would let a survivor exit before
        #: a re-dispatched packet reaches it.
        self.held_stops: List[str] = []
        #: Online re-mapping: workers migrated out of the rotation.
        #: Stronger than a demotion (no trickle — full dispatch
        #: exclusion), weaker than quarantine (restoration is expected).
        self.migrated: set = set()
        #: worker index -> farm completions observed while the worker
        #: stayed continuously limping (the count-based migrate trigger).
        self.remap_counts: Dict[int, int] = {}
        #: migrated worker index -> farm completions since its last
        #: probation duplicate (the count-based probe cadence).
        self.remap_probe_gap: Dict[int, int] = {}


class SupervisedKernel:
    """Fault-aware wrapper around a thread-style kernel.

    Every primitive not overridden here (``join_``, ``blackboard``,
    span lists, ...) delegates to the base kernel, so the wrapper is a
    drop-in replacement wherever a kernel is accepted.
    """

    def __init__(
        self,
        base: Any,
        topology: FaultTopology,
        *,
        plan: Optional[FaultPlan] = None,
        policy: Optional[FaultPolicy] = None,
        report: Optional[FaultReport] = None,
        board: Optional[HealthBoard] = None,
        processor: Optional[str] = None,
    ):
        self._base = base
        self._topology = topology
        self._matcher = PlanMatcher(plan) if plan else None
        self._policy = policy or FaultPolicy()
        self._hp = self._policy.health_policy()
        self._rp = self._policy.remap_policy()
        #: Latched persistent slowdowns: pid/processor -> factor.
        self._limp_factors: Dict[str, float] = {}
        self.fault_report = report if report is not None else FaultReport()
        self._board = board or HealthBoard.local(topology.n_slots)
        #: None = single-process kernel (owns every farm); otherwise the
        #: processor this kernel instance hosts.
        self._processor = processor
        self._local = threading.local()
        self._slot_of_pid = {
            w.pid: w.slot for farm in topology.farms for w in farm.workers
        }
        # Farm states exist only where the owner (master / split+merge)
        # runs; other processes just wrap/unwrap envelopes statelessly.
        self._states: Dict[str, _FarmState] = {}
        self._dispatch: Dict[str, Tuple[_FarmState, FarmWorker]] = {}
        self._collect: Dict[str, Tuple[_FarmState, FarmWorker]] = {}
        for farm in topology.farms:
            if not farm.supervised or not self._owns(farm):
                continue
            state = _FarmState(farm, self._hp)
            self._states[farm.sid] = state
            for worker in farm.workers:
                self._dispatch[worker.dispatch_edge] = (state, worker)
                self._collect[worker.collect_edge] = (state, worker)
        self._beat_lock = threading.Lock()
        self._beating: List[Tuple[int, threading.Thread]] = []
        self._beater: Optional[threading.Thread] = None
        # The beater must pace itself on a *local* event, never on the
        # shared multiprocessing stop event: a process exiting while a
        # daemon thread sits inside the shared Event's lock poisons the
        # semaphore for every other process (observed as a parent hang
        # in stop_event.set()).
        self._beat_stop = threading.Event()

    def _owns(self, farm: Farm) -> bool:
        if self._processor is None:
            return True
        owner = self._topology.pid_to_processor.get(farm.owner_pid)
        # ``processor`` may be one mapped processor (processes backend)
        # or a set of them (a tcp worker hosting several): either way
        # the supervisor runs where the farm's master lives.
        if isinstance(self._processor, (set, frozenset)):
            return owner in self._processor
        return owner == self._processor

    # -- plumbing --------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)

    def _now_us(self) -> float:
        return (time.perf_counter() - self._base._epoch) * 1e6

    def _check_stop(self) -> None:
        if self._base._stop_event.is_set():
            raise Shutdown

    def _identity(self) -> Tuple[Optional[str], Optional[str]]:
        """(process id, processor) of the calling executive thread."""
        name = threading.current_thread().name
        pid = self._topology.thread_to_pid.get(name)
        proc = self._topology.pid_to_processor.get(pid) if pid else None
        return pid, proc

    # -- heartbeats ------------------------------------------------------------

    def _register_beat(self, slot: int, thread: threading.Thread) -> None:
        self._board.beat(slot)
        with self._beat_lock:
            self._beating.append((slot, thread))
            if self._beater is None:
                self._beater = threading.Thread(
                    target=self._beat_loop, name="fault-heartbeat", daemon=True
                )
                self._beater.start()

    def _beat_loop(self) -> None:
        while not self._beat_stop.wait(self._policy.heartbeat_interval_s):
            with self._beat_lock:
                live = [(s, t) for s, t in self._beating if t.is_alive()]
            for slot, _thread in live:
                self._board.beat(slot)

    def shutdown(self) -> None:
        """Stop and join the heartbeat thread (call before process exit)."""
        self._beat_stop.set()
        beater = self._beater
        if beater is not None:
            beater.join(1.0)

    # -- introspection ---------------------------------------------------------

    def health_snapshot(self) -> Dict[str, Any]:
        """Per-farm worker health + hedge clock, for stats surfaces."""
        out: Dict[str, Any] = {}
        for sid, state in self._states.items():
            with state.lock:
                workers = []
                for w in state.farm.workers:
                    row = state.health.workers[w.index].to_row()
                    row["worker"] = w.pid
                    if w.index in state.quarantined:
                        row["state"] = "quarantined"
                    elif w.index in state.migrated:
                        row["state"] = "migrated"
                    workers.append(row)
                out[sid] = {"workers": workers,
                            "hedge": state.hedge.to_dict()}
        return out

    # -- injection -------------------------------------------------------------

    def _maybe_drop(self, edge: str) -> bool:
        if self._matcher is None:
            return False
        specs = self._matcher.fire(
            edge=edge, kinds=("drop", "partial-partition")
        )
        for spec in specs:
            pid, proc = self._identity()
            self.fault_report.add(
                "injected", spec.kind, edge, self._now_us(), processor=proc,
                note=f"sent by {pid or 'unknown'}"
                + (" (link stalled one direction)"
                   if spec.kind == "partial-partition" else ""),
            )
        return bool(specs)

    def _inject_compute(self) -> None:
        pid, proc = self._identity()
        specs = self._matcher.fire(
            process=pid, processor=proc,
            kinds=("crash", "stall", "delay", "slow-worker", "limplock"),
        )
        if not specs:
            return
        for spec in specs:
            if spec.kind == "limplock":
                # Latch: from here on *every* computation by this target
                # runs ``factor`` times slower (see call_), while its
                # heartbeat stays perfectly fresh — the gray failure.
                self._limp_factors[pid or spec.target] = spec.factor
                self.fault_report.add(
                    "injected", "limplock", pid or spec.target,
                    self._now_us(), processor=proc,
                    note=f"x{spec.factor:g} slowdown latched",
                )
            elif spec.kind in ("delay", "slow-worker"):
                self.fault_report.add(
                    "injected", spec.kind, pid or spec.target,
                    self._now_us(),
                    processor=proc, note=f"{spec.delay_us:.0f} us",
                )
                time.sleep(spec.delay_us / 1e6)
        if any(s.kind == "stall" for s in specs):
            self.fault_report.add(
                "injected", "stall", pid or "?", self._now_us(),
                processor=proc,
            )
            # Park forever (until teardown): the thread stays alive and
            # keeps heartbeating, exactly like a wedged computation.
            self._base._stop_event.wait()
            raise Shutdown
        if any(s.kind == "crash" for s in specs):
            self.fault_report.add(
                "injected", "crash", pid or "?", self._now_us(),
                processor=proc,
            )
            raise WorkerCrash(pid or "?")

    # -- primitives ------------------------------------------------------------

    def spawn_(self, name: str, body: Callable[[], None]) -> Any:
        def guarded() -> None:
            try:
                body()
            except WorkerCrash:
                pass  # the injected death of this executive thread

        thread = self._base.spawn_(name, guarded)
        pid = self._topology.thread_to_pid.get(name)
        slot = self._slot_of_pid.get(pid)
        if slot is not None and isinstance(thread, threading.Thread):
            self._register_beat(slot, thread)
        return thread

    def call_(self, func: Callable, *args: Any) -> Any:
        if self._matcher is None:
            return self._base.call_(func, *args)
        self._inject_compute()
        factor = None
        if self._limp_factors:
            pid, proc = self._identity()
            factor = self._limp_factors.get(pid) or (
                self._limp_factors.get(proc) if proc else None
            )
        if factor is None:
            return self._base.call_(func, *args)
        # A limping worker: the computation itself is untouched (results
        # stay bit-identical), but its *service time* is multiplied —
        # measured, not guessed, so the slowdown scales with real work.
        start = time.monotonic()
        try:
            return self._base.call_(func, *args)
        finally:
            stretch = (time.monotonic() - start) * (factor - 1.0)
            if stretch > 0:
                time.sleep(stretch)

    def send_(self, edge: str, value: Any) -> None:
        entry = self._dispatch.get(edge)
        if entry is not None:
            return self._send_dispatch(entry[0], entry[1], edge, value)
        wout = self._topology.work_out_edges.get(edge)
        if wout is not None and not self._base.is_stop(value):
            seq = getattr(self._local, "seq", None)
            if seq is not None:
                if self._maybe_drop(edge):
                    return None
                return self._base.send_(edge, Result(seq, value))
        if self._maybe_drop(edge) and not self._base.is_stop(value):
            return None
        return self._base.send_(edge, value)

    def _send_dispatch(self, state: _FarmState, worker: FarmWorker,
                       edge: str, value: Any) -> None:
        if self._base.is_stop(value):
            with state.lock:
                state.stopping = True
                if state.suspects:
                    self._judge_suspects(state, time.monotonic(),
                                         at_stop=True)
                if state.inflight or state.pending_sends:
                    # Workers exit on Stop; keep them alive until every
                    # in-flight packet is answered or re-dispatched.
                    state.held_stops.append(edge)
                    return None
            return self._base.send_(edge, value)
        with state.lock:
            seq = state.next_seq
            state.next_seq += 1
            assigned, out_edge = worker.index, edge
            if (worker.index in state.quarantined
                    or worker.index in state.migrated):
                # The dispatcher still addresses the dead (or migrated)
                # worker's port; reroute transparently so its full queue
                # cannot block us.
                target = self._pick_survivor(state, seq)
                if target is None:
                    self._abandon(state, None)
                assigned, out_edge = target.index, target.dispatch_edge
            elif (self._hp.enabled
                    and not state.health.keeps(worker.index, seq)):
                # Health-weighted dispatch: a limping worker keeps only
                # a demoted fraction of the packets addressed to it (it
                # still gets a trickle — that is how its score recovers
                # and it earns readmission); the rest reroute to the
                # healthiest peer, transparently to the master.
                alive = [w.index for w in state.farm.workers
                         if w.index not in state.quarantined
                         and w.index not in state.migrated]
                demoted = state.health.pick_healthy(
                    seq, exclude={worker.index}, alive=alive
                )
                if demoted is not None:
                    target = state.farm.workers[demoted]
                    assigned, out_edge = target.index, target.dispatch_edge
            state.inflight[seq] = _InFlight(
                seq, value, worker.index, assigned, time.monotonic()
            )
        if self._maybe_drop(edge):
            return None  # in-flight record stays: the supervisor recovers
        return self._base.send_(out_edge, Packet(seq, value))

    def recv_(self, edge: str) -> Any:
        if self._matcher is not None:
            self._inject_starvation(edge)
        entry = self._collect.get(edge)
        if entry is not None:
            return self._recv_collect(entry[0], entry[1])
        if edge in self._topology.work_in_edges:
            value = self._base.recv_(edge)
            if isinstance(value, Packet):
                self._local.seq = value.seq
                return value.value
            return value  # Stop (or plain value) passes through
        return self._base.recv_(edge)

    def _inject_starvation(self, edge: str) -> None:
        """``credit-starvation``: the consumer parks *before* dequeuing.

        Nothing is consumed from this edge again, so the queue backs up
        and — on the tcp backend, where credits are granted per dequeue
        — no flow-control credit ever returns to the senders.  The
        worker's heartbeat thread keeps beating throughout: upstream
        sees BEAT fresh, COUNT flat, the textbook gray failure.
        """
        pid, proc = self._identity()
        specs = self._matcher.fire(
            process=pid, processor=proc, kinds=("credit-starvation",)
        )
        if not specs:
            return
        self.fault_report.add(
            "injected", "credit-starvation", pid or specs[0].target,
            self._now_us(), processor=proc,
            note=f"consumer stopped draining {edge}",
        )
        self._base._stop_event.wait()
        raise Shutdown

    def stop_(self, edge: str) -> None:
        self.send_(edge, self._base.stop_token)

    def alt_(self, edges: List[str]) -> Tuple[str, Any]:
        farm = self._topology.farm_of_collect_edges(edges)
        if farm is not None and farm.sid in self._states:
            return self._alt_collect(self._states[farm.sid], edges)
        return self._base.alt_(edges)

    # -- the supervision loops -------------------------------------------------

    def _alt_collect(self, state: _FarmState,
                     edges: List[str]) -> Tuple[str, Any]:
        """df/tf master collect: any port, physical arrival edge."""
        while True:
            self._check_stop()
            for edge in edges:
                try:
                    raw = self._base.try_recv_(edge)
                except queue.Empty:
                    continue
                if isinstance(raw, Result):
                    entry = self._collect.get(edge)
                    if entry is not None:
                        # Any answer from a quarantined worker — probe
                        # or stale original — proves it alive.
                        self._readmit(state, entry[1])
                    status, _origin, value = self._accept(
                        state, raw, entry[1] if entry else None
                    )
                    if status == "dup":
                        continue
                    return edge, value
                return edge, raw  # Stop or unenveloped value
            self._supervise(state)
            time.sleep(0.0005)

    def _recv_collect(self, state: _FarmState, worker: FarmWorker) -> Any:
        """scm merge collect: port-ordered, stash reorders origins."""
        slot = worker.index
        while True:
            self._check_stop()
            if slot in state.stash:
                return state.stash.pop(slot)
            for w in state.farm.workers:
                try:
                    raw = self._base.try_recv_(w.collect_edge)
                except queue.Empty:
                    continue
                if isinstance(raw, Result):
                    self._readmit(state, w)
                    status, origin, value = self._accept(state, raw, w)
                    if status == "dup":
                        continue
                elif self._base.is_stop(raw):
                    # A physical Stop can only come from the worker that
                    # owns the edge, so it is that port's terminator.
                    origin, value = w.index, raw
                else:
                    origin, value = w.index, raw
                if origin == slot:
                    return value
                state.stash[origin] = value
            if self._synthesize_stop(state, slot):
                return self._base.stop_token
            self._supervise(state)
            time.sleep(0.0005)

    def _synthesize_stop(self, state: _FarmState, slot: int) -> bool:
        """A dead worker forwards no Stop; fake it once it owes nothing."""
        if not state.stopping or slot not in state.quarantined:
            return False
        with state.lock:
            return not any(
                rec.origin_slot == slot for rec in state.inflight.values()
            )

    def _accept(self, state: _FarmState, result: Result,
                arrival: Optional[FarmWorker]) -> Tuple[str, int, Any]:
        """Dedupe and settle one arriving result envelope.

        ``arrival`` is the worker whose collect edge the envelope
        physically came in on: its service time (send-to-it -> now) is
        what feeds the health scores — including on the dup path, so a
        limping worker's late answers still move its EWMA and let it
        recover.  Dedup happens *here*, below the realtime layer, which
        is what keeps FrameLedger conservation exact under hedging: the
        collector sees each seq exactly once, whatever raced.
        """
        now_us = self._now_us()
        now = time.monotonic()
        with state.lock:
            if arrival is not None:
                # Answering anything clears an outstanding suspicion.
                state.suspects.pop(arrival.index, None)
            rec = state.inflight.pop(result.seq, None)
            if rec is None:
                self._observe(state, arrival,
                              state.recent_sends.get(result.seq), now)
                origin = state.satisfied.get(result.seq, -1)
                self.fault_report.add(
                    "duplicate",
                    "hedge-waste" if result.seq in state.hedged
                    else "late-result",
                    state.farm.sid, now_us, seq=result.seq,
                )
                if result.seq in state.hedged:
                    state.hedge.wasted += 1
                return "dup", origin, None
            self._observe(state, arrival, rec.sends, now)
            if self._rp.enabled:
                self._note_completion(state)
            state.recent_sends[result.seq] = rec.sends
            while len(state.recent_sends) > _RECENT_SENDS:
                state.recent_sends.pop(next(iter(state.recent_sends)))
            if rec.hedges > 0 and arrival is not None \
                    and arrival.index != rec.assigned:
                state.hedge.won += 1
                win_latency_us = (
                    now - rec.sends.get(arrival.index, now)
                ) * 1e6
                self.fault_report.add(
                    "hedge-win", "overdue", arrival.pid, now_us,
                    processor=arrival.processor, seq=result.seq,
                    latency_us=win_latency_us,
                )
                if rec.assigned not in state.quarantined:
                    state.suspects[rec.assigned] = _Suspect(
                        result.seq,
                        rec.sends.get(rec.assigned, rec.sent_at),
                        win_latency_us, arrival,
                    )
            if rec.attempts > 0 or rec.hedges > 0:
                state.satisfied[result.seq] = rec.origin_slot
                if rec.redispatch_record is not None:
                    rec.redispatch_record.latency_us = (
                        now_us - rec.redispatch_record.time_us
                    )
            return "ok", rec.origin_slot, result.value

    def _observe(self, state: _FarmState, arrival: Optional[FarmWorker],
                 sends: Optional[Dict[int, float]], now: float) -> None:
        """Feed one answer's service time into the health machinery.

        Called with ``state.lock`` held.  Attribution needs to know when
        the packet was sent *to the answering worker* — a re-dispatched
        or hedged packet has one send time per worker it visited.
        """
        if not self._hp.enabled or arrival is None or sends is None:
            return
        sent_at = sends.get(arrival.index)
        if sent_at is None:
            return
        service = now - sent_at
        event = state.health.observe(arrival.index, service, now)
        if state.health.state(arrival.index) != LIMPING:
            # Only healthy answers calibrate the hedge threshold: letting
            # a limping worker's stretched services into the percentile
            # window inflates the threshold until hedging self-disables
            # (the clock must answer "how long would a healthy worker
            # take", not "how long do packets take lately").
            state.hedge.record(service)
        if event is not None:
            self.fault_report.add(
                "restored", "stuck", arrival.pid, self._now_us(),
                processor=arrival.processor,
            )

    def _supervise(self, state: _FarmState) -> None:
        """One scan: flush queued re-sends, time out overdue packets."""
        self._flush_sends(state)
        now = time.monotonic()
        policy = self._policy
        with state.lock:
            for seq, rec in list(state.inflight.items()):
                worker = state.farm.workers[rec.assigned]
                elapsed = now - rec.sent_at
                deadline = policy.deadline_s(rec.attempts)
                if (elapsed > deadline and self._board.stale(
                        worker.slot, now, policy.heartbeat_timeout_s)):
                    kind = "crash"
                elif elapsed > deadline * policy.stall_factor:
                    kind = "stall"  # alive-but-silent, or a lost message
                else:
                    self._maybe_flag_stuck(state, rec, worker, elapsed, now)
                    self._maybe_hedge(state, rec, elapsed, now)
                    continue
                self._quarantine(state, worker, kind, seq)
                if rec.attempts >= policy.max_redispatch:
                    self._abandon(state, seq)
                target = self._pick_survivor(state, seq)
                if target is None:
                    self._abandon(state, seq)
                rec.assigned = target.index
                rec.attempts += 1
                rec.sent_at = now
                rec.sends[target.index] = now
                rec.redispatch_record = self.fault_report.add(
                    "redispatch", kind, target.pid, self._now_us(),
                    processor=target.processor, seq=seq,
                    attempts=rec.attempts,
                    note=f"packet #{seq} moved off {worker.pid}",
                )
                state.pending_sends.append(
                    (target.dispatch_edge, Packet(seq, rec.value), 0)
                )
            self._judge_suspects(state, now)
            self._evaluate_health(state, now)
            self._apply_remap(state, now)
            self._probe_quarantined(state, now)
            if (state.stopping and not state.inflight
                    and not state.pending_sends and state.held_stops):
                edges, state.held_stops = state.held_stops, []
                state.pending_sends.extend(
                    (edge, self._base.stop_token, 0) for edge in edges
                )
        self._flush_sends(state)

    def _maybe_flag_stuck(self, state: _FarmState, rec: _InFlight,
                          worker: FarmWorker, elapsed: float,
                          now: float) -> None:
        """BEAT fresh, COUNT flat: the beats-but-never-progresses case.

        Called with ``state.lock`` held.  The worker holds a packet well
        past the stuck threshold, its heartbeat is perfectly fresh (so
        the crash path will never fire) and it has completed *nothing*
        since this packet was dispatched — flag it limping long before
        the much slower stall timeout would.
        """
        if not self._hp.enabled or elapsed <= self._hp.stuck_after_s:
            return
        if self._board.stale(worker.slot, now,
                             self._policy.heartbeat_timeout_s):
            return  # dead, not limping: the crash path owns this
        health = state.health.workers[rec.assigned]
        if (health.last_done_at is not None
                and health.last_done_at >= rec.sent_at):
            return  # it finished something since: slow, not stuck
        event = state.health.mark_stuck(rec.assigned)
        if event is not None:
            self.fault_report.add(
                "limping", "stuck", worker.pid, self._now_us(),
                processor=worker.processor, seq=rec.seq,
                note=f"BEAT fresh, no completion for {elapsed * 1e3:.0f} ms",
            )

    def _maybe_hedge(self, state: _FarmState, rec: _InFlight,
                     elapsed: float, now: float) -> None:
        """Speculatively duplicate an overdue packet to a healthy worker.

        Called with ``state.lock`` held.  The threshold is adaptive —
        a multiple of a high percentile of *observed* service times —
        so hedging self-tunes to the workload instead of needing a
        configured timeout.  First result wins; :meth:`_accept` already
        discards the loser, which is exactly the dedup contract the
        breaker's probation packets rely on.
        """
        if state.stopping or rec.hedges >= self._hp.max_hedges_per_packet:
            return
        if not state.hedge.overdue(elapsed):
            return
        alive = [w.index for w in state.farm.workers
                 if w.index not in state.quarantined
                 and w.index not in state.migrated]
        target_index = state.health.pick_healthy(
            rec.seq, exclude=set(rec.sends), alive=alive
        )
        if target_index is None:
            return
        target = state.farm.workers[target_index]
        rec.hedges += 1
        rec.sends[target_index] = now
        state.hedged.add(rec.seq)
        state.hedge.issued += 1
        threshold = state.hedge.threshold_s() or 0.0
        self.fault_report.add(
            "hedge", "overdue", target.pid, self._now_us(),
            processor=target.processor, seq=rec.seq,
            note=f"in-flight {elapsed * 1e3:.0f} ms > "
                 f"threshold {threshold * 1e3:.0f} ms; duplicated off "
                 f"{state.farm.workers[rec.assigned].pid}",
        )
        state.pending_sends.append(
            (target.dispatch_edge, Packet(rec.seq, rec.value), 0)
        )

    def _judge_suspects(self, state: _FarmState, now: float,
                        at_stop: bool = False) -> None:
        """Pass verdict on workers that lost a hedge race and stayed silent.

        Called with ``state.lock`` held.  The deadlines are the same
        crash/stall rules the in-flight scan applies; ``at_stop`` means
        the run is ending, so silence-so-far is all the evidence there
        will ever be and the verdict is immediate.
        """
        policy = self._policy
        for index, susp in list(state.suspects.items()):
            if index in state.quarantined:
                state.suspects.pop(index)
                continue
            worker = state.farm.workers[index]
            stale = self._board.stale(worker.slot, now,
                                      policy.heartbeat_timeout_s)
            elapsed = now - susp.since
            deadline = policy.deadline_s(0)
            if at_stop:
                kind = "crash" if stale else "stall"
            elif elapsed > deadline and stale:
                kind = "crash"
            elif elapsed > deadline * policy.stall_factor:
                kind = "stall"
            else:
                continue
            state.suspects.pop(index)
            self._quarantine(state, worker, kind, susp.seq)
            # The winning hedge was this packet's re-dispatch; now that
            # the original worker is convicted, record it as such, with
            # the duplicate's real recovery latency.
            self.fault_report.add(
                "redispatch", kind, susp.rescued_by.pid, self._now_us(),
                processor=susp.rescued_by.processor, seq=susp.seq,
                attempts=1, latency_us=max(susp.win_latency_us, 1.0),
                note=f"hedged duplicate of packet #{susp.seq} off "
                     f"{worker.pid} confirmed by {kind} verdict",
            )

    def _evaluate_health(self, state: _FarmState, now: float) -> None:
        """Re-apply the score-outlier rule; emit transition + sample records.

        Called with ``state.lock`` held.
        """
        if not self._hp.enabled:
            return
        for index, new_state, reason in state.health.evaluate():
            worker = state.farm.workers[index]
            category = "limping" if new_state == LIMPING else "restored"
            score = state.health.workers[index].score or 0.0
            median = state.health.median() or 0.0
            self.fault_report.add(
                category, reason, worker.pid, self._now_us(),
                processor=worker.processor,
                note=f"score {score * 1e3:.1f} ms vs farm median "
                     f"{median * 1e3:.1f} ms",
            )
        if now - state.last_sample_at < self._hp.sample_interval_s:
            return
        state.last_sample_at = now
        now_us = self._now_us()
        for w in state.farm.workers:
            health = state.health.workers[w.index]
            if health.score is None and health.state != LIMPING:
                continue  # nothing measured yet: no counter point
            self.fault_report.add(
                "health", health.state, w.pid, now_us,
                processor=w.processor,
                value=(health.score or 0.0) * 1e3,
            )

    def _note_completion(self, state: _FarmState) -> None:
        """Advance the count-based re-map clocks on one farm completion.

        Called with ``state.lock`` held, from :meth:`_accept`'s settle
        path.  Counting *completions* rather than seconds keeps every
        re-map decision unit-free: the same packet sequence produces the
        same decision sequence whether time is wall-clock or the
        simulator's virtual microseconds.
        """
        limping = state.health.limping()
        for index in list(state.remap_counts):
            if index not in limping or index in state.migrated:
                # The streak must be continuous: recovery (or migration)
                # resets the confirmation count.
                state.remap_counts.pop(index)
        for index in limping:
            if index in state.migrated or index in state.quarantined:
                continue
            state.remap_counts[index] = state.remap_counts.get(index, 0) + 1
        for index in state.migrated:
            state.remap_probe_gap[index] = (
                state.remap_probe_gap.get(index, 0) + 1
            )

    def _apply_remap(self, state: _FarmState, now: float) -> None:
        """Migrate confirmed-limping workers out; restore recovered ones.

        Called with ``state.lock`` held.  Migration is the escalation
        above demotion: the worker leaves the dispatch rotation entirely
        and its in-flight packets drain to healthy survivors through the
        normal re-dispatch path (attempt counters and ledger
        conservation intact).  Restoration requires measured evidence —
        the probation duplicates must pull the worker's EWMA score back
        under the health layer's clear hysteresis — never mere liveness.
        """
        if not self._rp.enabled or not self._hp.enabled:
            return
        # 1. Restore migrated workers whose score recovered (HEALTHY is
        # only reachable through the clear_factor hysteresis).
        for index in sorted(state.migrated):
            if state.health.state(index) != HEALTHY:
                continue
            state.migrated.discard(index)
            state.remap_probe_gap.pop(index, None)
            worker = state.farm.workers[index]
            self.fault_report.add(
                "restored", "remap", worker.pid, self._now_us(),
                processor=worker.processor,
                note="score recovered; rejoining dispatch rotation",
            )
        # 2. Migrate workers that stayed limping past the confirmation
        # count — but only while enough healthy capacity remains.
        for index in sorted(state.remap_counts):
            if state.remap_counts[index] < self._rp.confirm_completions:
                continue
            if index in state.migrated or index in state.quarantined:
                state.remap_counts.pop(index, None)
                continue
            active = [w.index for w in state.farm.workers
                      if w.index not in state.quarantined
                      and w.index not in state.migrated
                      and w.index != index]
            healthy = [i for i in active
                       if state.health.state(i) == HEALTHY]
            if len(active) < self._rp.min_active or not healthy:
                continue  # nobody to migrate onto; demotion keeps covering
            state.remap_counts.pop(index, None)
            state.migrated.add(index)
            state.remap_probe_gap[index] = 0
            worker = state.farm.workers[index]
            score = state.health.workers[index].score or 0.0
            median = state.health.median() or 0.0
            self.fault_report.add(
                "remap", "limping", worker.pid, self._now_us(),
                processor=worker.processor,
                note=f"migrated after {self._rp.confirm_completions} farm "
                     f"completions limping (score {score * 1e3:.1f} ms vs "
                     f"median {median * 1e3:.1f} ms)",
            )
            if self._rp.drain:
                self._drain_migrated(state, worker, now)
        # 3. Probation duplicates pace the migrated worker's way back.
        if state.stopping or not state.inflight:
            return
        for index in sorted(state.migrated):
            if state.remap_probe_gap.get(index, 0) < self._rp.probe_stride:
                continue
            state.remap_probe_gap[index] = 0
            worker = state.farm.workers[index]
            rec = min(state.inflight.values(), key=lambda r: r.seq)
            rec.sends.setdefault(worker.index, now)
            self.fault_report.add(
                "probe", "remap", worker.pid, self._now_us(),
                processor=worker.processor, seq=rec.seq,
                note=f"probation duplicate of packet #{rec.seq} "
                     f"(migrated worker)",
            )
            state.pending_sends.append(
                (worker.dispatch_edge, Packet(rec.seq, rec.value), 0)
            )

    def _drain_migrated(self, state: _FarmState, worker: FarmWorker,
                        now: float) -> None:
        """Coordinated drain: re-home the migrated worker's in-flight load.

        Called with ``state.lock`` held.  Each packet still assigned to
        the migrated worker is re-dispatched to a survivor immediately
        instead of waiting for its timeout; the worker's own late answer
        (it is slow, not dead) settles as a discarded duplicate — and
        still feeds its health score, which is part of how it recovers.
        """
        for seq, rec in sorted(state.inflight.items()):
            if rec.assigned != worker.index:
                continue
            if rec.attempts >= self._policy.max_redispatch:
                continue  # let the timeout path pass final judgement
            target = self._pick_survivor(state, seq)
            if target is None or target.index == worker.index:
                continue
            rec.assigned = target.index
            rec.attempts += 1
            rec.sent_at = now
            rec.sends[target.index] = now
            rec.redispatch_record = self.fault_report.add(
                "redispatch", "remap", target.pid, self._now_us(),
                processor=target.processor, seq=seq, attempts=rec.attempts,
                note=f"drain: packet #{seq} migrated off {worker.pid}",
            )
            state.pending_sends.append(
                (target.dispatch_edge, Packet(seq, rec.value), 0)
            )

    def _probe_quarantined(self, state: _FarmState, now: float) -> None:
        """Circuit breaker: offer quarantined workers probation packets.

        Called with ``state.lock`` held.  A probe *duplicates* a live
        in-flight packet onto the quarantined worker's dispatch edge —
        never synthetic work, which could crash user functions — so the
        worker's answer is either the accepted result (it beat the
        survivor) or a discarded duplicate.  Either way its arrival on
        the worker's collect edge re-admits it (see the collect loops).
        """
        if state.stopping or not state.inflight:
            return
        policy = self._policy
        for index in sorted(state.quarantined):
            breaker = state.breakers.get(index)
            if breaker is None or now < breaker.next_probe_at:
                continue
            if breaker.probes >= policy.max_probes:
                continue  # permanently retired
            worker = state.farm.workers[index]
            rec = min(state.inflight.values(), key=lambda r: r.seq)
            rec.sends.setdefault(worker.index, now)
            breaker.probes += 1
            breaker.next_probe_at = now + policy.probe_delay_s(
                breaker.probes
            )
            self.fault_report.add(
                "probe", "probation", worker.pid, self._now_us(),
                processor=worker.processor, seq=rec.seq,
                attempts=breaker.probes,
                note=f"duplicate of packet #{rec.seq}",
            )
            state.pending_sends.append(
                (worker.dispatch_edge, Packet(rec.seq, rec.value), 0)
            )

    def _readmit(self, state: _FarmState, worker: FarmWorker) -> None:
        """A quarantined worker answered: return it to the rotation."""
        if worker.index not in state.quarantined:
            return
        with state.lock:
            if worker.index not in state.quarantined:
                return
            state.quarantined.discard(worker.index)
            state.breakers.pop(worker.index, None)
        self.fault_report.add(
            "readmit", "probation", worker.pid, self._now_us(),
            processor=worker.processor,
        )

    def _quarantine(self, state: _FarmState, worker: FarmWorker,
                    kind: str, seq: int) -> None:
        now_us = self._now_us()
        self.fault_report.add(
            "detected", kind, worker.pid, now_us,
            processor=worker.processor, seq=seq,
        )
        if worker.index not in state.quarantined:
            state.quarantined.add(worker.index)
            state.breakers[worker.index] = _Breaker(
                time.monotonic() + self._policy.probe_after_s
            )
            self.fault_report.add(
                "quarantine", kind, worker.pid, now_us,
                processor=worker.processor,
            )

    def _pick_survivor(self, state: _FarmState,
                       seq: int) -> Optional[FarmWorker]:
        survivors = [
            w.index for w in state.farm.workers
            if w.index not in state.quarantined
            and w.index not in state.migrated
        ]
        if not survivors:
            # A migrated worker is slow, not dead: better it than
            # abandoning the packet when nothing else survives.
            survivors = [
                w.index for w in state.farm.workers
                if w.index not in state.quarantined
            ]
        if not survivors:
            return None
        if self._hp.enabled:
            # Prefer fully healthy survivors: re-dispatching a packet
            # onto a limping worker just schedules the next timeout.
            index = state.health.pick_healthy(seq, exclude=set(),
                                              alive=survivors)
            if index is not None:
                return state.farm.workers[index]
        return state.farm.workers[survivors[seq % len(survivors)]]

    def _abandon(self, state: _FarmState, seq: Optional[int]) -> None:
        """Out of retries or survivors: fail the run instead of hanging."""
        self.fault_report.add(
            "abandoned", "give-up", state.farm.sid, self._now_us(), seq=seq,
            note="no survivors or re-dispatch budget exhausted",
        )
        self._base._stop_event.set()
        raise Shutdown

    def _flush_sends(self, state: _FarmState) -> None:
        """Re-dispatches use non-blocking puts so supervision never wedges.

        Each entry carries a flush-attempt counter: a *packet* whose
        target queue stays full for ``max_flush_attempts`` scans is
        dropped with an ``overflow`` record — its in-flight entry stays,
        so the normal timeout path re-dispatches it elsewhere (a worker
        whose queue never drains is overloaded and earns its quarantine).
        Stop tokens are never dropped: workers consume their queues on
        the way out, so a held-back Stop always becomes sendable.
        """
        remaining: List[Tuple[str, Any, int]] = []
        for edge, envelope, attempts in state.pending_sends:
            channel = self._base.channel(edge)
            put_nowait = getattr(channel, "put_nowait", None)
            if put_nowait is None:  # ThreadKernel wraps the queue
                put_nowait = channel.q.put_nowait
            try:
                put_nowait(envelope)
            except queue.Full:
                attempts += 1
                if (isinstance(envelope, Packet)
                        and attempts >= self._policy.max_flush_attempts):
                    self.fault_report.add(
                        "overflow", "queue-full", edge, self._now_us(),
                        seq=envelope.seq, attempts=attempts,
                        note=f"re-dispatch of packet #{envelope.seq} "
                             f"dropped after {attempts} full-queue scans",
                    )
                    continue
                remaining.append((edge, envelope, attempts))
        state.pending_sends = remaining
