"""Fault injection and supervised fault-tolerant execution.

This package gives the reproduction a failure story, in two halves:

* **Injection** — :class:`FaultPlan` describes deterministic, seeded
  crash/stall/delay/drop events.  The same JSON plan drives the
  discrete-event simulator (virtual time) and the threads/processes
  backends (real injected failures), so a chaos scenario is replayable
  across every execution layer.

* **Supervision** — :class:`~repro.faults.supervisor.SupervisedKernel`
  wraps the kernel primitives (the paper's "only platform-dependent
  part") with per-packet sequence envelopes, heartbeats, timeouts, and
  master-side re-dispatch so ``df``/``tf``/``scm`` farms survive worker
  loss.  Everything observed lands in a :class:`FaultReport` attached to
  the :class:`~repro.machine.executive.RunReport`.

The generated executive code never changes: supervision lives entirely
behind the kernel-primitive interface.
"""

from .plan import FAULT_KINDS, FaultPlan, FaultSpec, PlanError, PlanMatcher
from .policy import FaultPolicy
from .report import FaultRecord, FaultReport
from .topology import Farm, FarmWorker, FaultTopology

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "PlanError",
    "PlanMatcher",
    "FaultPolicy",
    "FaultRecord",
    "FaultReport",
    "Farm",
    "FarmWorker",
    "FaultTopology",
]
