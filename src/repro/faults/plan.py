"""Deterministic fault-injection plans.

A :class:`FaultPlan` is a *seeded, reproducible* description of what
should go wrong during a run: crash/stall/delay/message-drop events
keyed by process id, processor, or edge, each firing at its n-th
matching occurrence.  The same plan file drives every execution layer —
the discrete-event simulator charges fault costs in virtual time, the
threads and processes kernels inject real crashes and stalls — so a
scenario debugged on the simulator reproduces bit-for-bit on real
workers.

Plans serialise to a small JSON document (``repro run --faults
PLAN.json``)::

    {"version": 1,
     "events": [
        {"kind": "crash", "process": "df0.worker1", "occurrence": 0},
        {"kind": "delay", "processor": "P2", "delay_us": 5000},
        {"kind": "drop", "edge": "e7", "occurrence": 1}
     ]}
"""

from __future__ import annotations

import difflib
import json
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FAULT_KINDS",
    "OVERLOAD_KINDS",
    "EDGE_KINDS",
    "PERSISTENT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "PlanMatcher",
    "PlanError",
]

#: The supported fault kinds.
#:
#: * ``crash`` — the target executive process dies mid-computation;
#: * ``stall`` — the target hangs (never returns) until teardown;
#: * ``delay`` — the target's computation takes ``delay_us`` longer;
#: * ``drop``  — one message on the target edge is silently lost.
#:
#: Overload kinds (the real-time fault model of :mod:`repro.realtime`):
#:
#: * ``slow-worker``  — the target's computation takes ``delay_us``
#:   longer on each of ``count`` consecutive firings (persistent
#:   slowness rather than a one-off hiccup);
#: * ``burst``        — the stream source releases ``count`` consecutive
#:   frames back-to-back, ignoring its pacing period;
#: * ``input-surge``  — the stream source runs at ``factor`` times its
#:   configured rate for ``count`` frames.
#:
#: Gray-failure kinds (the limplock model of :mod:`repro.health`):
#:
#: * ``limplock``          — from its ``occurrence``-th firing on, the
#:   target's every computation takes ``factor`` times longer, for the
#:   rest of the run (a slow-but-alive worker that keeps heartbeating);
#: * ``partial-partition`` — the target edge silently loses the
#:   ``count`` messages starting at ``occurrence`` (one direction of a
#:   link stalls; the reverse direction stays up);
#: * ``credit-starvation`` — from its ``occurrence``-th receive on, the
#:   target process stops consuming (and therefore stops returning flow
#:   -control credits), backing up every queue feeding it.
FAULT_KINDS = ("crash", "stall", "delay", "drop",
               "slow-worker", "burst", "input-surge",
               "limplock", "partial-partition", "credit-starvation")

#: Kinds that fire over a window of ``count`` occurrences (the classic
#: kinds keep their fire-exactly-once contract via the default count=1).
OVERLOAD_KINDS = ("slow-worker", "burst", "input-surge",
                  "partial-partition")

#: Kinds that target an edge rather than a process/processor.
EDGE_KINDS = ("drop", "partial-partition")

#: Kinds that latch on first firing and persist to the end of the run.
PERSISTENT_KINDS = ("limplock", "credit-starvation")


class PlanError(ValueError):
    """A fault plan could not be parsed or is inconsistent."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Exactly one of ``process`` (process-graph id, e.g. ``df0.worker1``),
    ``processor`` (architecture id, e.g. ``P2``) or ``edge`` (``e<i>``,
    the index into ``graph.edges``) selects the target.  ``occurrence``
    picks the n-th matching event (0-based): for compute faults the n-th
    firing of the target, for drops the n-th message on the edge — this
    is how a fault is keyed to a particular stream iteration.
    """

    kind: str
    process: Optional[str] = None
    processor: Optional[str] = None
    edge: Optional[str] = None
    occurrence: int = 0
    delay_us: float = 0.0
    #: How many consecutive occurrences the fault covers (window kinds:
    #: slow-worker/burst/input-surge; the classic kinds fire once).
    count: int = 1
    #: Rate multiplier for ``input-surge`` (source runs this much faster).
    factor: float = 2.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise PlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        for name in ("occurrence", "count"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise PlanError(
                    f"{name} must be an integer, got {value!r}"
                )
        for name in ("delay_us", "factor"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise PlanError(
                    f"{name} must be a number, got {value!r}"
                )
        targets = [t for t in (self.process, self.processor, self.edge) if t]
        if len(targets) != 1:
            raise PlanError(
                f"fault {self.kind!r} must name exactly one of process/"
                f"processor/edge, got {targets!r}"
            )
        if self.kind in EDGE_KINDS and self.edge is None:
            raise PlanError(f"{self.kind!r} faults target an edge")
        if self.kind not in EDGE_KINDS and self.edge is not None:
            raise PlanError(f"{self.kind!r} faults target a process/processor")
        if self.occurrence < 0:
            raise PlanError("occurrence must be >= 0")
        if self.count < 1:
            raise PlanError("count must be >= 1")
        if self.delay_us < 0:
            raise PlanError(
                f"delay_us must be >= 0, got {self.delay_us!r}"
            )
        if self.kind in ("delay", "slow-worker") and self.delay_us <= 0:
            raise PlanError(
                f"{self.kind!r} faults need a positive delay_us, got "
                f"{self.delay_us!r}"
            )
        if self.kind not in ("delay", "slow-worker") and self.delay_us > 0:
            raise PlanError(
                f"delay_us is meaningless for {self.kind!r} faults "
                f"(only 'delay' and 'slow-worker' use it)"
            )
        if self.factor <= 0:
            raise PlanError("factor must be positive")
        if self.kind == "limplock" and self.factor <= 1.0:
            raise PlanError(
                f"'limplock' needs a slowdown factor > 1, got "
                f"{self.factor!r}"
            )

    @property
    def target(self) -> str:
        return self.process or self.processor or self.edge or "?"

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "occurrence": self.occurrence}
        for key in ("process", "processor", "edge"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.kind in ("delay", "slow-worker"):
            out["delay_us"] = self.delay_us
        if self.count != 1:
            out["count"] = self.count
        if self.kind in ("input-surge", "limplock"):
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        known = {"kind", "process", "processor", "edge", "occurrence",
                 "delay_us", "count", "factor"}
        unknown = set(data) - known
        if unknown:
            hints = []
            for name in sorted(unknown):
                close = difflib.get_close_matches(name, known, n=1)
                hints.append(f"{name!r}" + (f" (did you mean {close[0]!r}?)"
                                            if close else ""))
            raise PlanError(
                f"unknown fault-event field(s) {', '.join(hints)}; "
                f"known fields: {sorted(known)}"
            )
        if "kind" not in data:
            raise PlanError("fault event is missing 'kind'")
        return cls(**data)


@dataclass
class FaultPlan:
    """An ordered collection of planned faults (JSON round-trippable)."""

    events: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict:
        out: Dict = {"version": 1,
                     "events": [e.to_dict() for e in self.events]}
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    def dumps(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.dumps() + "\n")

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise PlanError(f"fault plan must be an object, got "
                            f"{type(data).__name__}")
        version = data.get("version", 1)
        if version != 1:
            raise PlanError(f"unsupported fault-plan version {version!r}")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise PlanError("'events' must be a list")
        return cls(
            events=[FaultSpec.from_dict(e) for e in events],
            seed=data.get("seed"),
        )

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise PlanError(f"fault plan is not valid JSON: {err}") from err
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.loads(handle.read())

    # -- generation --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        workers: Sequence[str],
        kinds: Sequence[str] = ("crash",),
        n_events: int = 1,
        max_occurrence: int = 0,
        delay_us: float = 5_000.0,
        max_count: int = 1,
        factor: float = 2.0,
        edges: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """A deterministic seeded plan over the given worker processes.

        The same ``(seed, workers, kinds, n_events)`` always yields the
        same plan, so chaos scenarios are replayable from one integer.
        ``max_count`` bounds the window length drawn for overload kinds;
        edge-targeted kinds draw from ``edges`` (required if chosen).
        """
        rng = random.Random(seed)
        events = []
        for _ in range(n_events):
            kind = rng.choice(list(kinds))
            count = 1
            if kind in OVERLOAD_KINDS:
                count = rng.randint(1, max(1, max_count))
            target: Dict[str, str] = {}
            if kind in EDGE_KINDS:
                if not edges:
                    raise PlanError(
                        f"{kind!r} targets an edge: pass edges= to random()"
                    )
                target["edge"] = rng.choice(list(edges))
            else:
                target["process"] = rng.choice(list(workers))
            events.append(
                FaultSpec(
                    kind=kind,
                    occurrence=rng.randint(0, max_occurrence),
                    delay_us=delay_us if kind in ("delay", "slow-worker")
                    else 0.0,
                    count=count,
                    factor=max(factor, 1.5) if kind == "limplock"
                    else factor,
                    **target,
                )
            )
        return cls(events=events, seed=seed)


class PlanMatcher:
    """Stateful runtime matcher: counts occurrences, fires each window.

    Injection sites call :meth:`fire` with what they know about the
    current event (the firing process, its processor, the edge being
    sent on) and get back the specs that trigger *now*.  Each spec keeps
    its own match counter and fires on occurrences ``occurrence ..
    occurrence + count - 1`` — once for the classic kinds (count=1), a
    consecutive window for the overload kinds — deterministic regardless
    of thread interleaving (the counter is guarded by a lock for the
    real backends).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._counts = [0] * len(plan.events)
        self._fires = [0] * len(plan.events)
        self._lock = threading.Lock()

    def fire(
        self,
        *,
        process: Optional[str] = None,
        processor: Optional[str] = None,
        edge: Optional[str] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> List[FaultSpec]:
        """Specs triggering on this event (and consume their occurrence)."""
        triggered: List[FaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self.plan.events):
                if kinds is not None and spec.kind not in kinds:
                    continue
                if spec.edge is not None:
                    if edge is None or spec.edge != edge:
                        continue
                elif spec.process is not None:
                    if process is None or spec.process != process:
                        continue
                else:
                    if processor is None or spec.processor != processor:
                        continue
                count = self._counts[i]
                self._counts[i] = count + 1
                if spec.occurrence <= count < spec.occurrence + spec.count:
                    self._fires[i] += 1
                    triggered.append(spec)
        return triggered

    def pending(self) -> List[FaultSpec]:
        """Specs that never fired (e.g. their target never ran)."""
        return [
            spec
            for spec, fires in zip(self.plan.events, self._fires)
            if fires == 0
        ]
