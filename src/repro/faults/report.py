"""Fault accounting: what went wrong, what the supervisor did about it.

Every execution layer that understands faults (the simulator and the
supervised thread/process kernels) records :class:`FaultRecord` entries
into a :class:`FaultReport`; the report rides on
:class:`~repro.machine.executive.RunReport` (``report.faults``) and can
be projected into a trace as Chrome instant events so detections and
re-dispatches show up inline with the compute/transfer Gantt.

Records are plain data (picklable) because on the processes backend they
are produced inside worker OS processes and merged by the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["FaultRecord", "FaultReport"]

#: Record categories, in lifecycle order.
CATEGORIES = (
    "injected",    # a planned fault actually happened
    "detected",    # the supervisor concluded a worker/packet failed
    "redispatch",  # an in-flight packet was re-sent to a survivor
    "quarantine",  # a worker (and its processor) was retired from service
    "duplicate",   # a late result from a presumed-dead worker was discarded
    "abandoned",   # a packet exhausted its re-dispatch budget
    "probe",       # the circuit breaker sent a probation packet
    "readmit",     # a quarantined worker proved alive and rejoined
    "overflow",    # a queued re-dispatch overran its flush budget
    "limping",     # a worker was flagged slow-but-alive (gray failure)
    "restored",    # a limping worker recovered its standing
    "hedge",       # an overdue packet was speculatively duplicated
    "hedge-win",   # the speculative duplicate answered first
    "health",      # periodic per-worker health score sample (counter)
    "remap",       # a confirmed-limping worker was migrated off entirely
)


@dataclass
class FaultRecord:
    """One fault-related event (times in µs since the run epoch)."""

    category: str
    kind: str  # crash/stall/delay/drop, or the supervisor's diagnosis
    target: str  # process id, edge name, or processor
    time_us: float
    processor: Optional[str] = None
    seq: Optional[int] = None  # supervised-packet sequence number
    attempts: Optional[int] = None
    latency_us: Optional[float] = None  # recovery latency for redispatches
    value: Optional[float] = None  # numeric sample (health score counters)
    note: str = ""

    def to_dict(self) -> Dict:
        out = {"category": self.category, "kind": self.kind,
               "target": self.target, "time_us": self.time_us}
        for key in ("processor", "seq", "attempts", "latency_us", "value"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.note:
            out["note"] = self.note
        return out


@dataclass
class FaultReport:
    """Aggregate fault story of one run."""

    records: List[FaultRecord] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.records)

    # -- recording ---------------------------------------------------------

    def add(self, category: str, kind: str, target: str, time_us: float,
            **detail) -> FaultRecord:
        record = FaultRecord(category, kind, target, time_us, **detail)
        self.records.append(record)
        return record

    def merge(self, other: Optional["FaultReport"]) -> "FaultReport":
        if other is not None:
            self.records.extend(other.records)
        return self

    def sorted(self) -> "FaultReport":
        self.records.sort(key=lambda r: r.time_us)
        return self

    # -- views -------------------------------------------------------------

    def by_category(self, category: str) -> List[FaultRecord]:
        return [r for r in self.records if r.category == category]

    @property
    def injected(self) -> List[FaultRecord]:
        return self.by_category("injected")

    @property
    def detected(self) -> List[FaultRecord]:
        return self.by_category("detected")

    @property
    def redispatches(self) -> int:
        return len(self.by_category("redispatch"))

    @property
    def duplicates(self) -> int:
        return len(self.by_category("duplicate"))

    @property
    def hedges(self) -> int:
        return len(self.by_category("hedge"))

    @property
    def hedge_wins(self) -> int:
        return len(self.by_category("hedge-win"))

    @property
    def remaps(self) -> List[str]:
        """Targets ever migrated by the re-mapper, in decision order."""
        out = []
        for r in self.by_category("remap"):
            tag = f"{r.target}@{r.processor}" if r.processor else r.target
            if tag not in out:
                out.append(tag)
        return out

    @property
    def limping(self) -> List[str]:
        """Targets ever flagged limping, ``process@processor`` order."""
        out = []
        for r in self.by_category("limping"):
            tag = f"{r.target}@{r.processor}" if r.processor else r.target
            if tag not in out:
                out.append(tag)
        return out

    def health_rows(self) -> List[Dict]:
        """Latest per-worker health sample, one row per worker.

        Built from the periodic ``health`` records the supervisor emits;
        a worker's row carries its most recent state and EWMA score (ms)
        plus lifetime limp/restore counts.  This is what ``repro stats``
        and the serve plane display.
        """
        latest: Dict[str, FaultRecord] = {}
        flagged: Dict[str, int] = {}
        restored: Dict[str, int] = {}
        for r in self.records:
            if r.category == "health":
                prev = latest.get(r.target)
                if prev is None or r.time_us >= prev.time_us:
                    latest[r.target] = r
            elif r.category == "limping":
                flagged[r.target] = flagged.get(r.target, 0) + 1
            elif r.category == "restored":
                restored[r.target] = restored.get(r.target, 0) + 1
        rows = []
        for target in sorted(set(latest) | set(flagged) | set(restored)):
            r = latest.get(target)
            rows.append({
                "worker": target,
                "state": r.kind if r is not None else "limping",
                "score_ms": (round(r.value, 3)
                             if r is not None and r.value is not None
                             else None),
                "flagged": flagged.get(target, 0),
                "restored": restored.get(target, 0),
            })
        return rows

    @property
    def quarantined(self) -> List[str]:
        """Quarantined targets, ``process@processor``, in detection order."""
        out = []
        for r in self.by_category("quarantine"):
            tag = f"{r.target}@{r.processor}" if r.processor else r.target
            if tag not in out:
                out.append(tag)
        return out

    def recovery_latencies(self) -> List[float]:
        """Re-dispatch recovery latencies (µs), in event order."""
        return [
            r.latency_us
            for r in self.by_category("redispatch")
            if r.latency_us is not None
        ]

    def summary(self) -> str:
        latencies = self.recovery_latencies()
        worst = f", worst recovery {max(latencies) / 1000:.1f} ms" \
            if latencies else ""
        quarantined = ", ".join(self.quarantined) or "none"
        hedged = ""
        if self.hedges:
            hedged = (f"; {self.hedges} hedge(s), "
                      f"{self.hedge_wins} won")
        limping = ""
        if self.limping:
            limping = f"; limping: {', '.join(self.limping)}"
        if self.remaps:
            limping += f"; re-mapped: {', '.join(self.remaps)}"
        return (
            f"faults: {len(self.injected)} injected, "
            f"{len(self.detected)} detected, "
            f"{self.redispatches} re-dispatch(es){worst}; "
            f"quarantined: {quarantined}; "
            f"{self.duplicates} duplicate(s) discarded"
            f"{hedged}{limping}"
        )

    # -- projections -------------------------------------------------------

    def annotate_trace(self, trace) -> None:
        """Add one instant event per record to a machine trace.

        Periodic ``health`` samples become Chrome *counter* series
        (``health:<worker>``) instead of instants, so a worker's score
        renders as a continuous curve above the Gantt rows.
        """
        add_counter = getattr(trace, "add_counter", None)
        for r in self.records:
            if r.category == "health":
                if add_counter is not None and r.value is not None:
                    add_counter(
                        f"health:{r.target}", r.processor or r.target,
                        r.time_us, {"score_ms": r.value,
                                    "limping": 1.0 if r.kind == "limping"
                                    else 0.0},
                    )
                continue
            detail = f"{r.kind} {r.target}"
            if r.latency_us is not None:
                detail += f" (recovery {r.latency_us:.0f} us)"
            trace.add_instant(
                f"fault:{r.category}", r.processor or r.target,
                r.time_us, detail=detail,
            )

    # -- pickling across OS processes --------------------------------------

    def to_payload(self) -> List[Dict]:
        return [r.to_dict() for r in self.records]

    @classmethod
    def from_payload(cls, payload: List[Dict]) -> "FaultReport":
        report = cls()
        for data in payload:
            report.records.append(FaultRecord(**data))
        return report
