"""Process network templates and skeleton expansion."""

from .graph import Edge, GraphError, Process, ProcessGraph, ProcessKind
from .templates import (
    FarmPorts,
    ScmPorts,
    instantiate_df,
    instantiate_scm,
    instantiate_tf,
)
from .expand import expand_program

__all__ = [
    "Edge",
    "GraphError",
    "Process",
    "ProcessGraph",
    "ProcessKind",
    "FarmPorts",
    "ScmPorts",
    "instantiate_df",
    "instantiate_scm",
    "instantiate_tf",
    "expand_program",
]
