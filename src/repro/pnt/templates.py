"""Process network templates (PNTs) — the operational skeleton definitions.

"For this a classical representation of skeletons as process network
templates is used.  PNTs are incomplete graph descriptions, which are
parametric in the degree of parallelism ..., in the sequential function
computed by some of their nodes and in the data types attached to their
edges" (section 2).

Each ``instantiate_*`` function stamps one template into a
:class:`~repro.pnt.graph.ProcessGraph`, returning the (process, port)
pairs where the instance consumes its data arguments and produces its
result.  The ``df`` template follows the paper's Fig. 1: a Master
dispatching packets to ``n`` Workers, each flanked by ``M->W`` and
``W->M`` router processes (co-located with their worker, as on the
ring-connected Transvision machine).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import Process, ProcessGraph, ProcessKind

__all__ = [
    "Port",
    "instantiate_df",
    "instantiate_tf",
    "instantiate_scm",
    "FarmPorts",
    "ScmPorts",
]

#: An attachment point: (process id, port index).
Port = Tuple[str, int]


class FarmPorts:
    """Attachment points of a farm (df/tf) instance."""

    def __init__(self, z: Port, xs: Port, result: Port):
        self.z = z
        self.xs = xs
        self.result = result


class ScmPorts:
    """Attachment points of an scm instance."""

    def __init__(self, x_split: Port, x_merge: Port, result: Port):
        self.x_split = x_split
        self.x_merge = x_merge
        self.result = result


def _instantiate_farm(
    graph: ProcessGraph,
    sid: str,
    kind: str,
    degree: int,
    comp: str,
    acc: str,
    *,
    item_type: str = "'a",
    partial_type: str = "'b",
    result_type: str = "'c",
) -> FarmPorts:
    """Common df/tf template (Fig. 1).

    Master ports — in: 0=z, 1=xs, 2..2+n-1=collect(i); out: 0=result,
    1..n=dispatch(i).  Each worker is wrapped by its two routers.
    For ``tf`` the ``W->M`` edge carries (results, subtasks) pairs that
    the master folds and re-dispatches.
    """
    master = graph.add_process(
        Process(
            id=f"{sid}.master",
            kind=ProcessKind.MASTER,
            func=acc,
            n_in=2 + degree,
            n_out=1 + degree,
            skeleton=sid,
            params={"degree": degree, "farm_kind": kind, "comp": comp},
        )
    )
    worker_out_type = (
        f"{partial_type} list * {item_type} list" if kind == "tf" else partial_type
    )
    for i in range(degree):
        worker = graph.add_process(
            Process(
                id=f"{sid}.worker{i}",
                kind=ProcessKind.WORKER,
                func=comp,
                n_in=1,
                n_out=1,
                skeleton=sid,
                params={"index": i, "farm_kind": kind},
            )
        )
        mw = graph.add_process(
            Process(
                id=f"{sid}.mw{i}",
                kind=ProcessKind.ROUTER_MW,
                n_in=1,
                n_out=1,
                skeleton=sid,
                colocate_with=worker.id,
                params={"index": i},
            )
        )
        wm = graph.add_process(
            Process(
                id=f"{sid}.wm{i}",
                kind=ProcessKind.ROUTER_WM,
                n_in=1,
                n_out=1,
                skeleton=sid,
                colocate_with=worker.id,
                params={"index": i},
            )
        )
        graph.add_edge(master.id, mw.id, src_port=1 + i, type=item_type)
        graph.add_edge(mw.id, worker.id, type=item_type)
        graph.add_edge(worker.id, wm.id, type=worker_out_type)
        graph.add_edge(wm.id, master.id, dst_port=2 + i, type=worker_out_type)
    return FarmPorts(
        z=(master.id, 0),
        xs=(master.id, 1),
        result=(master.id, 0),
    )


def instantiate_df(
    graph: ProcessGraph,
    sid: str,
    degree: int,
    comp: str,
    acc: str,
    **types,
) -> FarmPorts:
    """Stamp the Data Farming template of Fig. 1."""
    return _instantiate_farm(graph, sid, "df", degree, comp, acc, **types)


def instantiate_tf(
    graph: ProcessGraph,
    sid: str,
    degree: int,
    comp: str,
    acc: str,
    **types,
) -> FarmPorts:
    """Stamp the Task Farming template (df generalised with feedback)."""
    return _instantiate_farm(graph, sid, "tf", degree, comp, acc, **types)


def instantiate_scm(
    graph: ProcessGraph,
    sid: str,
    degree: int,
    split: str,
    comp: str,
    merge: str,
    *,
    input_type: str = "'a",
    piece_type: str = "'b",
    partial_type: str = "'c",
    result_type: str = "'d",
) -> ScmPorts:
    """Stamp the Split-Compute-Merge template.

    Split fans the input out to ``degree`` workers; Merge receives the
    original input (port 0, to recover global geometry) plus one partial
    result per worker.
    """
    split_p = graph.add_process(
        Process(
            id=f"{sid}.split",
            kind=ProcessKind.SPLIT,
            func=split,
            n_in=1,
            n_out=degree,
            skeleton=sid,
            params={"degree": degree},
        )
    )
    merge_p = graph.add_process(
        Process(
            id=f"{sid}.merge",
            kind=ProcessKind.MERGE,
            func=merge,
            n_in=1 + degree,
            n_out=1,
            skeleton=sid,
            params={"degree": degree},
        )
    )
    for i in range(degree):
        worker = graph.add_process(
            Process(
                id=f"{sid}.worker{i}",
                kind=ProcessKind.WORKER,
                func=comp,
                n_in=1,
                n_out=1,
                skeleton=sid,
                params={"index": i, "farm_kind": "scm"},
            )
        )
        graph.add_edge(split_p.id, worker.id, src_port=i, type=piece_type)
        graph.add_edge(worker.id, merge_p.id, dst_port=1 + i, type=partial_type)
    return ScmPorts(
        x_split=(split_p.id, 0),
        x_merge=(merge_p.id, 0),
        result=(merge_p.id, 0),
    )
