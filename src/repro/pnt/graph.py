"""The process-graph IR — SKiPPER's target-independent parallel program.

The compiler "expands the annotated abstract syntax tree into a (target
independent) parallel process network ... whose nodes are associated to
user computing functions and/or skeleton control processes and edges
indicate communication" (section 3).  This module is that network:
processes with typed ports, data edges, and the loop (memory feedback)
edge of ``itermem``.

Process kinds mirror the paper's vocabulary:

* ``APPLY`` — a user sequential function;
* ``MASTER`` / ``WORKER`` — the farm control processes of ``df``/``tf``;
* ``ROUTER_MW`` / ``ROUTER_WM`` — the ``M->W`` / ``W->M`` routing
  processes of Fig. 1;
* ``SPLIT`` / ``MERGE`` — the geometric decomposition processes of
  ``scm``;
* ``INPUT`` / ``OUTPUT`` — stream (or one-shot) endpoints;
* ``MEM`` — the ``itermem`` memory process of Fig. 4;
* ``CONST`` — a compile-time constant source.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["ProcessKind", "Process", "Edge", "ProcessGraph", "GraphError"]


class GraphError(ValueError):
    """A malformed process graph."""


class ProcessKind:
    """Process kind tags."""

    APPLY = "apply"
    MASTER = "master"
    WORKER = "worker"
    ROUTER_MW = "router_mw"
    ROUTER_WM = "router_wm"
    SPLIT = "split"
    MERGE = "merge"
    INPUT = "input"
    OUTPUT = "output"
    MEM = "mem"
    CONST = "const"

    ALL = (
        APPLY, MASTER, WORKER, ROUTER_MW, ROUTER_WM, SPLIT, MERGE,
        INPUT, OUTPUT, MEM, CONST,
    )

    #: Kinds implementing skeleton control (not user code).
    CONTROL = (MASTER, ROUTER_MW, ROUTER_WM, SPLIT, MERGE, MEM, CONST)


@dataclass
class Process:
    """A node of the process network.

    Attributes:
        id: unique name, e.g. ``df0.worker2``.
        kind: one of :class:`ProcessKind`.
        func: name of the sequential function the process runs (for
            ``APPLY``/``WORKER``/``SPLIT``/``MERGE``/``INPUT``/``OUTPUT``
            and the ``MASTER``'s accumulator), or None for pure control.
        n_in / n_out: port counts.
        skeleton: id of the skeleton instance this process belongs to
            (None for plain function/stream processes).
        params: static parameters (degree, constant value, source arg...).
        colocate_with: placement hint — id of a process this one should
            share a processor with (routers ride with their worker).
    """

    id: str
    kind: str
    func: Optional[str] = None
    n_in: int = 1
    n_out: int = 1
    skeleton: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    colocate_with: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ProcessKind.ALL:
            raise GraphError(f"unknown process kind {self.kind!r}")

    @property
    def is_control(self) -> bool:
        return self.kind in ProcessKind.CONTROL

    def __repr__(self) -> str:
        func = f" func={self.func}" if self.func else ""
        return f"Process({self.id}:{self.kind}{func})"


@dataclass(frozen=True)
class Edge:
    """A communication edge ``src.port -> dst.port``.

    ``loop=True`` marks the ``itermem`` state feedback (carried across
    iterations, so it does not participate in the intra-iteration DAG).
    ``type`` is the mini-ML type string of the data carried, when known.
    """

    src: str
    src_port: int
    dst: str
    dst_port: int
    type: str = "'a"
    loop: bool = False

    def __repr__(self) -> str:
        tag = " loop" if self.loop else ""
        return (
            f"Edge({self.src}[{self.src_port}] -> "
            f"{self.dst}[{self.dst_port}]: {self.type}{tag})"
        )


class ProcessGraph:
    """A mutable process network with structural validation."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.processes: Dict[str, Process] = {}
        self.edges: List[Edge] = []

    # -- construction ------------------------------------------------------

    def add_process(self, process: Process) -> Process:
        if process.id in self.processes:
            raise GraphError(f"duplicate process id {process.id!r}")
        self.processes[process.id] = process
        return process

    def add_edge(
        self,
        src: str,
        dst: str,
        *,
        src_port: int = 0,
        dst_port: int = 0,
        type: str = "'a",
        loop: bool = False,
    ) -> Edge:
        if src not in self.processes:
            raise GraphError(f"edge source {src!r} does not exist")
        if dst not in self.processes:
            raise GraphError(f"edge target {dst!r} does not exist")
        src_proc, dst_proc = self.processes[src], self.processes[dst]
        if not (0 <= src_port < src_proc.n_out):
            raise GraphError(
                f"{src} has {src_proc.n_out} output port(s); no port {src_port}"
            )
        if not (0 <= dst_port < dst_proc.n_in):
            raise GraphError(
                f"{dst} has {dst_proc.n_in} input port(s); no port {dst_port}"
            )
        edge = Edge(src, src_port, dst, dst_port, type, loop)
        self.edges.append(edge)
        return edge

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.processes)

    def __contains__(self, pid: str) -> bool:
        return pid in self.processes

    def __getitem__(self, pid: str) -> Process:
        return self.processes[pid]

    def in_edges(self, pid: str) -> List[Edge]:
        return [e for e in self.edges if e.dst == pid]

    def out_edges(self, pid: str) -> List[Edge]:
        return [e for e in self.edges if e.src == pid]

    def predecessors(self, pid: str) -> List[str]:
        return [e.src for e in self.in_edges(pid)]

    def successors(self, pid: str) -> List[str]:
        return [e.dst for e in self.out_edges(pid)]

    def by_kind(self, kind: str) -> List[Process]:
        return [p for p in self.processes.values() if p.kind == kind]

    def skeleton_processes(self, skeleton: str) -> List[Process]:
        return [p for p in self.processes.values() if p.skeleton == skeleton]

    def control_process_count(self) -> int:
        return sum(1 for p in self.processes.values() if p.is_control)

    # -- structure ----------------------------------------------------------

    def _group_of(self, pid: str) -> str:
        """Condensation key: a skeleton instance is one supernode.

        Farm skeletons contain internal dispatch/collect cycles
        (master -> router -> worker -> router -> master); those protocols
        terminate by construction, so acyclicity is required of the
        *condensed* graph where each skeleton instance is a single node.
        """
        proc = self.processes[pid]
        return f"skel:{proc.skeleton}" if proc.skeleton else f"proc:{pid}"

    def group_topological_order(self) -> List[List[str]]:
        """Groups (skeleton instances / single processes) in dependency
        order, ignoring loop edges.

        Raises :class:`GraphError` when the condensed non-loop edges
        contain a cycle (a structurally deadlocked network).
        """
        members: Dict[str, List[str]] = {}
        for pid in self.processes:
            members.setdefault(self._group_of(pid), []).append(pid)
        indegree: Dict[str, int] = {g: 0 for g in members}
        succs: Dict[str, Set[str]] = {g: set() for g in members}
        for e in self.edges:
            if e.loop:
                continue
            gs, gd = self._group_of(e.src), self._group_of(e.dst)
            if gs != gd and gd not in succs[gs]:
                succs[gs].add(gd)
                indegree[gd] += 1
        ready = sorted(g for g, d in indegree.items() if d == 0)
        order: List[List[str]] = []
        seen = 0
        while ready:
            group = ready.pop(0)
            order.append(sorted(members[group]))
            seen += 1
            for nxt in sorted(succs[group]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
            ready.sort()
        if seen != len(members):
            stuck = sorted(g for g, d in indegree.items() if d > 0)
            raise GraphError(f"cycle through groups {stuck} (non-loop edges)")
        return order

    def topological_order(self) -> List[str]:
        """Process ids in (condensed) dependency order, ignoring loop edges."""
        return [pid for group in self.group_topological_order() for pid in group]

    def validate(self) -> None:
        """Structural invariants.

        * every input port of every process has exactly one incoming edge
          (a process fires when all its inputs arrive);
        * output ports may fan out but must not dangle on non-sink kinds;
        * non-loop edges form a DAG.
        """
        fed: Dict[Tuple[str, int], int] = {}
        for e in self.edges:
            fed[(e.dst, e.dst_port)] = fed.get((e.dst, e.dst_port), 0) + 1
        for pid, proc in self.processes.items():
            for port in range(proc.n_in):
                count = fed.get((pid, port), 0)
                if count == 0:
                    raise GraphError(f"{pid} input port {port} is not connected")
                if count > 1:
                    raise GraphError(
                        f"{pid} input port {port} has {count} incoming edges"
                    )
        used_out: Set[Tuple[str, int]] = {(e.src, e.src_port) for e in self.edges}
        for pid, proc in self.processes.items():
            if proc.kind == ProcessKind.OUTPUT:
                continue
            for port in range(proc.n_out):
                if (pid, port) not in used_out:
                    raise GraphError(f"{pid} output port {port} dangles")
        self.topological_order()  # raises on cycles

    # -- rendering -----------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering (for documentation and debugging)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        shape = {
            ProcessKind.APPLY: "box",
            ProcessKind.MASTER: "house",
            ProcessKind.WORKER: "ellipse",
            ProcessKind.ROUTER_MW: "cds",
            ProcessKind.ROUTER_WM: "cds",
            ProcessKind.SPLIT: "triangle",
            ProcessKind.MERGE: "invtriangle",
            ProcessKind.INPUT: "parallelogram",
            ProcessKind.OUTPUT: "parallelogram",
            ProcessKind.MEM: "box3d",
            ProcessKind.CONST: "note",
        }
        for pid, proc in sorted(self.processes.items()):
            label = pid if proc.func is None else f"{pid}\\n{proc.func}"
            lines.append(
                f'  "{pid}" [shape={shape[proc.kind]}, label="{label}"];'
            )
        for e in self.edges:
            style = ", style=dashed" if e.loop else ""
            lines.append(
                f'  "{e.src}" -> "{e.dst}" [label="{e.type}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for p in self.processes.values():
            kinds[p.kind] = kinds.get(p.kind, 0) + 1
        parts = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return (
            f"{self.name}: {len(self.processes)} processes "
            f"({parts}), {len(self.edges)} edges"
        )
