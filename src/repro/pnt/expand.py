"""Skeleton expansion: program IR → flat process graph.

The second half of SKiPPER's compiler front (Fig. 2): every
:class:`~repro.core.ir.SkelApply` is replaced by an instance of its
process network template, every :class:`~repro.core.ir.Apply` by a
single sequential process, and the optional ``itermem`` wrapper by the
INPUT/MEM/OUTPUT triple with the state feedback edge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.functions import FunctionTable
from ..core.ir import Apply, Const, IRError, Program, SkelApply
from .graph import Edge, Process, ProcessGraph, ProcessKind
from .templates import Port, instantiate_df, instantiate_scm, instantiate_tf

__all__ = ["expand_program"]


def _value_type(program: Program, name: str) -> str:
    return program.types.get(name, "'a")


def expand_program(
    program: Program, table: Optional[FunctionTable] = None
) -> ProcessGraph:
    """Expand a validated program into its process network.

    The result passes :meth:`~repro.pnt.graph.ProcessGraph.validate` and
    is the input of the SynDEx mapping stage.
    """
    program.validate(table)
    graph = ProcessGraph(program.name)
    # Where each IR value is produced: value name -> (process, out port).
    sources: Dict[str, Port] = {}

    # -- endpoints ----------------------------------------------------------
    if program.stream is not None:
        spec = program.stream
        inp = graph.add_process(
            Process(
                id="stream.input",
                kind=ProcessKind.INPUT,
                func=spec.inp,
                n_in=0,
                n_out=1,
                params={"source": spec.source},
            )
        )
        mem = graph.add_process(
            Process(
                id="stream.mem",
                kind=ProcessKind.MEM,
                n_in=1,
                n_out=1,
                params=(
                    {"init_func": spec.init}
                    if spec.init is not None
                    else {"init_value": spec.init_value}
                ),
            )
        )
        state_name, item_name = program.params
        sources[state_name] = (mem.id, 0)
        sources[item_name] = (inp.id, 0)
    else:
        for param in program.params:
            proc = graph.add_process(
                Process(
                    id=f"in.{param}",
                    kind=ProcessKind.INPUT,
                    n_in=0,
                    n_out=1,
                    params={"param": param},
                )
            )
            sources[param] = (proc.id, 0)

    # -- body ---------------------------------------------------------------
    skel_counter = 0
    for binding in program.bindings:
        if isinstance(binding, Const):
            proc = graph.add_process(
                Process(
                    id=f"const.{binding.out}",
                    kind=ProcessKind.CONST,
                    n_in=0,
                    n_out=1,
                    params={"value": binding.value},
                )
            )
            sources[binding.out] = (proc.id, 0)
        elif isinstance(binding, Apply):
            proc = graph.add_process(
                Process(
                    id=f"fn.{binding.outs[0]}",
                    kind=ProcessKind.APPLY,
                    func=binding.func,
                    n_in=len(binding.args),
                    n_out=len(binding.outs),
                )
            )
            for port, arg in enumerate(binding.args):
                src, src_port = sources[arg]
                graph.add_edge(
                    src, proc.id,
                    src_port=src_port, dst_port=port,
                    type=_value_type(program, arg),
                )
            for port, out in enumerate(binding.outs):
                sources[out] = (proc.id, port)
        elif isinstance(binding, SkelApply):
            sid = f"{binding.kind}{skel_counter}"
            skel_counter += 1
            out_name = binding.outs[0]
            if binding.kind in ("df", "tf"):
                stamp = instantiate_df if binding.kind == "df" else instantiate_tf
                ports = stamp(
                    graph,
                    sid,
                    binding.degree,
                    binding.funcs["comp"],
                    binding.funcs["acc"],
                )
                z_name, xs_name = binding.args
                zsrc = sources[z_name]
                xsrc = sources[xs_name]
                graph.add_edge(
                    zsrc[0], ports.z[0],
                    src_port=zsrc[1], dst_port=ports.z[1],
                    type=_value_type(program, z_name),
                )
                graph.add_edge(
                    xsrc[0], ports.xs[0],
                    src_port=xsrc[1], dst_port=ports.xs[1],
                    type=_value_type(program, xs_name),
                )
                sources[out_name] = ports.result
            else:  # scm
                ports = instantiate_scm(
                    graph,
                    sid,
                    binding.degree,
                    binding.funcs["split"],
                    binding.funcs["comp"],
                    binding.funcs["merge"],
                )
                (x_name,) = binding.args
                xsrc = sources[x_name]
                x_type = _value_type(program, x_name)
                graph.add_edge(
                    xsrc[0], ports.x_split[0],
                    src_port=xsrc[1], dst_port=ports.x_split[1], type=x_type,
                )
                graph.add_edge(
                    xsrc[0], ports.x_merge[0],
                    src_port=xsrc[1], dst_port=ports.x_merge[1], type=x_type,
                )
                sources[out_name] = ports.result
        else:
            raise IRError(f"unknown binding {binding!r}")

    # -- results -------------------------------------------------------------
    if program.stream is not None:
        state_result, y_result = program.results
        ssrc = sources[state_result]
        graph.add_edge(
            ssrc[0], "stream.mem",
            src_port=ssrc[1], dst_port=0,
            type=_value_type(program, state_result),
            loop=True,
        )
        out = graph.add_process(
            Process(
                id="stream.output",
                kind=ProcessKind.OUTPUT,
                func=program.stream.out,
                n_in=1,
                n_out=0,
            )
        )
        ysrc = sources[y_result]
        graph.add_edge(
            ysrc[0], out.id,
            src_port=ysrc[1], dst_port=0,
            type=_value_type(program, y_result),
        )
    else:
        for i, result in enumerate(program.results):
            out = graph.add_process(
                Process(
                    id=f"out.{result}",
                    kind=ProcessKind.OUTPUT,
                    n_in=1,
                    n_out=0,
                    params={"index": i},
                )
            )
            rsrc = sources[result]
            graph.add_edge(
                rsrc[0], out.id,
                src_port=rsrc[1], dst_port=0,
                type=_value_type(program, result),
            )

    _discard_dangling_outputs(graph)
    graph.validate()
    return graph


def _discard_dangling_outputs(graph: ProcessGraph) -> None:
    """Attach discard sinks to unused output ports.

    A sequential function may declare several ``/*out*/`` parameters of
    which the program uses only some; the executive still has to receive
    (and drop) the unused ones.
    """
    used = {(e.src, e.src_port) for e in graph.edges}
    for proc in list(graph.processes.values()):
        if proc.kind == ProcessKind.OUTPUT:
            continue
        for port in range(proc.n_out):
            if (proc.id, port) not in used:
                sink = graph.add_process(
                    Process(
                        id=f"discard.{proc.id}.{port}",
                        kind=ProcessKind.OUTPUT,
                        n_in=1,
                        n_out=0,
                        params={"discard": True},
                        colocate_with=proc.id,
                    )
                )
                graph.add_edge(proc.id, sink.id, src_port=port)
