"""Lexer for the mini-ML specification language.

Tokenises the Caml subset SKiPPER specifications are written in: let
bindings, lambdas, tuples, lists, arithmetic/comparison operators and the
``;;`` phrase terminator.  Comments are Caml-style ``(* ... *)`` and may
nest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import LexError, Location

__all__ = ["Token", "TokenKind", "tokenize"]


class TokenKind:
    """Token tags (plain strings; a tiny enum without the ceremony)."""

    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    IDENT = "IDENT"  # lowercase identifiers
    KEYWORD = "KEYWORD"
    OP = "OP"  # operators and punctuation
    EOF = "EOF"


KEYWORDS = frozenset(
    ["let", "rec", "in", "fun", "if", "then", "else", "true", "false", "and"]
)

# Multi-character operators first so maximal munch works by ordering.
_OPERATORS = [
    ";;", "->", "<=", ">=", "<>", "::", "(", ")", "[", "]", ";", ",",
    "+.", "-.", "*.", "/.", "+", "-", "*", "/", "=", "<", ">", "@", "_",
]


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    loc: Location

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.loc.line}:{self.loc.column}"


class _Scanner:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def loc(self) -> Location:
        return Location(self.line, self.column)

    def peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def at_end(self) -> bool:
        return self.pos >= len(self.source)


def _skip_trivia(s: _Scanner) -> None:
    """Skip whitespace and (possibly nested) comments."""
    while not s.at_end():
        ch = s.peek()
        if ch in " \t\r\n":
            s.advance()
        elif ch == "(" and s.peek(1) == "*":
            start = s.loc()
            depth = 0
            while not s.at_end():
                if s.peek() == "(" and s.peek(1) == "*":
                    depth += 1
                    s.advance(2)
                elif s.peek() == "*" and s.peek(1) == ")":
                    depth -= 1
                    s.advance(2)
                    if depth == 0:
                        break
                else:
                    s.advance()
            else:
                raise LexError("unterminated comment", start, s.source)
        else:
            return


def _lex_number(s: _Scanner) -> Token:
    loc = s.loc()
    text = ""
    while s.peek().isdigit():
        text += s.advance()
    # A '.' starts a float only when not part of an operator like '+.'
    if s.peek() == "." and s.peek(1).isdigit():
        text += s.advance()
        while s.peek().isdigit():
            text += s.advance()
        return Token(TokenKind.FLOAT, text, loc)
    if s.peek() == "." and not s.peek(1).isdigit() and s.peek(1) != ")":
        # Trailing-dot float literal like "2." — accept it.
        text += s.advance()
        return Token(TokenKind.FLOAT, text, loc)
    return Token(TokenKind.INT, text, loc)


def _lex_string(s: _Scanner) -> Token:
    loc = s.loc()
    s.advance()  # opening quote
    chars: List[str] = []
    while True:
        if s.at_end():
            raise LexError("unterminated string literal", loc, s.source)
        ch = s.advance()
        if ch == '"':
            break
        if ch == "\\":
            esc = s.advance()
            mapping = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}
            if esc not in mapping:
                raise LexError(f"unknown escape \\{esc}", s.loc(), s.source)
            chars.append(mapping[esc])
        else:
            chars.append(ch)
    return Token(TokenKind.STRING, "".join(chars), loc)


def _lex_ident(s: _Scanner) -> Token:
    loc = s.loc()
    text = ""
    # Note: peek() returns "" at end of input, and `"" in "_'"` would be
    # True (empty-substring test) — hence the explicit truthiness guard.
    while s.peek() and (s.peek().isalnum() or s.peek() in "_'"):
        text += s.advance()
    kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
    return Token(kind, text, loc)


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source``, appending a final EOF token.

    Raises :class:`LexError` on unknown characters, unterminated strings
    or comments.
    """
    s = _Scanner(source)
    tokens: List[Token] = []
    while True:
        _skip_trivia(s)
        if s.at_end():
            tokens.append(Token(TokenKind.EOF, "", s.loc()))
            return tokens
        ch = s.peek()
        if ch.isdigit():
            tokens.append(_lex_number(s))
        elif ch == '"':
            tokens.append(_lex_string(s))
        elif ch.isalpha() or ch == "_" and (s.peek(1).isalnum() or s.peek(1) == "_"):
            tokens.append(_lex_ident(s))
        else:
            loc = s.loc()
            for op in _OPERATORS:
                if s.source.startswith(op, s.pos):
                    s.advance(len(op))
                    tokens.append(Token(TokenKind.OP, op, loc))
                    break
            else:
                raise LexError(f"unexpected character {ch!r}", loc, s.source)
