"""Mini-ML front end: the custom Caml compiler of the SKiPPER pipeline.

Lexer, parser, Hindley-Milner type inference, sequential interpreter and
network extraction for the Caml subset SKiPPER specifications use.
"""

from .errors import LexError, Location, ParseError, SourceError, TypeError_
from .lexer import Token, TokenKind, tokenize
from .parser import parse, parse_expr
from .types import (
    Scheme,
    TArrow,
    TCon,
    TList,
    TTuple,
    TVar,
    TypeEnv,
    Unifier,
    parse_type,
    type_to_str,
)
from .builtins import initial_env, scheme_of_spec, skeleton_schemes
from .infer import Inferencer, infer_expr, infer_program
from .eval import EvalError, Interpreter, evaluate_program, run_main
from .network import NetworkError, extract_network
from .compile import CompiledProgram, compile_source, typecheck_source

__all__ = [
    "Location",
    "SourceError",
    "LexError",
    "ParseError",
    "TypeError_",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "parse_expr",
    "Scheme",
    "TVar",
    "TCon",
    "TList",
    "TTuple",
    "TArrow",
    "TypeEnv",
    "Unifier",
    "parse_type",
    "type_to_str",
    "initial_env",
    "scheme_of_spec",
    "skeleton_schemes",
    "Inferencer",
    "infer_expr",
    "infer_program",
    "EvalError",
    "Interpreter",
    "evaluate_program",
    "run_main",
    "NetworkError",
    "extract_network",
    "CompiledProgram",
    "compile_source",
    "typecheck_source",
]
