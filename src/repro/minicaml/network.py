"""Network extraction: from a typed specification to the program IR.

This is the "skeleton expansion" front half of SKiPPER's compiler: the
annotated syntax tree is *symbolically executed* — user lets and
lambdas are inlined, constants are folded — until only the coordination
structure remains: applications of external sequential functions and of
skeleton constructors.  Those become :class:`~repro.core.ir.Apply` and
:class:`~repro.core.ir.SkelApply` bindings; a top-level ``itermem``
becomes the :class:`~repro.core.ir.StreamSpec` wrapper.

The extractor enforces SKiPPER's structural restrictions and reports
violations as located errors:

* inner skeletons (``scm``/``df``/``tf``) cannot nest (section 5:
  "their skeletons can be freely nested, ours not");
* ``itermem`` may only appear as the outermost construct;
* skeleton function parameters must be *named sequential functions*
  (they become process labels in the PNT);
* data-dependent control flow and arithmetic must live inside
  sequential functions — the coordination layer is static.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.functions import FunctionSpec, FunctionTable
from ..core.ir import Apply, Const, Program, SkelApply, StreamSpec
from . import ast
from .errors import Location, SourceError

__all__ = ["NetworkError", "extract_network"]

_INNER_SKELETONS = ("scm", "df", "tf")
_SKELETON_ARITY = {"scm": 5, "df": 5, "tf": 5, "itermem": 5}
_UNSUPPORTED_BUILTINS = frozenset(
    ["map", "fold_left", "length", "rev", "hd", "tl", "fst", "snd",
     "not", "min", "max", "abs", "ignore"]
)


class NetworkError(SourceError):
    kind = "network extraction error"


# -- symbolic values -----------------------------------------------------------


@dataclass(frozen=True)
class SymVal:
    """A reference to an IR value produced inside the loop body."""

    name: str


@dataclass(frozen=True)
class ConstVal:
    """A statically-known value."""

    value: Any


@dataclass(frozen=True)
class ExternVal:
    """A reference to a registered sequential function."""

    spec: FunctionSpec


@dataclass(frozen=True)
class PartialExtern:
    """A partially applied external function."""

    spec: FunctionSpec
    args: Tuple[Any, ...]


@dataclass(frozen=True)
class BuiltinVal:
    """A (possibly partially applied) skeleton or list builtin."""

    name: str
    args: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class ClosureVal:
    """A user function, inlined at application time."""

    param: ast.Pattern
    body: ast.Expr
    env: Dict[str, Any] = field(hash=False)


@dataclass(frozen=True)
class TupleVal:
    items: Tuple[Any, ...]


@dataclass(frozen=True)
class InitCall:
    """A nullary external call at top level (``let s0 = init_state ()``).

    Only legal as the ``z`` argument of the top-level ``itermem``."""

    spec: FunctionSpec


# -- the extractor -------------------------------------------------------------


class _Extractor:
    _MAX_INLINE_DEPTH = 200

    def __init__(self, table: FunctionTable, source: Optional[str] = None):
        self.table = table
        self.source = source
        self.bindings: List[Union[Const, Apply, SkelApply]] = []
        self.types: Dict[str, str] = {}
        self._counter = itertools.count()
        self._const_cache: Dict[int, str] = {}
        self._in_body = False
        self._depth = 0

    # -- helpers -----------------------------------------------------------

    def fail(self, message: str, loc: Optional[Location] = None) -> "NetworkError":
        return NetworkError(message, loc, self.source)

    def fresh(self, hint: str) -> str:
        return f"{hint}_{next(self._counter)}"

    def _materialize(self, value: Any, loc: Optional[Location]) -> str:
        """Turn a symbolic value into an IR value name (Const if needed)."""
        if isinstance(value, SymVal):
            return value.name
        if isinstance(value, ConstVal):
            name = self.fresh("const")
            self.bindings.append(Const(name, value.value))
            return name
        if isinstance(value, TupleVal):
            # A tuple mixing constants and symbols cannot ship as one edge.
            raise self.fail(
                "cannot pass a tuple built in the coordination layer to a "
                "sequential function; return it from a sequential function "
                "instead",
                loc,
            )
        raise self.fail(
            f"cannot use {self._describe(value)} as a data value", loc
        )

    @staticmethod
    def _describe(value: Any) -> str:
        if isinstance(value, ClosureVal):
            return "a user-defined function"
        if isinstance(value, (ExternVal, PartialExtern)):
            name = value.spec.name
            return f"the sequential function {name!r}"
        if isinstance(value, BuiltinVal):
            return f"the builtin {value.name!r}"
        if isinstance(value, InitCall):
            return f"a top-level call of {value.spec.name!r}"
        return repr(value)

    # -- application dispatch ------------------------------------------------

    def apply(self, fn: Any, arg: Any, loc: Optional[Location]) -> Any:
        if isinstance(fn, ClosureVal):
            self._depth += 1
            if self._depth > self._MAX_INLINE_DEPTH:
                raise self.fail(
                    "inlining depth exceeded; recursive coordination "
                    "functions are not expressible as a static process network",
                    loc,
                )
            try:
                env = dict(fn.env)
                self._bind_pattern(fn.param, arg, env, loc)
                return self.eval(fn.body, env)
            finally:
                self._depth -= 1
        if isinstance(fn, ExternVal):
            return self._apply_extern(fn.spec, (arg,), loc)
        if isinstance(fn, PartialExtern):
            return self._apply_extern(fn.spec, fn.args + (arg,), loc)
        if isinstance(fn, BuiltinVal):
            return self._apply_builtin(fn, arg, loc)
        raise self.fail(f"cannot apply {self._describe(fn)}", loc)

    def _apply_extern(
        self, spec: FunctionSpec, args: Tuple[Any, ...], loc: Optional[Location]
    ) -> Any:
        arity = max(spec.arity, 1)  # nullary externals take a unit argument
        if len(args) < arity:
            return PartialExtern(spec, args)
        if not self._in_body:
            # Top level: only `let s0 = init_state ()` style calls are legal.
            if spec.arity == 0:
                return InitCall(spec)
            raise self.fail(
                f"sequential function {spec.name!r} called outside the "
                "processing loop; only nullary initialisation calls are "
                "allowed at top level",
                loc,
            )
        call_args = () if spec.arity == 0 else args
        arg_names = tuple(self._materialize(a, loc) for a in call_args)
        outs = tuple(self.fresh(f"{spec.name}_out") for _ in range(spec.n_outs))
        self.bindings.append(Apply(spec.name, arg_names, outs))
        for name, t in zip(outs, spec.outs):
            self.types[name] = t
        if spec.n_outs == 1:
            return SymVal(outs[0])
        return TupleVal(tuple(SymVal(o) for o in outs))

    def _apply_builtin(self, fn: BuiltinVal, arg: Any, loc: Optional[Location]) -> Any:
        if fn.name in _UNSUPPORTED_BUILTINS:
            raise self.fail(
                f"builtin {fn.name!r} operates on runtime data and cannot "
                "appear in the coordination layer; move it inside a "
                "sequential function",
                loc,
            )
        args = fn.args + (arg,)
        arity = _SKELETON_ARITY[fn.name]
        if len(args) < arity:
            return BuiltinVal(fn.name, args)
        if fn.name == "itermem":
            return self._saturate_itermem(args, loc)
        return self._emit_skeleton(fn.name, args, loc)

    def _saturate_itermem(self, args: Tuple[Any, ...], loc) -> "_ItermemResult":
        if self._in_body:
            raise self.fail(
                "itermem must be the outermost construct of the program", loc
            )
        inp, loop, out, z, x = args
        if not isinstance(inp, ExternVal):
            raise self.fail(
                "the input function of itermem must be a named sequential "
                f"function, got {self._describe(inp)}",
                loc,
            )
        if not isinstance(out, ExternVal):
            raise self.fail(
                "the output function of itermem must be a named sequential "
                f"function, got {self._describe(out)}",
                loc,
            )
        if not isinstance(loop, ClosureVal):
            raise self.fail(
                "the loop of itermem must be a user-defined function, got "
                f"{self._describe(loop)}",
                loc,
            )
        return _ItermemResult(inp.spec, loop, out.spec, z, x)

    # -- skeleton emission ------------------------------------------------------

    def _skeleton_degree(self, value: Any, kind: str, loc) -> int:
        if not isinstance(value, ConstVal) or not isinstance(value.value, int):
            raise self.fail(
                f"the degree of {kind!r} must be a static integer "
                "(the process network is fixed at compile time)",
                loc,
            )
        return value.value

    def _skeleton_fn(self, value: Any, kind: str, role: str, loc) -> str:
        if isinstance(value, ExternVal):
            return value.spec.name
        raise self.fail(
            f"the {role!r} parameter of {kind!r} must be a named sequential "
            f"function, got {self._describe(value)}",
            loc,
        )

    def _emit_skeleton(self, kind: str, args: Tuple[Any, ...], loc) -> SymVal:
        if not self._in_body:
            raise self.fail(
                f"skeleton {kind!r} used outside the processing loop", loc
            )
        out = self.fresh(f"{kind}_out")
        if kind == "scm":
            n, split, comp, merge, x = args
            node = SkelApply(
                "scm",
                self._skeleton_degree(n, kind, loc),
                {
                    "split": self._skeleton_fn(split, kind, "split", loc),
                    "comp": self._skeleton_fn(comp, kind, "comp", loc),
                    "merge": self._skeleton_fn(merge, kind, "merge", loc),
                },
                (self._materialize(x, loc),),
                (out,),
            )
        else:  # df / tf share the (n, comp, acc, z, xs) shape
            n, comp, acc, z, xs = args
            node = SkelApply(
                kind,
                self._skeleton_degree(n, kind, loc),
                {
                    "comp": self._skeleton_fn(comp, kind, "comp", loc),
                    "acc": self._skeleton_fn(acc, kind, "acc", loc),
                },
                (self._materialize(z, loc), self._materialize(xs, loc)),
                (out,),
            )
        self.bindings.append(node)
        return SymVal(out)

    # -- expression evaluation ----------------------------------------------

    def _bind_pattern(
        self, pattern: ast.Pattern, value: Any, env: Dict[str, Any], loc
    ) -> None:
        if isinstance(pattern, ast.PVar):
            env[pattern.name] = value
        elif isinstance(pattern, ast.PWild):
            pass
        else:
            if isinstance(value, TupleVal):
                items = value.items
            elif isinstance(value, ConstVal) and isinstance(value.value, tuple):
                items = tuple(ConstVal(v) for v in value.value)
            else:
                raise self.fail(
                    f"cannot destructure {self._describe(value)} with a tuple "
                    "pattern in the coordination layer",
                    loc,
                )
            if len(items) != len(pattern.elements):
                raise self.fail(
                    f"tuple pattern of size {len(pattern.elements)} does not "
                    f"match a {len(items)}-tuple",
                    loc,
                )
            for sub, item in zip(pattern.elements, items):
                self._bind_pattern(sub, item, env, loc)

    def eval(self, expr: ast.Expr, env: Dict[str, Any]) -> Any:
        if isinstance(expr, ast.IntLit):
            return ConstVal(expr.value)
        if isinstance(expr, ast.FloatLit):
            return ConstVal(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ConstVal(expr.value)
        if isinstance(expr, ast.StringLit):
            return ConstVal(expr.value)
        if isinstance(expr, ast.UnitLit):
            return ConstVal(None)
        if isinstance(expr, ast.Var):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.table:
                return ExternVal(self.table[expr.name])
            if expr.name in _SKELETON_ARITY or expr.name in _UNSUPPORTED_BUILTINS:
                return BuiltinVal(expr.name)
            raise self.fail(f"unbound identifier {expr.name!r}", expr.loc)
        if isinstance(expr, ast.TupleExpr):
            items = tuple(self.eval(e, env) for e in expr.elements)
            if all(isinstance(i, ConstVal) for i in items):
                return ConstVal(tuple(i.value for i in items))
            return TupleVal(items)
        if isinstance(expr, ast.ListExpr):
            items = [self.eval(e, env) for e in expr.elements]
            if all(isinstance(i, ConstVal) for i in items):
                return ConstVal([i.value for i in items])
            raise self.fail(
                "list expressions in the coordination layer must be "
                "compile-time constants",
                expr.loc,
            )
        if isinstance(expr, ast.If):
            cond = self.eval(expr.cond, env)
            if isinstance(cond, ConstVal):
                branch = expr.then if cond.value else expr.otherwise
                return self.eval(branch, env)
            raise self.fail(
                "data-dependent control flow cannot appear in the "
                "coordination layer; move the conditional inside a "
                "sequential function",
                expr.loc,
            )
        if isinstance(expr, ast.Fun):
            return ClosureVal(expr.param, expr.body, dict(env))
        if isinstance(expr, ast.Apply):
            fn = self.eval(expr.fn, env)
            arg = self.eval(expr.arg, env)
            return self.apply(fn, arg, expr.loc)
        if isinstance(expr, ast.Let):
            if expr.recursive:
                raise self.fail(
                    "recursive definitions cannot appear in the coordination "
                    "layer",
                    expr.loc,
                )
            value = self.eval(expr.bound, env)
            inner = dict(env)
            self._bind_pattern(expr.pattern, value, inner, expr.loc)
            return self.eval(expr.body, inner)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            if isinstance(left, ConstVal) and isinstance(right, ConstVal):
                return ConstVal(self._fold_binop(expr.op, left.value, right.value, expr.loc))
            raise self.fail(
                "arithmetic on runtime data cannot appear in the coordination "
                "layer; move it inside a sequential function",
                expr.loc,
            )
        raise AssertionError(f"unknown expression node {expr!r}")

    def _fold_binop(self, op: str, lv: Any, rv: Any, loc) -> Any:
        try:
            if op in ("+", "+."):
                return lv + rv
            if op in ("-", "-."):
                return lv - rv
            if op in ("*", "*."):
                return lv * rv
            if op in ("/", "/."):
                if rv == 0:
                    raise self.fail("division by zero in constant expression", loc)
                return lv // rv if isinstance(lv, int) and isinstance(rv, int) else lv / rv
            if op == "=":
                return lv == rv
            if op == "<>":
                return lv != rv
            if op == "<":
                return lv < rv
            if op == ">":
                return lv > rv
            if op == "<=":
                return lv <= rv
            if op == ">=":
                return lv >= rv
            if op == "::":
                return [lv] + list(rv)
            if op == "@":
                return list(lv) + list(rv)
        except TypeError:
            raise self.fail(f"cannot fold {op!r} on {lv!r} and {rv!r}", loc)
        raise AssertionError(f"unknown operator {op!r}")


# -- top-level driver ----------------------------------------------------------


def extract_network(
    program: ast.Program,
    table: FunctionTable,
    *,
    entry: str = "main",
    name: Optional[str] = None,
    source: Optional[str] = None,
) -> Program:
    """Extract the process-level program from a parsed specification.

    ``entry`` names the top-level binding to compile (``main`` by
    convention).  Returns the :class:`~repro.core.ir.Program` consumed by
    :mod:`repro.pnt.expand`.
    """
    ex = _Extractor(table, source)

    env: Dict[str, Any] = {}
    entry_value: Any = None
    for phrase in program.phrases:
        value = ex.eval(phrase.expr, env)
        ex._bind_pattern(phrase.pattern, value, env, phrase.loc)
        if isinstance(phrase.pattern, ast.PVar) and phrase.pattern.name == entry:
            entry_value = value
    if entry not in env:
        raise ex.fail(f"no top-level binding named {entry!r}")
    entry_value = env[entry]

    prog_name = name or entry

    # Case 1: `let main = itermem inp loop out z x`.
    if isinstance(entry_value, SymVal):
        raise ex.fail("entry point must be a function or an itermem application")
    if isinstance(entry_value, BuiltinVal) and entry_value.name == "itermem":
        raise ex.fail(
            f"itermem at the entry point is missing "
            f"{_SKELETON_ARITY['itermem'] - len(entry_value.args)} argument(s)"
        )
    if isinstance(entry_value, _ItermemResult):
        return _finish_stream(ex, entry_value, prog_name)

    # Case 2: a one-shot function.
    if isinstance(entry_value, ClosureVal):
        return _finish_one_shot(ex, entry_value, prog_name)
    if isinstance(entry_value, ExternVal):
        raise ex.fail(
            f"entry point {entry!r} is a plain sequential function; "
            "compose at least one skeleton or wrap it in a function"
        )
    raise ex.fail(
        f"entry point {entry!r} must be a function or an itermem "
        f"application, got {ex._describe(entry_value)}"
    )


@dataclass(frozen=True)
class _ItermemResult:
    """Marker produced when the extractor saturates a top-level itermem."""

    inp: FunctionSpec
    loop: ClosureVal
    out: FunctionSpec
    z: Any
    x: Any


def _finish_stream(ex: _Extractor, it: _ItermemResult, name: str) -> Program:
    # Initial memory: a constant or a nullary init function.
    init_fn: Optional[str] = None
    init_value: Any = None
    if isinstance(it.z, InitCall):
        init_fn = it.z.spec.name
    elif isinstance(it.z, ConstVal):
        init_value = it.z.value
        if init_value is None:
            init_value = ()
    else:
        raise ex.fail(
            "the initial memory of itermem must be a constant or the result "
            f"of a nullary initialisation call, got {ex._describe(it.z)}"
        )
    if not isinstance(it.x, ConstVal):
        raise ex.fail(
            "the source argument of itermem must be a compile-time constant"
        )

    ex._in_body = True
    state = SymVal("state")
    item = SymVal("item")
    env = dict(it.loop.env)
    ex._bind_pattern(it.loop.param, TupleVal((state, item)), env, it.loop.param.loc)
    body = it.loop.body
    # The loop may be curried `fun (state, im) -> ...` only (one param).
    result = ex.eval(body, env)
    if not isinstance(result, TupleVal) or len(result.items) != 2:
        raise ex.fail(
            "the itermem loop body must return a pair (new_state, output)"
        )
    new_state = ex._materialize(result.items[0], None)
    output = ex._materialize(result.items[1], None)

    prog = Program(
        name=name,
        params=("state", "item"),
        bindings=ex.bindings,
        results=(new_state, output),
        stream=StreamSpec(
            inp=it.inp.name,
            out=it.out.name,
            init=init_fn,
            init_value=init_value,
            source=it.x.value,
        ),
        types=ex.types,
    )
    prog.validate(ex.table)
    return prog


def _finish_one_shot(ex: _Extractor, closure: ClosureVal, name: str) -> Program:
    ex._in_body = True
    params: List[str] = []
    env = dict(closure.env)
    value: Any = closure
    while isinstance(value, ClosureVal):
        pattern = value.param
        if isinstance(pattern, ast.PVar):
            params.append(pattern.name)
            env[pattern.name] = SymVal(pattern.name)
        elif isinstance(pattern, ast.PTuple):
            names = ast.pattern_vars(pattern)
            params.extend(names)
            ex._bind_pattern(
                pattern,
                TupleVal(tuple(SymVal(n) for n in names)),
                env,
                pattern.loc,
            )
        else:  # wildcard
            fresh = ex.fresh("unused_param")
            params.append(fresh)
        body = value.body
        if isinstance(body, ast.Fun):
            value = ClosureVal(body.param, body.body, env)
        else:
            value = None
            break
    result = ex.eval(body, env)
    if isinstance(result, TupleVal):
        results = tuple(ex._materialize(i, None) for i in result.items)
    else:
        results = (ex._materialize(result, None),)
    prog = Program(
        name=name,
        params=tuple(params),
        bindings=ex.bindings,
        results=results,
        stream=None,
        types=ex.types,
    )
    prog.validate(ex.table)
    return prog
