"""The initial typing environment: skeletons, list builtins, externals.

Section 2 of the paper gives each skeleton a Caml type signature; these
are the exact schemes the type checker starts from.  The task-farm
worker uses the *pair-of-lists* convention ``'a -> 'b list * 'a list``
(finished results, new packets), which is the typed rendering of the
recursive packet generation described in the paper.

External (application-specific) functions enter the environment from a
:class:`~repro.core.functions.FunctionTable`: a C prototype
``void predict(/*in*/ markList*, /*out*/ markList*, /*out*/ state*)``
becomes the curried ML type ``mark list -> mark list * state``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.functions import FunctionSpec, FunctionTable
from .types import (
    Scheme,
    TArrow,
    TList,
    TTuple,
    TVar,
    Type,
    TypeEnv,
    parse_type,
    t_bool,
    t_int,
    t_unit,
)

__all__ = [
    "SKELETON_NAMES",
    "skeleton_schemes",
    "builtin_schemes",
    "scheme_of_spec",
    "initial_env",
]

SKELETON_NAMES = ("scm", "df", "tf", "itermem")


def _arrows(*types: Type) -> Type:
    result = types[-1]
    for t in reversed(types[:-1]):
        result = TArrow(t, result)
    return result


def _generalize_all(t: Type) -> Scheme:
    from .types import free_vars

    return Scheme(tuple(free_vars(t)), t)


def skeleton_schemes() -> Dict[str, Scheme]:
    """The polymorphic signatures of the four SKiPPER skeletons."""
    # scm : int -> (int -> 'a -> 'b list) -> ('b -> 'c)
    #       -> ('a -> 'c list -> 'd) -> 'a -> 'd
    a, b, c, d = TVar("'a"), TVar("'b"), TVar("'c"), TVar("'d")
    scm_t = _arrows(
        t_int,
        _arrows(t_int, a, TList(b)),
        _arrows(b, c),
        _arrows(a, TList(c), d),
        a,
        d,
    )

    # df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
    a2, b2, c2 = TVar("'a"), TVar("'b"), TVar("'c")
    df_t = _arrows(
        t_int, _arrows(a2, b2), _arrows(c2, b2, c2), c2, TList(a2), c2
    )

    # tf : int -> ('a -> 'b list * 'a list) -> ('c -> 'b -> 'c)
    #      -> 'c -> 'a list -> 'c
    a3, b3, c3 = TVar("'a"), TVar("'b"), TVar("'c")
    tf_t = _arrows(
        t_int,
        _arrows(a3, TTuple((TList(b3), TList(a3)))),
        _arrows(c3, b3, c3),
        c3,
        TList(a3),
        c3,
    )

    # itermem : ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit)
    #           -> 'c -> 'a -> unit
    a4, b4, c4, d4 = TVar("'a"), TVar("'b"), TVar("'c"), TVar("'d")
    itermem_t = _arrows(
        _arrows(a4, b4),
        _arrows(TTuple((c4, b4)), TTuple((c4, d4))),
        _arrows(d4, t_unit),
        c4,
        a4,
        t_unit,
    )

    return {
        "scm": _generalize_all(scm_t),
        "df": _generalize_all(df_t),
        "tf": _generalize_all(tf_t),
        "itermem": _generalize_all(itermem_t),
    }


def builtin_schemes() -> Dict[str, Scheme]:
    """List/tuple/bool builtins available to every specification."""
    out: Dict[str, Scheme] = {}

    def add(name: str, signature: str) -> None:
        out[name] = _generalize_all(parse_type(signature))

    add("map", "('a -> 'b) -> 'a list -> 'b list")
    add("fold_left", "('a -> 'b -> 'a) -> 'a -> 'b list -> 'a")
    add("length", "'a list -> int")
    add("rev", "'a list -> 'a list")
    add("hd", "'a list -> 'a")
    add("tl", "'a list -> 'a list")
    add("fst", "'a * 'b -> 'a")
    add("snd", "'a * 'b -> 'b")
    add("not", "bool -> bool")
    add("min", "int -> int -> int")
    add("max", "int -> int -> int")
    add("abs", "int -> int")
    add("ignore", "'a -> unit")
    return out


def scheme_of_spec(spec: FunctionSpec) -> Scheme:
    """Turn a C-style prototype into a curried polymorphic ML scheme.

    Type variables written ``'a`` in the prototype are shared between the
    ins and outs of one function (so ``accum_marks : 'a list * 'a ->
    'a list`` stays linked) but fresh across functions.
    """
    shared: Dict[str, TVar] = {}
    ins = [parse_type(t, shared) for t in spec.ins]
    outs = [parse_type(t, shared) for t in spec.outs]
    result: Type = outs[0] if len(outs) == 1 else TTuple(tuple(outs))
    if not ins:
        full = TArrow(t_unit, result)
    else:
        full = _arrows(*ins, result)
    return _generalize_all(full)


def initial_env(table: Optional[FunctionTable] = None) -> TypeEnv:
    """The typing environment a specification is checked in."""
    bindings: Dict[str, Scheme] = {}
    bindings.update(skeleton_schemes())
    bindings.update(builtin_schemes())
    if table is not None:
        for spec in table:
            bindings[spec.name] = scheme_of_spec(spec)
    return TypeEnv(bindings)
