"""Located diagnostics for the mini-ML front-end.

Every front-end error (lexical, syntactic, type) carries the source
location it arose at and renders a compiler-style message with a caret
pointing into the offending line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Location", "SourceError", "LexError", "ParseError", "TypeError_"]


@dataclass(frozen=True)
class Location:
    """A position in the source text (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"

    @classmethod
    def unknown(cls) -> "Location":
        return cls(0, 0)

    @property
    def is_known(self) -> bool:
        return self.line > 0


class SourceError(Exception):
    """Base class for located front-end errors."""

    kind = "error"

    def __init__(self, message: str, loc: Optional[Location] = None,
                 source: Optional[str] = None):
        self.message = message
        self.loc = loc or Location.unknown()
        self.source = source
        super().__init__(self.render())

    def render(self) -> str:
        """Compiler-style message, with a source excerpt when available."""
        head = (
            f"{self.kind} at {self.loc}: {self.message}"
            if self.loc.is_known
            else f"{self.kind}: {self.message}"
        )
        if self.source is None or not self.loc.is_known:
            return head
        lines = self.source.splitlines()
        if not (1 <= self.loc.line <= len(lines)):
            return head
        excerpt = lines[self.loc.line - 1]
        caret = " " * (self.loc.column - 1) + "^"
        return f"{head}\n  {excerpt}\n  {caret}"


class LexError(SourceError):
    kind = "lexical error"


class ParseError(SourceError):
    kind = "syntax error"


class TypeError_(SourceError):
    """A type-checking failure (named with a trailing underscore to avoid
    shadowing the builtin)."""

    kind = "type error"
