"""The front-end driver: parse → type-check → extract the network.

Corresponds to the "custom CAML compiler" box of the paper's Fig. 2
(parsing, polymorphic type checking, skeleton expansion into a process
network), stopping at the target-independent program IR; the PNT
instantiation, mapping and code generation stages live in
:mod:`repro.pnt`, :mod:`repro.syndex` and :mod:`repro.codegen`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.functions import FunctionTable
from ..core.ir import Program as IRProgram
from . import ast
from .builtins import initial_env
from .eval import run_main
from .infer import infer_program
from .network import extract_network
from .parser import parse
from .types import Scheme, type_to_str

__all__ = ["CompiledProgram", "compile_source", "typecheck_source"]


@dataclass
class CompiledProgram:
    """Everything the front end knows about one specification."""

    source: str
    syntax: ast.Program
    schemes: Dict[str, Scheme]
    ir: IRProgram
    table: FunctionTable

    def type_of(self, name: str) -> str:
        """The inferred Caml type of a top-level binding, rendered."""
        if name not in self.schemes:
            raise KeyError(f"no top-level binding named {name!r}")
        return type_to_str(self.schemes[name].instantiate())

    def emulate(self, *, max_iterations: Optional[int] = None) -> Any:
        """Run the specification sequentially (the paper's emulation path)."""
        return run_main(
            self.syntax,
            self.table,
            max_iterations=max_iterations,
            source=self.source,
        )


def typecheck_source(
    source: str, table: Optional[FunctionTable] = None
) -> Dict[str, Scheme]:
    """Parse and type-check; returns the schemes of the top-level names.

    Raises :class:`~repro.minicaml.errors.ParseError` or
    :class:`~repro.minicaml.errors.TypeError_` on ill-formed input.
    """
    syntax = parse(source)
    env = initial_env(table)
    _env, schemes, _inf = infer_program(syntax, env, source)
    return schemes


def compile_source(
    source: str,
    table: FunctionTable,
    *,
    entry: str = "main",
    name: Optional[str] = None,
) -> CompiledProgram:
    """Compile a mini-ML specification into a :class:`CompiledProgram`.

    Runs the full front end: lexing/parsing, HM type inference against
    the skeleton and external-function signatures, and network
    extraction producing the program IR.
    """
    syntax = parse(source)
    env = initial_env(table)
    _env, schemes, _inf = infer_program(syntax, env, source)
    ir = extract_network(syntax, table, entry=entry, name=name, source=source)
    return CompiledProgram(source, syntax, schemes, ir, table)
