"""Recursive-descent parser for the mini-ML specification language.

Grammar (precedence from loosest to tightest)::

    program   := phrase* EOF
    phrase    := 'let' ['rec'] lhs '=' expr [';;']
    lhs       := IDENT param* | pattern
    expr      := 'let' ['rec'] lhs '=' expr 'in' expr
               | 'fun' param+ '->' expr
               | 'if' expr 'then' expr 'else' expr
               | tuple
    tuple     := cons (',' cons)*
    cons      := append ('::' cons)?
    append    := compare ('@' compare)*
    compare   := additive (('='|'<>'|'<'|'>'|'<='|'>=') additive)?
    additive  := multiplicative (('+'|'-'|'+.'|'-.') multiplicative)*
    multiplicative := unary (('*'|'/'|'*.'|'/.') unary)*
    unary     := '-' unary | application
    application := atom atom*
    atom      := literal | IDENT | '(' ')' | '(' expr ')' | '[' items? ']'

``let f x y = e`` desugars to ``let f = fun x -> fun y -> e``; parameters
may be identifiers, ``_`` or parenthesised tuple patterns (as in the
paper's ``let loop (state, im) = ...``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse", "parse_expr"]

_COMPARE_OPS = ("=", "<>", "<", ">", "<=", ">=")
_ADD_OPS = ("+", "-", "+.", "-.")
_MUL_OPS = ("*", "/", "*.", "/.")

#: Tokens that can begin an atom — used to detect application juxtaposition.
_ATOM_STARTS = (TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING, TokenKind.IDENT)


class _Parser:
    def __init__(self, tokens: List[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def check_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == TokenKind.OP and tok.text in ops

    def check_kw(self, *kws: str) -> bool:
        tok = self.peek()
        return tok.kind == TokenKind.KEYWORD and tok.text in kws

    def eat_op(self, op: str) -> Token:
        if not self.check_op(op):
            raise ParseError(
                f"expected {op!r}, found {self.peek().text or 'end of input'!r}",
                self.peek().loc,
                self.source,
            )
        return self.advance()

    def eat_kw(self, kw: str) -> Token:
        if not self.check_kw(kw):
            raise ParseError(
                f"expected keyword {kw!r}, found {self.peek().text or 'end of input'!r}",
                self.peek().loc,
                self.source,
            )
        return self.advance()

    def eat_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {tok.text or 'end of input'!r}",
                tok.loc,
                self.source,
            )
        return self.advance()

    # -- patterns ------------------------------------------------------------

    def parse_pattern(self) -> ast.Pattern:
        """pattern := patom (',' patom)*"""
        first = self.parse_pattern_atom()
        if not self.check_op(","):
            return first
        elements = [first]
        while self.check_op(","):
            self.advance()
            elements.append(self.parse_pattern_atom())
        return ast.PTuple(tuple(elements), first.loc)

    def parse_pattern_atom(self) -> ast.Pattern:
        tok = self.peek()
        if tok.kind == TokenKind.IDENT:
            self.advance()
            return ast.PVar(tok.text, tok.loc)
        if self.check_op("_"):
            self.advance()
            return ast.PWild(tok.loc)
        if self.check_op("("):
            self.advance()
            if self.check_op(")"):
                self.advance()
                return ast.PWild(tok.loc)  # unit pattern binds nothing
            inner = self.parse_pattern()
            self.eat_op(")")
            return inner
        raise ParseError(
            f"expected a pattern, found {tok.text or 'end of input'!r}",
            tok.loc,
            self.source,
        )

    def parse_param(self) -> Optional[ast.Pattern]:
        """A function parameter, or None when the next token ends the list."""
        tok = self.peek()
        if tok.kind == TokenKind.IDENT:
            self.advance()
            return ast.PVar(tok.text, tok.loc)
        if self.check_op("_"):
            self.advance()
            return ast.PWild(tok.loc)
        if self.check_op("("):
            self.advance()
            if self.check_op(")"):
                self.advance()
                return ast.PWild(tok.loc)
            inner = self.parse_pattern()
            self.eat_op(")")
            return inner
        return None

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        if self.check_kw("let"):
            return self.parse_let_expr()
        if self.check_kw("fun"):
            return self.parse_fun()
        if self.check_kw("if"):
            return self.parse_if()
        return self.parse_tuple()

    def _parse_let_binding(self) -> Tuple[ast.Pattern, ast.Expr, bool]:
        """Common part of let-phrases and let-in: lhs '=' expr."""
        self.eat_kw("let")
        recursive = False
        if self.check_kw("rec"):
            self.advance()
            recursive = True
        lhs = self.parse_pattern_atom() if not self.check_op("(") else None
        if lhs is None:
            # Starts with '(' — a tuple-pattern binding, no params possible.
            pattern: ast.Pattern = self.parse_pattern_atom()
            params: List[ast.Pattern] = []
        else:
            pattern = lhs
            params = []
            while True:
                p = self.parse_param()
                if p is None:
                    break
                params.append(p)
            if not params and self.check_op(","):
                # Unparenthesised tuple pattern: ``let ms, st = ...``.
                elements = [pattern]
                while self.check_op(","):
                    self.advance()
                    elements.append(self.parse_pattern_atom())
                pattern = ast.PTuple(tuple(elements), elements[0].loc)
        self.eat_op("=")
        body = self.parse_expr()
        if params:
            if not isinstance(pattern, ast.PVar):
                raise ParseError(
                    "only a simple name can take parameters", pattern.loc, self.source
                )
            for p in reversed(params):
                body = ast.Fun(p, body, pattern.loc)
        return pattern, body, recursive

    def parse_let_expr(self) -> ast.Expr:
        loc = self.peek().loc
        pattern, bound, recursive = self._parse_let_binding()
        self.eat_kw("in")
        body = self.parse_expr()
        return ast.Let(pattern, bound, body, recursive, loc)

    def parse_fun(self) -> ast.Expr:
        loc = self.eat_kw("fun").loc
        params = []
        while True:
            p = self.parse_param()
            if p is None:
                break
            params.append(p)
        if not params:
            raise ParseError("fun requires at least one parameter", loc, self.source)
        self.eat_op("->")
        body = self.parse_expr()
        for p in reversed(params):
            body = ast.Fun(p, body, loc)
        return body

    def parse_if(self) -> ast.Expr:
        loc = self.eat_kw("if").loc
        cond = self.parse_expr()
        self.eat_kw("then")
        then = self.parse_expr()
        self.eat_kw("else")
        otherwise = self.parse_expr()
        return ast.If(cond, then, otherwise, loc)

    def parse_tuple(self) -> ast.Expr:
        first = self.parse_cons()
        if not self.check_op(","):
            return first
        elements = [first]
        while self.check_op(","):
            self.advance()
            elements.append(self.parse_cons())
        return ast.TupleExpr(tuple(elements), first.loc)

    def parse_cons(self) -> ast.Expr:
        left = self.parse_append()
        if self.check_op("::"):
            loc = self.advance().loc
            right = self.parse_cons()  # right-associative
            return ast.BinOp("::", left, right, loc)
        return left

    def parse_append(self) -> ast.Expr:
        left = self.parse_compare()
        while self.check_op("@"):
            loc = self.advance().loc
            right = self.parse_compare()
            left = ast.BinOp("@", left, right, loc)
        return left

    def parse_compare(self) -> ast.Expr:
        left = self.parse_additive()
        if self.check_op(*_COMPARE_OPS):
            tok = self.advance()
            right = self.parse_additive()
            return ast.BinOp(tok.text, left, right, tok.loc)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.check_op(*_ADD_OPS):
            tok = self.advance()
            right = self.parse_multiplicative()
            left = ast.BinOp(tok.text, left, right, tok.loc)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.check_op(*_MUL_OPS):
            tok = self.advance()
            right = self.parse_unary()
            left = ast.BinOp(tok.text, left, right, tok.loc)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.check_op("-"):
            tok = self.advance()
            operand = self.parse_unary()
            return ast.BinOp("-", ast.IntLit(0, tok.loc), operand, tok.loc)
        return self.parse_application()

    def parse_application(self) -> ast.Expr:
        fn = self.parse_atom()
        while self._at_atom_start():
            arg = self.parse_atom()
            fn = ast.Apply(fn, arg, fn.loc)
        return fn

    def _at_atom_start(self) -> bool:
        tok = self.peek()
        if tok.kind in _ATOM_STARTS:
            return True
        if tok.kind == TokenKind.KEYWORD and tok.text in ("true", "false"):
            return True
        return tok.kind == TokenKind.OP and tok.text in ("(", "[")

    def parse_atom(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == TokenKind.INT:
            self.advance()
            return ast.IntLit(int(tok.text), tok.loc)
        if tok.kind == TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(float(tok.text), tok.loc)
        if tok.kind == TokenKind.STRING:
            self.advance()
            return ast.StringLit(tok.text, tok.loc)
        if tok.kind == TokenKind.KEYWORD and tok.text in ("true", "false"):
            self.advance()
            return ast.BoolLit(tok.text == "true", tok.loc)
        if tok.kind == TokenKind.IDENT:
            self.advance()
            return ast.Var(tok.text, tok.loc)
        if self.check_op("("):
            self.advance()
            if self.check_op(")"):
                self.advance()
                return ast.UnitLit(tok.loc)
            inner = self.parse_expr()
            self.eat_op(")")
            return inner
        if self.check_op("["):
            self.advance()
            elements: List[ast.Expr] = []
            if not self.check_op("]"):
                elements.append(self.parse_cons())
                while self.check_op(";"):
                    self.advance()
                    elements.append(self.parse_cons())
            self.eat_op("]")
            return ast.ListExpr(tuple(elements), tok.loc)
        raise ParseError(
            f"expected an expression, found {tok.text or 'end of input'!r}",
            tok.loc,
            self.source,
        )

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        phrases: List[ast.TopLet] = []
        while self.peek().kind != TokenKind.EOF:
            loc = self.peek().loc
            pattern, expr, recursive = self._parse_let_binding()
            if self.check_op(";;"):
                self.advance()
            phrases.append(ast.TopLet(pattern, expr, recursive, loc))
        return ast.Program(tuple(phrases))


def parse(source: str) -> ast.Program:
    """Parse a compilation unit (sequence of top-level lets)."""
    return _Parser(tokenize(source), source).parse_program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (testing convenience)."""
    parser = _Parser(tokenize(source), source)
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind != TokenKind.EOF:
        raise ParseError(f"trailing input {tok.text!r}", tok.loc, source)
    return expr
