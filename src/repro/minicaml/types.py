"""The Hindley–Milner type system of the mini-ML front-end.

SKiPPER's custom Caml compiler "performs parsing and polymorphic
type-checking" (section 3); the skeleton signatures of section 2 are
polymorphic schemes (``val df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) ->
'c -> 'a list -> 'c``).  This module provides:

* the type language: variables, base/opaque constructors, ``list``,
  tuples and arrows;
* destructive-substitution-free unification (via a union-find on type
  variables) with the occurs check;
* type schemes with generalisation/instantiation (let-polymorphism);
* a parser for the mini-ML type syntax used in C-prototype declarations
  (``"mark list"``, ``"'c -> 'b -> 'c"``, ``"int * int"``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .errors import Location, TypeError_

__all__ = [
    "Type", "TVar", "TCon", "TList", "TTuple", "TArrow",
    "Scheme", "TypeEnv", "Unifier", "parse_type", "type_to_str",
    "t_int", "t_float", "t_bool", "t_string", "t_unit",
]

_fresh_ids = itertools.count()


class TVar:
    """A unifiable type variable (mutable reference cell)."""

    __slots__ = ("id", "ref", "name")

    def __init__(self, name: Optional[str] = None):
        self.id = next(_fresh_ids)
        self.ref: Optional["Type"] = None  # set by unification
        self.name = name

    def __repr__(self) -> str:
        return f"TVar({self.name or self.id})"


@dataclass(frozen=True)
class TCon:
    """A nullary type constructor: ``int``, ``img``, ``state``...

    Any lowercase identifier is accepted — application-specific C types
    (``img``, ``window``, ``markList``) are opaque constructors that only
    unify with themselves, exactly the discipline SKiPPER needs.
    """

    name: str


@dataclass(frozen=True)
class TList:
    element: "Type"


@dataclass(frozen=True)
class TTuple:
    elements: Tuple["Type", ...]


@dataclass(frozen=True)
class TArrow:
    arg: "Type"
    result: "Type"


Type = Union[TVar, TCon, TList, TTuple, TArrow]

t_int = TCon("int")
t_float = TCon("float")
t_bool = TCon("bool")
t_string = TCon("string")
t_unit = TCon("unit")


def prune(t: Type) -> Type:
    """Follow variable references to the representative type."""
    while isinstance(t, TVar) and t.ref is not None:
        t = t.ref
    return t


def occurs_in(var: TVar, t: Type) -> bool:
    t = prune(t)
    if isinstance(t, TVar):
        return t is var
    if isinstance(t, TList):
        return occurs_in(var, t.element)
    if isinstance(t, TTuple):
        return any(occurs_in(var, e) for e in t.elements)
    if isinstance(t, TArrow):
        return occurs_in(var, t.arg) or occurs_in(var, t.result)
    return False


def free_vars(t: Type) -> List[TVar]:
    """Free type variables of ``t`` (in first-occurrence order)."""
    t = prune(t)
    if isinstance(t, TVar):
        return [t]
    if isinstance(t, TList):
        return free_vars(t.element)
    if isinstance(t, TTuple):
        out: List[TVar] = []
        for e in t.elements:
            for v in free_vars(e):
                if v not in out:
                    out.append(v)
        return out
    if isinstance(t, TArrow):
        out = free_vars(t.arg)
        for v in free_vars(t.result):
            if v not in out:
                out.append(v)
        return out
    return []


class Unifier:
    """Unification with occurs check.

    Stateless apart from the variable reference cells; kept as a class so
    error messages can carry source context.
    """

    def __init__(self, source: Optional[str] = None):
        self.source = source

    def unify(self, a: Type, b: Type, loc: Optional[Location] = None) -> None:
        a, b = prune(a), prune(b)
        if a is b:
            return
        if isinstance(a, TVar):
            if occurs_in(a, b):
                raise TypeError_(
                    f"occurs check: cannot construct the infinite type "
                    f"{type_to_str(a)} = {type_to_str(b)}",
                    loc,
                    self.source,
                )
            a.ref = b
            return
        if isinstance(b, TVar):
            self.unify(b, a, loc)
            return
        if isinstance(a, TCon) and isinstance(b, TCon):
            if a.name != b.name:
                self._mismatch(a, b, loc)
            return
        if isinstance(a, TList) and isinstance(b, TList):
            self.unify(a.element, b.element, loc)
            return
        if isinstance(a, TTuple) and isinstance(b, TTuple):
            if len(a.elements) != len(b.elements):
                self._mismatch(a, b, loc)
            for ea, eb in zip(a.elements, b.elements):
                self.unify(ea, eb, loc)
            return
        if isinstance(a, TArrow) and isinstance(b, TArrow):
            self.unify(a.arg, b.arg, loc)
            self.unify(a.result, b.result, loc)
            return
        self._mismatch(a, b, loc)

    def _mismatch(self, a: Type, b: Type, loc: Optional[Location]) -> None:
        raise TypeError_(
            f"type mismatch: {type_to_str(a)} vs {type_to_str(b)}",
            loc,
            self.source,
        )


@dataclass
class Scheme:
    """A polymorphic type scheme: ``forall quantified. body``."""

    quantified: Tuple[TVar, ...]
    body: Type

    @classmethod
    def monomorphic(cls, t: Type) -> "Scheme":
        return cls((), t)

    def instantiate(self) -> Type:
        """A fresh copy of the body with quantified variables renamed."""
        mapping: Dict[int, TVar] = {v.id: TVar(v.name) for v in self.quantified}

        def copy(t: Type) -> Type:
            t = prune(t)
            if isinstance(t, TVar):
                return mapping.get(t.id, t)
            if isinstance(t, TList):
                return TList(copy(t.element))
            if isinstance(t, TTuple):
                return TTuple(tuple(copy(e) for e in t.elements))
            if isinstance(t, TArrow):
                return TArrow(copy(t.arg), copy(t.result))
            return t

        return copy(self.body)


class TypeEnv:
    """A persistent-ish typing environment (copy-on-extend)."""

    def __init__(self, bindings: Optional[Dict[str, Scheme]] = None):
        self._bindings: Dict[str, Scheme] = dict(bindings or {})

    def lookup(self, name: str) -> Optional[Scheme]:
        return self._bindings.get(name)

    def extend(self, name: str, scheme: Scheme) -> "TypeEnv":
        child = TypeEnv(self._bindings)
        child._bindings[name] = scheme
        return child

    def extend_many(self, items: Sequence[Tuple[str, Scheme]]) -> "TypeEnv":
        child = TypeEnv(self._bindings)
        for name, scheme in items:
            child._bindings[name] = scheme
        return child

    def free_vars(self) -> List[TVar]:
        out: List[TVar] = []
        for scheme in self._bindings.values():
            quantified = set(id(v) for v in scheme.quantified)
            for v in free_vars(scheme.body):
                if id(v) not in quantified and v not in out:
                    out.append(v)
        return out

    def generalize(self, t: Type) -> Scheme:
        """Quantify the variables of ``t`` not free in the environment."""
        env_vars = {id(v) for v in self.free_vars()}
        quantified = tuple(v for v in free_vars(t) if id(v) not in env_vars)
        return Scheme(quantified, t)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._bindings)


# -- pretty printing -----------------------------------------------------


def type_to_str(t: Type) -> str:
    """Render a type in Caml syntax, naming variables 'a, 'b, ... stably."""
    names: Dict[int, str] = {}

    def var_name(v: TVar) -> str:
        if v.id not in names:
            k = len(names)
            suffix = "" if k < 26 else str(k // 26)
            names[v.id] = f"'{chr(ord('a') + k % 26)}{suffix}"
        return names[v.id]

    def render(t: Type, *, arrow_lhs: bool = False, in_tuple: bool = False) -> str:
        t = prune(t)
        if isinstance(t, TVar):
            return var_name(t)
        if isinstance(t, TCon):
            return t.name
        if isinstance(t, TList):
            inner = render(t.element, in_tuple=True)
            return f"{inner} list"
        if isinstance(t, TTuple):
            body = " * ".join(render(e, arrow_lhs=True, in_tuple=True)
                              for e in t.elements)
            return f"({body})" if in_tuple or arrow_lhs else body
        if isinstance(t, TArrow):
            lhs = render(t.arg, arrow_lhs=True)
            rhs = render(t.result)
            body = f"{lhs} -> {rhs}"
            return f"({body})" if arrow_lhs or in_tuple else body
        raise AssertionError(f"unknown type {t!r}")

    return render(t)


# -- type syntax parser ---------------------------------------------------


class _TypeParser:
    """Parses ``'c -> 'b -> 'c``, ``mark list``, ``int * int``, etc."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = self._tokenize(text)
        self.pos = 0
        self.vars: Dict[str, TVar] = {}

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens: List[str] = []
        i = 0
        while i < len(text):
            ch = text[i]
            if ch.isspace():
                i += 1
            elif text.startswith("->", i):
                tokens.append("->")
                i += 2
            elif ch in "()*":
                tokens.append(ch)
                i += 1
            elif ch == "'":
                j = i + 1
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            elif ch.isalpha() or ch == "_":
                j = i
                while j < len(text) and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            else:
                raise TypeError_(f"bad character {ch!r} in type {text!r}")
        return tokens

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> str:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def parse(self) -> Type:
        t = self.parse_arrow()
        if self.peek() is not None:
            raise TypeError_(f"trailing {self.peek()!r} in type {self.text!r}")
        return t

    def parse_arrow(self) -> Type:
        left = self.parse_tuple()
        if self.peek() == "->":
            self.advance()
            return TArrow(left, self.parse_arrow())
        return left

    def parse_tuple(self) -> Type:
        first = self.parse_postfix()
        if self.peek() != "*":
            return first
        elements = [first]
        while self.peek() == "*":
            self.advance()
            elements.append(self.parse_postfix())
        return TTuple(tuple(elements))

    def parse_postfix(self) -> Type:
        t = self.parse_atom()
        while self.peek() == "list":
            self.advance()
            t = TList(t)
        return t

    def parse_atom(self) -> Type:
        tok = self.peek()
        if tok is None:
            raise TypeError_(f"unexpected end of type {self.text!r}")
        if tok == "(":
            self.advance()
            inner = self.parse_arrow()
            if self.peek() != ")":
                raise TypeError_(f"missing ')' in type {self.text!r}")
            self.advance()
            return inner
        if tok.startswith("'"):
            self.advance()
            if tok not in self.vars:
                self.vars[tok] = TVar(tok)
            return self.vars[tok]
        if tok == "list":
            raise TypeError_(f"'list' needs an element type in {self.text!r}")
        self.advance()
        return TCon(tok)


def parse_type(text: str, vars: Optional[Dict[str, TVar]] = None) -> Type:
    """Parse mini-ML type syntax into a :class:`Type`.

    Variables written ``'a`` are shared within one call; pass a ``vars``
    dict to share them across several calls (e.g. the ins and outs of one
    C prototype).
    """
    parser = _TypeParser(text)
    if vars is not None:
        parser.vars = vars
    return parser.parse()
