"""Abstract syntax for the mini-ML specification language.

Expressions carry their source :class:`~repro.minicaml.errors.Location`
so inference and network-extraction errors point at the offending code.
Patterns are restricted to what SKiPPER specs need: variables, wildcards
and (nested) tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .errors import Location

__all__ = [
    "Pattern", "PVar", "PWild", "PTuple",
    "Expr", "IntLit", "FloatLit", "BoolLit", "StringLit", "UnitLit",
    "Var", "TupleExpr", "ListExpr", "If", "Apply", "Fun", "Let", "BinOp",
    "TopLet", "Program",
]


# -- patterns ---------------------------------------------------------------


@dataclass(frozen=True)
class PVar:
    name: str
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class PWild:
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class PTuple:
    elements: Tuple["Pattern", ...]
    loc: Location = field(default_factory=Location.unknown, compare=False)


Pattern = Union[PVar, PWild, PTuple]


def pattern_vars(p: Pattern) -> List[str]:
    """Variable names bound by a pattern, left to right."""
    if isinstance(p, PVar):
        return [p.name]
    if isinstance(p, PWild):
        return []
    out: List[str] = []
    for sub in p.elements:
        out.extend(pattern_vars(sub))
    return out


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class IntLit:
    value: int
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class FloatLit:
    value: float
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class BoolLit:
    value: bool
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class StringLit:
    value: str
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class UnitLit:
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class Var:
    name: str
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class TupleExpr:
    elements: Tuple["Expr", ...]
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class ListExpr:
    elements: Tuple["Expr", ...]
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class If:
    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class Apply:
    """Function application ``fn arg`` (curried; juxtaposition)."""

    fn: "Expr"
    arg: "Expr"
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class Fun:
    """``fun pattern -> body``."""

    param: Pattern
    body: "Expr"
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class Let:
    """``let pattern = bound in body`` (non-recursive)."""

    pattern: Pattern
    bound: "Expr"
    body: "Expr"
    recursive: bool = False
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class BinOp:
    """Binary operator application (kept distinct from Apply for printing)."""

    op: str
    left: "Expr"
    right: "Expr"
    loc: Location = field(default_factory=Location.unknown, compare=False)


Expr = Union[
    IntLit, FloatLit, BoolLit, StringLit, UnitLit,
    Var, TupleExpr, ListExpr, If, Apply, Fun, Let, BinOp,
]


# -- top level -----------------------------------------------------------


@dataclass(frozen=True)
class TopLet:
    """A top-level phrase ``let pattern = expr;;``.

    ``let f x y = e`` parses as ``let f = fun x -> fun y -> e``.
    """

    pattern: Pattern
    expr: Expr
    recursive: bool = False
    loc: Location = field(default_factory=Location.unknown, compare=False)


@dataclass(frozen=True)
class Program:
    """A parsed compilation unit: a sequence of top-level lets."""

    phrases: Tuple[TopLet, ...]

    def binding(self, name: str) -> Optional[TopLet]:
        """The last top-level binding of ``name``, if any."""
        found = None
        for phrase in self.phrases:
            if isinstance(phrase.pattern, PVar) and phrase.pattern.name == name:
                found = phrase
        return found
