"""Pretty-printing of mini-ML syntax trees back to source text.

Used by tooling (showing the programmer what the front end understood,
rendering inlined/transformed specifications) and by the test suite's
parse/print round-trip checks.  The printer inserts parentheses exactly
where the grammar's precedence requires them, so
``parse(pretty(e)) == e`` up to source locations.
"""

from __future__ import annotations

from typing import Union

from . import ast

__all__ = ["pretty_expr", "pretty_pattern", "pretty_program"]

# Precedence levels, loosest to tightest (mirrors the parser).
_LET = 0
_TUPLE = 1
_CONS = 2
_APPEND = 3
_COMPARE = 4
_ADD = 5
_MUL = 6
_APP = 7
_ATOM = 8

_BINOP_LEVEL = {
    "::": _CONS,
    "@": _APPEND,
    "=": _COMPARE, "<>": _COMPARE, "<": _COMPARE, ">": _COMPARE,
    "<=": _COMPARE, ">=": _COMPARE,
    "+": _ADD, "-": _ADD, "+.": _ADD, "-.": _ADD,
    "*": _MUL, "/": _MUL, "*.": _MUL, "/.": _MUL,
}

#: Operators that associate to the right (printed without parens on the
#: right operand at equal precedence).
_RIGHT_ASSOC = {"::"}


def pretty_pattern(pattern: ast.Pattern, *, top: bool = True) -> str:
    if isinstance(pattern, ast.PVar):
        return pattern.name
    if isinstance(pattern, ast.PWild):
        return "_"
    inner = ", ".join(pretty_pattern(p, top=False) for p in pattern.elements)
    return inner if top else f"({inner})"


def _wrap(text: str, level: int, context: int) -> str:
    return f"({text})" if level < context else text


def pretty_expr(expr: ast.Expr, context: int = _LET) -> str:
    """Render ``expr``, parenthesising for a surrounding ``context`` level."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, ast.UnitLit):
        return "()"
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.TupleExpr):
        body = ", ".join(pretty_expr(e, _CONS) for e in expr.elements)
        return _wrap(body, _TUPLE, context)
    if isinstance(expr, ast.ListExpr):
        return "[" + "; ".join(pretty_expr(e, _CONS) for e in expr.elements) + "]"
    if isinstance(expr, ast.If):
        body = (
            f"if {pretty_expr(expr.cond)} then {pretty_expr(expr.then)} "
            f"else {pretty_expr(expr.otherwise)}"
        )
        return _wrap(body, _LET, context)
    if isinstance(expr, ast.Fun):
        body = f"fun {pretty_pattern(expr.param, top=False)} -> {pretty_expr(expr.body)}"
        return _wrap(body, _LET, context)
    if isinstance(expr, ast.Let):
        keyword = "let rec" if expr.recursive else "let"
        body = (
            f"{keyword} {pretty_pattern(expr.pattern)} = "
            f"{pretty_expr(expr.bound)} in {pretty_expr(expr.body)}"
        )
        return _wrap(body, _LET, context)
    if isinstance(expr, ast.Apply):
        fn = pretty_expr(expr.fn, _APP)
        arg = pretty_expr(expr.arg, _ATOM)
        return _wrap(f"{fn} {arg}", _APP, context)
    if isinstance(expr, ast.BinOp):
        level = _BINOP_LEVEL[expr.op]
        if expr.op in _RIGHT_ASSOC:
            left = pretty_expr(expr.left, level + 1)
            right = pretty_expr(expr.right, level)
        elif level == _COMPARE:
            # Comparisons are non-associative: both operands need to sit
            # strictly tighter, else `a < b < c` would not reparse.
            left = pretty_expr(expr.left, level + 1)
            right = pretty_expr(expr.right, level + 1)
        else:
            left = pretty_expr(expr.left, level)
            right = pretty_expr(expr.right, level + 1)
        return _wrap(f"{left} {expr.op} {right}", level, context)
    raise AssertionError(f"unknown expression node {expr!r}")


def pretty_program(program: ast.Program) -> str:
    """Render a compilation unit, one phrase per line."""
    phrases = []
    for phrase in program.phrases:
        keyword = "let rec" if phrase.recursive else "let"
        phrases.append(
            f"{keyword} {pretty_pattern(phrase.pattern)} = "
            f"{pretty_expr(phrase.expr)};;"
        )
    return "\n".join(phrases)
