"""Hindley–Milner type inference (Algorithm J) for mini-ML.

Implements the "polymorphic type-checking" stage of SKiPPER's custom
Caml compiler (section 3): every specification is inferred against the
skeleton schemes of :mod:`repro.minicaml.builtins`, so a composition
whose sequential functions do not satisfy a skeleton's generic type
constraints is rejected *before* any parallel machinery runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import ast
from .errors import TypeError_
from .types import (
    Scheme,
    TArrow,
    TList,
    TTuple,
    TVar,
    Type,
    TypeEnv,
    Unifier,
    prune,
    t_bool,
    t_float,
    t_int,
    t_string,
    t_unit,
    type_to_str,
)

__all__ = ["Inferencer", "infer_program", "infer_expr"]

_INT_OPS = ("+", "-", "*", "/")
_FLOAT_OPS = ("+.", "-.", "*.", "/.")
_COMPARE_OPS = ("=", "<>", "<", ">", "<=", ">=")


class Inferencer:
    """Stateful inference pass over one compilation unit."""

    def __init__(self, source: Optional[str] = None):
        self.source = source
        self.unifier = Unifier(source)
        #: Inferred type of every expression node (by identity), for the
        #: network extractor and for tooling.
        self.node_types: Dict[int, Type] = {}

    # -- patterns -----------------------------------------------------------

    def pattern_type(
        self, pattern: ast.Pattern
    ) -> Tuple[Type, Dict[str, Type]]:
        """Fresh type + variable bindings for a binder pattern."""
        if isinstance(pattern, ast.PVar):
            t = TVar(pattern.name)
            return t, {pattern.name: t}
        if isinstance(pattern, ast.PWild):
            return TVar(), {}
        bindings: Dict[str, Type] = {}
        element_types = []
        for sub in pattern.elements:
            t, bs = self.pattern_type(sub)
            for name in bs:
                if name in bindings:
                    raise TypeError_(
                        f"variable {name!r} bound twice in pattern",
                        pattern.loc,
                        self.source,
                    )
            bindings.update(bs)
            element_types.append(t)
        return TTuple(tuple(element_types)), bindings

    # -- expressions -------------------------------------------------------

    def infer(self, env: TypeEnv, expr: ast.Expr) -> Type:
        t = self._infer(env, expr)
        self.node_types[id(expr)] = t
        return t

    def _infer(self, env: TypeEnv, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLit):
            return t_int
        if isinstance(expr, ast.FloatLit):
            return t_float
        if isinstance(expr, ast.BoolLit):
            return t_bool
        if isinstance(expr, ast.StringLit):
            return t_string
        if isinstance(expr, ast.UnitLit):
            return t_unit

        if isinstance(expr, ast.Var):
            scheme = env.lookup(expr.name)
            if scheme is None:
                raise TypeError_(
                    f"unbound identifier {expr.name!r}", expr.loc, self.source
                )
            return scheme.instantiate()

        if isinstance(expr, ast.TupleExpr):
            return TTuple(tuple(self.infer(env, e) for e in expr.elements))

        if isinstance(expr, ast.ListExpr):
            element = TVar()
            for e in expr.elements:
                self.unifier.unify(self.infer(env, e), element, e.loc)
            return TList(element)

        if isinstance(expr, ast.If):
            self.unifier.unify(self.infer(env, expr.cond), t_bool, expr.cond.loc)
            t_then = self.infer(env, expr.then)
            t_else = self.infer(env, expr.otherwise)
            self.unifier.unify(t_then, t_else, expr.loc)
            return t_then

        if isinstance(expr, ast.Fun):
            param_t, bindings = self.pattern_type(expr.param)
            inner = env.extend_many(
                [(n, Scheme.monomorphic(t)) for n, t in bindings.items()]
            )
            body_t = self.infer(inner, expr.body)
            return TArrow(param_t, body_t)

        if isinstance(expr, ast.Apply):
            fn_t = self.infer(env, expr.fn)
            arg_t = self.infer(env, expr.arg)
            result = TVar()
            try:
                self.unifier.unify(fn_t, TArrow(arg_t, result), expr.loc)
            except TypeError_ as err:
                # Re-raise with a more helpful application-centric message.
                raise TypeError_(
                    f"ill-typed application: function has type "
                    f"{type_to_str(fn_t)} but is applied to a value of type "
                    f"{type_to_str(arg_t)} ({err.message})",
                    expr.loc,
                    self.source,
                ) from None
            return result

        if isinstance(expr, ast.Let):
            bound_t = self._infer_binding(env, expr)
            return self._with_pattern(
                env, expr.pattern, bound_t, lambda inner: self.infer(inner, expr.body)
            )

        if isinstance(expr, ast.BinOp):
            return self._infer_binop(env, expr)

        raise AssertionError(f"unknown expression node {expr!r}")

    def _infer_binding(self, env: TypeEnv, let: "ast.Let | ast.TopLet") -> Type:
        """Type of a let-bound expression, handling ``let rec``."""
        if not let.recursive:
            return self.infer(env, let.bound if isinstance(let, ast.Let) else let.expr)
        if not isinstance(let.pattern, ast.PVar):
            raise TypeError_(
                "let rec requires a simple variable binding",
                let.loc,
                self.source,
            )
        self_t = TVar(let.pattern.name)
        inner = env.extend(let.pattern.name, Scheme.monomorphic(self_t))
        bound_expr = let.bound if isinstance(let, ast.Let) else let.expr
        bound_t = self.infer(inner, bound_expr)
        self.unifier.unify(self_t, bound_t, let.loc)
        return bound_t

    def _with_pattern(self, env: TypeEnv, pattern: ast.Pattern, t: Type, k):
        """Run ``k`` in ``env`` extended by generalised pattern bindings."""
        extended = self._bind_pattern(env, pattern, t)
        return k(extended)

    def _bind_pattern(self, env: TypeEnv, pattern: ast.Pattern, t: Type) -> TypeEnv:
        if isinstance(pattern, ast.PVar):
            return env.extend(pattern.name, env.generalize(t))
        if isinstance(pattern, ast.PWild):
            return env
        element_types = tuple(TVar() for _ in pattern.elements)
        self.unifier.unify(t, TTuple(element_types), pattern.loc)
        for sub, sub_t in zip(pattern.elements, element_types):
            env = self._bind_pattern(env, sub, sub_t)
        return env

    def _infer_binop(self, env: TypeEnv, expr: ast.BinOp) -> Type:
        lt = self.infer(env, expr.left)
        rt = self.infer(env, expr.right)
        if expr.op in _INT_OPS:
            self.unifier.unify(lt, t_int, expr.left.loc)
            self.unifier.unify(rt, t_int, expr.right.loc)
            return t_int
        if expr.op in _FLOAT_OPS:
            self.unifier.unify(lt, t_float, expr.left.loc)
            self.unifier.unify(rt, t_float, expr.right.loc)
            return t_float
        if expr.op in _COMPARE_OPS:
            self.unifier.unify(lt, rt, expr.loc)
            return t_bool
        if expr.op == "::":
            self.unifier.unify(rt, TList(lt), expr.loc)
            return rt
        if expr.op == "@":
            element = TVar()
            self.unifier.unify(lt, TList(element), expr.left.loc)
            self.unifier.unify(rt, TList(element), expr.right.loc)
            return lt
        raise AssertionError(f"unknown operator {expr.op!r}")


def infer_program(
    program: ast.Program,
    env: TypeEnv,
    source: Optional[str] = None,
) -> Tuple[TypeEnv, Dict[str, Scheme], Inferencer]:
    """Infer every top-level phrase in order.

    Returns the final environment, the schemes of the top-level names
    (last binding wins, as in Caml), and the inferencer (whose
    ``node_types`` the network extractor reuses).
    """
    inf = Inferencer(source)
    top: Dict[str, Scheme] = {}
    for phrase in program.phrases:
        bound_t = inf._infer_binding(env, phrase)
        env = inf._bind_pattern(env, phrase.pattern, bound_t)
        for name in ast.pattern_vars(phrase.pattern):
            scheme = env.lookup(name)
            assert scheme is not None
            top[name] = scheme
    return env, top, inf


def infer_expr(expr: ast.Expr, env: TypeEnv, source: Optional[str] = None) -> Type:
    """Infer the type of a standalone expression (testing convenience)."""
    return Inferencer(source).infer(env, expr)
