"""Direct interpreter for mini-ML specifications.

This is the "Sequential Emulation" branch of the paper's Fig. 2: the
very same source file that drives the parallel implementation runs here
as an ordinary functional program, with skeletons interpreted by their
declarative semantics (:mod:`repro.core.semantics`) and external
functions dispatched to their registered Python implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import semantics
from ..core.functions import FunctionSpec, FunctionTable
from . import ast
from .errors import SourceError

__all__ = ["EvalError", "Interpreter", "run_main", "evaluate_program"]


class EvalError(SourceError):
    kind = "runtime error"


@dataclass
class Closure:
    """A user function value."""

    param: ast.Pattern
    body: ast.Expr
    env: Dict[str, Any]


class _Curried:
    """Partial application of an n-ary host (Python) function."""

    __slots__ = ("fn", "arity", "args", "name")

    def __init__(self, fn: Callable, arity: int, name: str, args: Tuple = ()):
        self.fn = fn
        self.arity = arity
        self.name = name
        self.args = args

    def apply(self, arg: Any) -> Any:
        args = self.args + (arg,)
        if len(args) == self.arity:
            return self.fn(*args)
        return _Curried(self.fn, self.arity, self.name, args)

    def __repr__(self) -> str:
        return f"<{self.name}:{len(self.args)}/{self.arity}>"


def _wrap_external(spec: FunctionSpec) -> Any:
    """An external function as a curried value (unit-argument when nullary)."""
    if spec.arity == 0:
        return _Curried(lambda _unit: spec(), 1, spec.name)
    return _Curried(lambda *args: spec(*args), spec.arity, spec.name)


def _tf_comp_adapter(comp: Callable[[Any], Any]) -> Callable[[Any], semantics.TaskOutcome]:
    """Adapt the ML pair-of-lists worker convention to TaskOutcome."""

    def adapted(x: Any) -> semantics.TaskOutcome:
        out = comp(x)
        if isinstance(out, semantics.TaskOutcome):
            return out
        if isinstance(out, tuple) and len(out) == 2:
            results, subtasks = out
            return semantics.TaskOutcome(results=list(results), subtasks=list(subtasks))
        raise TypeError(
            "tf worker must return (results, subtasks) or TaskOutcome, "
            f"got {type(out).__name__}"
        )

    return adapted


class Interpreter:
    """Evaluates expressions; owns the builtin/global environments."""

    def __init__(
        self,
        table: Optional[FunctionTable] = None,
        *,
        max_iterations: Optional[int] = None,
        source: Optional[str] = None,
    ):
        self.table = table
        self.max_iterations = max_iterations
        self.source = source
        self.globals: Dict[str, Any] = self._builtin_values()
        if table is not None:
            for spec in table:
                self.globals[spec.name] = _wrap_external(spec)

    # -- builtins -----------------------------------------------------------

    def _builtin_values(self) -> Dict[str, Any]:
        def curried(name: str, arity: int, fn: Callable) -> _Curried:
            return _Curried(fn, arity, name)

        apply1 = self._apply_value

        def ml_map(f, xs):
            return [apply1(f, x) for x in xs]

        def ml_fold_left(f, z, xs):
            acc = z
            for x in xs:
                acc = apply1(apply1(f, acc), x)
            return acc

        def ml_scm(n, split, comp, merge, x):
            return semantics.scm(
                n,
                lambda k, v: apply1(apply1(split, k), v),
                lambda piece: apply1(comp, piece),
                lambda orig, results: apply1(apply1(merge, orig), results),
                x,
            )

        def ml_df(n, comp, acc, z, xs):
            return semantics.df(
                n,
                lambda v: apply1(comp, v),
                lambda c, y: apply1(apply1(acc, c), y),
                z,
                xs,
            )

        def ml_tf(n, comp, acc, z, xs):
            return semantics.tf(
                n,
                _tf_comp_adapter(lambda v: apply1(comp, v)),
                lambda c, y: apply1(apply1(acc, c), y),
                z,
                xs,
            )

        def ml_itermem(inp, loop, out, z, x):
            return semantics.itermem(
                lambda v: apply1(inp, v),
                lambda state_item: apply1(loop, state_item),
                lambda y: apply1(out, y),
                z,
                x,
                max_iterations=self.max_iterations,
            )

        def ml_hd(xs):
            if not xs:
                raise EvalError("hd of empty list")
            return xs[0]

        def ml_tl(xs):
            if not xs:
                raise EvalError("tl of empty list")
            return list(xs[1:])

        return {
            "map": curried("map", 2, ml_map),
            "fold_left": curried("fold_left", 3, ml_fold_left),
            "scm": curried("scm", 5, ml_scm),
            "df": curried("df", 5, ml_df),
            "tf": curried("tf", 5, ml_tf),
            "itermem": curried("itermem", 5, ml_itermem),
            "length": curried("length", 1, len),
            "rev": curried("rev", 1, lambda xs: list(reversed(xs))),
            "hd": curried("hd", 1, ml_hd),
            "tl": curried("tl", 1, ml_tl),
            "fst": curried("fst", 1, lambda p: p[0]),
            "snd": curried("snd", 1, lambda p: p[1]),
            "not": curried("not", 1, lambda b: not b),
            "min": curried("min", 2, min),
            "max": curried("max", 2, max),
            "abs": curried("abs", 1, abs),
            "ignore": curried("ignore", 1, lambda _x: None),
        }

    # -- core evaluation ------------------------------------------------------

    def _apply_value(self, fn: Any, arg: Any) -> Any:
        if isinstance(fn, Closure):
            env = dict(fn.env)
            self._bind(fn.param, arg, env)
            return self.eval(fn.body, env)
        if isinstance(fn, _Curried):
            return fn.apply(arg)
        raise EvalError(f"cannot apply non-function value {fn!r}")

    def _bind(self, pattern: ast.Pattern, value: Any, env: Dict[str, Any]) -> None:
        if isinstance(pattern, ast.PVar):
            env[pattern.name] = value
        elif isinstance(pattern, ast.PWild):
            pass
        else:
            if not isinstance(value, tuple) or len(value) != len(pattern.elements):
                raise EvalError(
                    f"cannot destructure {value!r} with a "
                    f"{len(pattern.elements)}-tuple pattern",
                    pattern.loc,
                    self.source,
                )
            for sub, v in zip(pattern.elements, value):
                self._bind(sub, v, env)

    def eval(self, expr: ast.Expr, env: Dict[str, Any]) -> Any:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.UnitLit):
            return None
        if isinstance(expr, ast.Var):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.globals:
                return self.globals[expr.name]
            raise EvalError(f"unbound identifier {expr.name!r}", expr.loc, self.source)
        if isinstance(expr, ast.TupleExpr):
            return tuple(self.eval(e, env) for e in expr.elements)
        if isinstance(expr, ast.ListExpr):
            return [self.eval(e, env) for e in expr.elements]
        if isinstance(expr, ast.If):
            if self.eval(expr.cond, env):
                return self.eval(expr.then, env)
            return self.eval(expr.otherwise, env)
        if isinstance(expr, ast.Fun):
            return Closure(expr.param, expr.body, dict(env))
        if isinstance(expr, ast.Apply):
            fn = self.eval(expr.fn, env)
            arg = self.eval(expr.arg, env)
            return self._apply_value(fn, arg)
        if isinstance(expr, ast.Let):
            value = self._eval_binding(expr, env)
            inner = dict(env)
            self._bind(expr.pattern, value, inner)
            return self.eval(expr.body, inner)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        raise AssertionError(f"unknown expression node {expr!r}")

    def _eval_binding(self, let, env: Dict[str, Any]) -> Any:
        bound = let.bound if isinstance(let, ast.Let) else let.expr
        if not let.recursive:
            return self.eval(bound, env)
        if not isinstance(let.pattern, ast.PVar):
            raise EvalError("let rec requires a simple name", let.loc, self.source)
        # Tie the knot through the (shared, mutable) closure environment.
        rec_env = dict(env)
        value = self.eval(bound, rec_env)
        if isinstance(value, Closure):
            value.env[let.pattern.name] = value
        rec_env[let.pattern.name] = value
        return value

    def _structural_compare(self, a: Any, b: Any) -> int:
        """OCaml-style polymorphic comparison (-1 / 0 / +1).

        Handles unit (None) — which Python cannot order natively — and
        recurses through tuples and lists; comparing functional values
        is a runtime error, as in OCaml.
        """
        if a is None and b is None:
            return 0
        if isinstance(a, (Closure, _Curried)) or isinstance(b, (Closure, _Curried)):
            raise EvalError("cannot compare functional values")
        if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
            for xa, xb in zip(a, b):
                c = self._structural_compare(xa, xb)
                if c != 0:
                    return c
            return (len(a) > len(b)) - (len(a) < len(b))
        if a == b:
            return 0
        return -1 if a < b else 1

    def _eval_binop(self, expr: ast.BinOp, env: Dict[str, Any]) -> Any:
        lv = self.eval(expr.left, env)
        rv = self.eval(expr.right, env)
        op = expr.op
        if op in ("+", "+."):
            return lv + rv
        if op in ("-", "-."):
            return lv - rv
        if op in ("*", "*."):
            return lv * rv
        if op == "/":
            if rv == 0:
                raise EvalError("division by zero", expr.loc, self.source)
            return lv // rv if isinstance(lv, int) and isinstance(rv, int) else lv / rv
        if op == "/.":
            if rv == 0:
                raise EvalError("division by zero", expr.loc, self.source)
            return lv / rv
        if op == "=":
            return self._structural_compare(lv, rv) == 0
        if op == "<>":
            return self._structural_compare(lv, rv) != 0
        if op == "<":
            return self._structural_compare(lv, rv) < 0
        if op == ">":
            return self._structural_compare(lv, rv) > 0
        if op == "<=":
            return self._structural_compare(lv, rv) <= 0
        if op == ">=":
            return self._structural_compare(lv, rv) >= 0
        if op == "::":
            return [lv] + list(rv)
        if op == "@":
            return list(lv) + list(rv)
        raise AssertionError(f"unknown operator {op!r}")


def evaluate_program(
    program: ast.Program,
    table: Optional[FunctionTable] = None,
    *,
    max_iterations: Optional[int] = None,
    source: Optional[str] = None,
) -> Dict[str, Any]:
    """Evaluate every top-level phrase; returns the global value bindings."""
    interp = Interpreter(table, max_iterations=max_iterations, source=source)
    env: Dict[str, Any] = {}
    for phrase in program.phrases:
        value = interp._eval_binding(phrase, env)
        interp._bind(phrase.pattern, value, env)
    return env


def run_main(
    program: ast.Program,
    table: Optional[FunctionTable] = None,
    *,
    max_iterations: Optional[int] = None,
    entry: str = "main",
    source: Optional[str] = None,
) -> Any:
    """Evaluate the program and return the value of its entry binding.

    For the paper-style ``let main = itermem ...`` the stream runs during
    evaluation (bounded by ``max_iterations``) and the returned value is
    the final memory.
    """
    env = evaluate_program(
        program, table, max_iterations=max_iterations, source=source
    )
    if entry not in env:
        raise EvalError(f"no top-level binding named {entry!r}")
    return env[entry]
