"""The end-to-end SKiPPER pipeline (paper Fig. 2), as one public API.

Typical use::

    from repro import pipeline
    from repro.syndex import ring

    compiled = pipeline.compile_source(src, table)      # parse + HM types + IR
    graph = pipeline.expand(compiled.ir, table)         # skeleton -> PNT graph
    profile = pipeline.profile(graph, table,            # measured costs
                               max_iterations=2, rewind=app.rewind)
    mapping = pipeline.map_onto(graph, ring(8), profile=profile)
    report = pipeline.run(mapping, table, max_iterations=50, real_time=True)

or the one-call convenience :func:`build` that performs all five stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from .core.functions import FunctionTable
from .core.ir import Program
from .machine.costs import FAST_TEST, T9000, CostModel
from .machine.executive import Executive, Profile, RunReport
from .minicaml.compile import CompiledProgram, compile_source
from .pnt.expand import expand_program
from .pnt.graph import ProcessGraph, ProcessKind
from .syndex.arch import Architecture, ring
from .syndex.deadlock import DeadlockReport, check_deadlock_freedom
from .syndex.distribute import Mapping, distribute

__all__ = [
    "compile_source",
    "expand",
    "profile",
    "map_onto",
    "run",
    "build",
    "BuiltApplication",
]


def expand(program: Program, table: Optional[FunctionTable] = None) -> ProcessGraph:
    """Instantiate every skeleton's PNT: program IR → process graph."""
    return expand_program(program, table)


def profile(
    graph: ProcessGraph,
    table: FunctionTable,
    *,
    max_iterations: int = 2,
    args: Optional[Tuple] = None,
    rewind: Optional[Callable[[], None]] = None,
) -> Profile:
    """Measure per-process compute times and per-edge payload sizes.

    Runs the executive on a single-processor machine (so timing is purely
    the cost models — no mapping effects) for a few iterations, recording
    the profile that :func:`map_onto` uses for measured-cost placement.

    Stream sources are *consumed* by profiling; pass ``rewind`` to restore
    them afterwards (e.g. ``app.rewind``).
    """
    mapping = distribute(graph, ring(1))
    executive = Executive(mapping, table, FAST_TEST)
    if graph.by_kind(ProcessKind.MEM):
        executive.run(max_iterations)
    else:
        executive.run_once(*(args or ()))
    if rewind is not None:
        rewind()
    return executive.profile


def map_onto(
    graph: ProcessGraph,
    arch: Architecture,
    *,
    profile: Optional[Profile] = None,
    comm_factor: float = 1.0,
    check: bool = True,
    scheduler: Optional[str] = None,
    latency_budget_us: Optional[float] = None,
    throughput_target_hz: Optional[float] = None,
) -> Mapping:
    """Distribute the process graph onto the architecture.

    With a :class:`~repro.machine.executive.Profile`, placement uses
    measured compute times and transfer costs (the AAA adequation loop);
    without one it falls back to structural weights.  ``check`` verifies
    deadlock freedom and raises on violation.

    ``scheduler`` selects a registered placement policy by name
    (``aaa``, ``bicriteria``, ``round-robin``; see
    :mod:`repro.sched.registry`) instead of calling the AAA heuristic
    directly; the bi-criteria search honours ``latency_budget_us`` /
    ``throughput_target_hz`` as its constrained criterion.
    """
    kwargs: Dict[str, Any] = {"comm_factor": comm_factor}
    if profile is not None:
        kwargs["edge_bytes"] = profile.edge_bytes
        kwargs["durations"] = profile.durations()
    if scheduler is None:
        mapping = distribute(graph, arch, **kwargs)
    else:
        from .sched.registry import get_scheduler

        mapping = get_scheduler(scheduler).place(
            graph, arch,
            latency_budget_us=latency_budget_us,
            throughput_target_hz=throughput_target_hz,
            **kwargs,
        )
    if check:
        report = check_deadlock_freedom(mapping)
        if not report.ok:
            raise RuntimeError(report.render())
    return mapping


def run(
    mapping: Mapping,
    table: FunctionTable,
    costs: CostModel = T9000,
    *,
    backend: str = "simulate",
    program: Optional[Program] = None,
    max_iterations: Optional[int] = None,
    real_time: bool = False,
    args: Optional[Tuple] = None,
    record_trace: bool = False,
    timeout: float = 120.0,
    fault_plan: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    budget: Optional[Any] = None,
    **options: Any,
) -> RunReport:
    """Execute the mapped program on the selected execution backend.

    ``backend`` names a registered target (``emulate``, ``simulate``,
    ``threads``, ``processes``, ...); the default is the discrete-event
    simulator.  ``program`` (the IR) is only needed by backends that
    bypass the mapping, e.g. ``emulate``.  Backend-specific knobs
    (``start_method``, ``shm_threshold``, ...) pass through ``options``.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) switches on
    fault injection and farm supervision on the backends that support it
    (``simulate``, ``threads``, ``processes``); the resulting
    :class:`~repro.faults.report.FaultReport` is attached to the report's
    ``faults`` field.  ``fault_policy`` tunes timeouts and retry budgets.

    ``budget`` (a :class:`~repro.realtime.budget.LatencyBudget`) switches
    on the real-time robustness layer on stream programs: per-frame
    deadlines, bounded-queue admission with the selected overload policy,
    and a frame-conservation ledger attached as ``report.realtime``.
    """
    from .backends import get_backend

    if fault_plan is not None:
        options["fault_plan"] = fault_plan
        options["fault_policy"] = fault_policy
    if budget is not None:
        options["budget"] = budget
    return get_backend(backend).run(
        mapping,
        table,
        program=program,
        costs=costs,
        max_iterations=max_iterations,
        real_time=real_time,
        args=args,
        record_trace=record_trace,
        timeout=timeout,
        **options,
    )


@dataclass
class BuiltApplication:
    """Everything :func:`build` produced, ready to run."""

    compiled: CompiledProgram
    graph: ProcessGraph
    mapping: Mapping
    deadlock: DeadlockReport
    profile: Optional[Profile]
    table: FunctionTable
    costs: CostModel

    def run(
        self,
        *,
        backend: str = "simulate",
        max_iterations: Optional[int] = None,
        real_time: bool = False,
        args: Optional[Tuple] = None,
        record_trace: bool = False,
        timeout: float = 120.0,
        **options: Any,
    ) -> RunReport:
        return run(
            self.mapping,
            self.table,
            self.costs,
            backend=backend,
            program=self.compiled.ir,
            max_iterations=max_iterations,
            real_time=real_time,
            args=args,
            record_trace=record_trace,
            timeout=timeout,
            **options,
        )

    def emulate(self, **kw):
        """The sequential-emulation path on the same source."""
        return self.compiled.emulate(**kw)


def build(
    source: str,
    table: FunctionTable,
    arch: Architecture,
    *,
    costs: CostModel = T9000,
    profile_iterations: int = 0,
    profile_args: Optional[Tuple] = None,
    rewind: Optional[Callable[[], None]] = None,
    comm_factor: float = 1.0,
    entry: str = "main",
    cache: Optional[Any] = None,
    scheduler: Optional[str] = None,
) -> BuiltApplication:
    """Compile, expand, (optionally) profile, map and verify in one call.

    ``profile_iterations > 0`` enables the measured-cost placement;
    supply ``rewind`` so the profiling run can restore stream sources.

    ``cache`` (a :class:`~repro.serve.cache.CompileCache`) routes the
    compile stages through a content-addressed artefact cache — an
    unchanged (source, table, architecture) triple rebuilds for free.
    Profiled or retuned builds bypass it: measured costs and
    ``comm_factor`` shape the mapping but not the cache key.
    """
    if (
        cache is not None
        and profile_iterations == 0
        and profile_args is None
        and comm_factor == 1.0
        and scheduler is None
    ):
        cached = cache.build(source, table, arch, entry=entry)
        report = check_deadlock_freedom(cached.mapping)
        return BuiltApplication(
            cached.compiled, cached.graph, cached.mapping, report,
            None, table, costs,
        )
    compiled = compile_source(source, table, entry=entry)
    graph = expand(compiled.ir, table)
    prof = None
    if profile_iterations > 0 or profile_args is not None:
        prof = profile(
            graph,
            table,
            max_iterations=profile_iterations or 2,
            args=profile_args,
            rewind=rewind,
        )
    mapping = map_onto(graph, arch, profile=prof, comm_factor=comm_factor,
                       scheduler=scheduler)
    report = check_deadlock_freedom(mapping)
    return BuiltApplication(compiled, graph, mapping, report, prof, table, costs)
