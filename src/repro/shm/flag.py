"""A lock-free one-byte stop flag in shared memory.

``multiprocessing.Event`` serialises every ``is_set()`` and ``set()``
through an inter-process semaphore.  A worker that dies — in particular
one SIGKILLed by the chaos suite — while it happens to hold that
semaphore poisons it for every surviving process: the parent's eventual
``stop_event.set()`` blocks forever on a lock nobody will ever release
(the beater thread in :mod:`repro.faults.supervisor` documents the same
hazard).

A shared *byte* has no lock to poison.  ``set()`` is one aligned store,
``is_set()`` one load, and the flag only ever transitions ``0 -> 1``,
so there is nothing to race: any interleaving of loads and the single
monotonic store is correct.  This is the same single-writer assumption
the :class:`~repro.shm.ring.Ring` counters and the fault supervisor's
``HealthBoard`` already rely on.
"""

from __future__ import annotations

import os
import time
from typing import Optional

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

from .ring import RingError

__all__ = ["StopFlag"]


class StopFlag:
    """SIGKILL-tolerant replacement for a ``multiprocessing.Event``.

    Picklable: crossing a process boundary ships only the segment name;
    each process (re-)attaches its own mapping lazily.  The *creator*
    owns the final :meth:`unlink`.  Once the segment is gone,
    :meth:`is_set` reports ``True`` — a vanished flag means the run is
    over, and late pollers must stop, not crash.
    """

    __slots__ = ("name", "_segment", "_pid")

    def __init__(self, name: Optional[str] = None):
        if _shared_memory is None:  # pragma: no cover
            raise RingError("POSIX shared memory is unavailable on this host")
        self._segment = None
        self._pid: Optional[int] = None
        if name is None:
            segment = _shared_memory.SharedMemory(create=True, size=1)
            segment.buf[0] = 0
            self.name = segment.name
            self._segment = segment
            self._pid = os.getpid()
        else:
            self.name = name

    # -- pickling: ship the name, re-attach lazily ----------------------------

    def __getstate__(self):
        return self.name

    def __setstate__(self, state):
        self.name = state
        self._segment = None
        self._pid = None

    def _buf(self):
        if self._segment is None or self._pid != os.getpid():
            segment = _shared_memory.SharedMemory(name=self.name)
            self._segment = segment
            self._pid = os.getpid()
        return self._segment.buf

    # -- the Event surface the kernels rely on --------------------------------

    def is_set(self) -> bool:
        try:
            return self._buf()[0] != 0
        except FileNotFoundError:
            return True

    def set(self) -> None:
        try:
            self._buf()[0] = 1
        except FileNotFoundError:
            pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Poll until set (2 ms cadence); no shared lock, no poisoning."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while not self.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.002)
        return True

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._segment is not None:
            try:
                self._segment.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass
            self._segment = None
            self._pid = None

    def unlink(self) -> None:
        """Remove the segment (idempotent; creator-owned)."""
        self.close()
        try:
            segment = _shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            return
        # Fresh attach registered the name with the resource tracker and
        # unlink() unregisters it — balanced, same idiom as RingHandle.
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - lost the race
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self.is_set() else "clear"
        return f"<StopFlag {self.name} {state}>"
