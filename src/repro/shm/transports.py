"""Built-in transports: the ``queue`` fallback and the ``ring`` data plane."""

from __future__ import annotations

from typing import Any, Dict, Optional

from .batch import BatchPolicy
from .channel import RingChannel
from .registry import EdgeSpec, Transport, register_transport

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["QueueTransport", "RingTransport"]


@register_transport
class QueueTransport(Transport):
    """The historical path: one bounded ``multiprocessing.Queue`` per edge.

    Accepts every edge and every picklable payload; this is the
    catch-all the fallback chain bottoms out on.
    """

    name = "queue"
    description = "bounded multiprocessing.Queue per edge (pickle)"

    def channel_for(
        self, spec: EdgeSpec, ctx: Any, *,
        queue_size: int, options: Dict[str, Any],
    ) -> Optional[Any]:
        return ctx.Queue(maxsize=queue_size)


@register_transport
class RingTransport(Transport):
    """Preallocated shared-memory ring with packet batching per edge.

    Options (all optional, read from the backend's ``options`` dict):

    * ``ring_slots`` — power-of-two slot count (default 64);
    * ``ring_slot_bytes`` — payload bytes per slot (default 16384);
    * ``batch_policy`` — a :class:`~repro.shm.batch.BatchPolicy`; the
      backend passes an *eager* policy when a latency budget is
      attached, so batching never delays a deadline.
    """

    name = "ring"
    description = "shared-memory seqlock ring, batched tag-codec slots"
    shared_memory = True
    batching = True
    preallocated = True

    @classmethod
    def available(cls) -> bool:
        return _shared_memory is not None

    def channel_for(
        self, spec: EdgeSpec, ctx: Any, *,
        queue_size: int, options: Dict[str, Any],
    ) -> Optional[Any]:
        slots = int(options.get("ring_slots", 64))
        slot_bytes = int(options.get("ring_slot_bytes", 16384))
        policy = options.get("batch_policy")
        if policy is not None and not isinstance(policy, BatchPolicy):
            raise TypeError(
                f"batch_policy must be a BatchPolicy, got {type(policy)!r}"
            )
        return RingChannel(
            slots=slots,
            slot_bytes=slot_bytes,
            policy=policy,
            label=f"{spec.src}->{spec.dst}",
        )
