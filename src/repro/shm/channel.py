"""RingChannel: a queue-compatible channel over a shared-memory ring.

The channel speaks the same protocol as the bounded queues the process
kernel already uses — ``put(value, timeout)`` raising ``queue.Full``,
``get(timeout)`` / ``get_nowait()`` raising ``queue.Empty`` — so the
generated executive and the fault supervisor run on it unchanged.  Under
the hood every value takes one of three encodings into a fixed-size
slot:

* **codec** — the pickle-free tag codec of :mod:`repro.net.codec`
  (scalars, tuples/lists/dicts, numpy arrays, executive tokens);
* **pickle** — the fallback for exotic-but-picklable values, keeping
  parity with what a ``multiprocessing.Queue`` edge would accept;
* **overflow** — payloads larger than a slot are parked in a one-shot
  shared-memory segment and the slot carries only a descriptor, so the
  ring itself never allocates per packet.

Small codec/pickle packets additionally coalesce into batched frames
under the channel's :class:`~repro.shm.batch.BatchPolicy`; the consumer
splits a batch once and then drains it from a local inbox without
touching shared state again — the "iterate batches without re-entering
the scheduler per packet" half of the bargain.

Single-producer/single-consumer is assumed per channel (one process
graph edge has exactly one source thread and one destination thread);
``pending_owner`` records the producer thread so the kernel's
flush-at-blocking-point sweep never writes a channel from the wrong
thread.
"""

from __future__ import annotations

import os
import pickle
import queue
import struct
import threading
import time
from typing import Any, List, Optional, Set, Tuple

from ..net.codec import CodecError, encode, encoded_size
from ..net.codec import decode as codec_decode
from .batch import (
    BATCH_OVERHEAD,
    ENTRY_OVERHEAD,
    BatchPolicy,
    frame_entries,
    split_entries,
)
from .ring import Ring, RingError, RingHandle, create_ring

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "F_CODEC",
    "F_PICKLE",
    "F_OVERFLOW",
    "F_BATCH",
    "ChannelError",
    "RingChannel",
]

# Slot / batch-entry flags (batch entries use only the low byte).
F_CODEC = 0x01     # payload is a tag-codec frame
F_PICKLE = 0x02    # payload is a pickle (exotic value fallback)
F_OVERFLOW = 0x04  # payload is an overflow descriptor, not the value
F_BATCH = 0x08     # payload is a batch frame of (flags, payload) entries

#: How often a blocked producer/consumer re-checks the ring.  A *timed*
#: sleep, deliberately: there is no futex to park on (lock-free is the
#: whole point), and ``sleep(0)`` yield-spinning keeps the waiter on
#: the runqueue stealing quanta from the peer that has actual work —
#: measurably slower on single-core hosts than parking for a tick.
_POLL_TICK_S = 0.0005

_DESC = struct.Struct("<I")  # overflow descriptor: name length prefix

try:  # numpy is a hard dependency of the repo, but stay import-safe.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Containers the bounded array scan descends into; beyond this many
#: elements (or this depth) we assume scalar bulk and take pickle —
#: wrong only costs an array a pickle copy, never correctness.
_SCAN_WIDTH = 16
_SCAN_DEPTH = 4

#: Exact types that can never hold a buffer: the overwhelmingly common
#: case, settled with one set lookup (isinstance chains cost more than
#: the pickle they would gate).
_SCALARS = frozenset((int, float, bool, complex, str, type(None)))


def _carries_array(value: Any, depth: int = 0) -> bool:
    """Early-exit probe: does ``value`` contain a buffer worth the
    codec's zero-copy path (ndarray, bytes, bytearray, memoryview)?"""
    kind = type(value)
    if kind in _SCALARS:
        return False
    if kind is tuple or kind is list:
        if depth >= _SCAN_DEPTH:
            return False
        for element in value[:_SCAN_WIDTH]:
            if type(element) not in _SCALARS \
                    and _carries_array(element, depth + 1):
                return True
        return False
    if kind is dict:
        if depth >= _SCAN_DEPTH:
            return False
        for element in list(value.values())[:_SCAN_WIDTH]:
            if type(element) not in _SCALARS \
                    and _carries_array(element, depth + 1):
                return True
        return False
    if isinstance(value, (bytes, bytearray, memoryview)):
        return True
    if _np is not None and isinstance(
        value, (_np.ndarray, _np.generic)
    ):
        return True
    inner = getattr(value, "value", None)  # supervisor Packet and kin
    if inner is not None and type(value).__module__.startswith("repro."):
        return _carries_array(inner, depth + 1)
    return False


class ChannelError(RingError):
    """A value could not cross the ring channel."""


def _unlink_segment(name: str) -> None:
    """Best-effort unlink of one named segment (idempotent)."""
    if _shared_memory is None:  # pragma: no cover
        return
    try:
        segment = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    except Exception:  # pragma: no cover - platform oddities
        return
    # Attach registered the name; unlink() unregisters it — balanced,
    # so no explicit untrack (a double unregister makes the tracker
    # daemon print KeyError tracebacks).
    try:
        segment.close()
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost race
        pass


class RingChannel:
    """One intra-host edge over a preallocated shared-memory ring."""

    def __init__(
        self,
        handle: Optional[RingHandle] = None,
        *,
        slots: int = 64,
        slot_bytes: int = 16384,
        policy: Optional[BatchPolicy] = None,
        label: str = "",
    ):
        if handle is None:
            handle = create_ring(slots, slot_bytes)
            self._creator = True
        else:
            self._creator = False
        self.handle = handle
        self.label = label
        self.policy = policy or BatchPolicy()
        # A batch frame must fit one slot alongside its framing.
        self._batch_room = handle.slot_bytes - BATCH_OVERHEAD
        self._reset_process_state()

    # -- process-local state ---------------------------------------------------

    def _reset_process_state(self) -> None:
        self._pid: Optional[int] = None
        self._ring: Optional[Ring] = None
        #: Producer side: encoded-but-unflushed (flags, payload) entries.
        self._pending: List[Tuple[int, bytes]] = []
        self._pending_bytes = 0
        self._pending_since = 0.0
        #: Thread ident of the (single) producer thread, once known.
        self.pending_owner: Optional[int] = None
        #: Consumer side: decoded values from an already-split batch.
        self._inbox: List[Any] = []
        self._inbox_pos = 0
        #: Overflow segments created here and possibly never claimed.
        self._owned_overflow: Set[str] = set()
        # Telemetry (process-local, best effort).
        self.sent_packets = 0
        self.sent_slots = 0
        self.sent_batches = 0
        self.sent_overflows = 0
        self.received_packets = 0

    def __getstate__(self):
        return (self.handle, self.policy, self.label)

    def __setstate__(self, state):
        self.handle, self.policy, self.label = state
        self._creator = False
        self._batch_room = self.handle.slot_bytes - BATCH_OVERHEAD
        self._reset_process_state()

    @property
    def ring(self) -> Ring:
        """This process's attached ring view (fork/spawn safe)."""
        if self._ring is None or self._pid != os.getpid():
            self._ring = Ring(self.handle)
            self._pid = os.getpid()
        return self._ring

    # -- encoding --------------------------------------------------------------

    def _encode(self, value: Any) -> Tuple[int, List[Any], int]:
        """``(flags, buffers, total_bytes)`` for one value.

        The tag codec earns its keep on ndarrays (the payload bytes go
        into the slot without a pickle copy); on small scalar payloads
        its pure-Python traversal costs an order of magnitude more than
        C pickle, so array-free values take the pickle path.
        """
        if _carries_array(value):
            try:
                buffers = encode(value)
                return F_CODEC, buffers, encoded_size(buffers)
            except CodecError:
                pass
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return F_PICKLE, [blob], len(blob)

    def _spill(self, buffers: List[Any], size: int) -> Tuple[bytes, str]:
        """Park an oversized payload in its own segment.

        Returns ``(descriptor, segment_name)``.  Ownership transfers to
        the consumer (it unlinks after copying); :meth:`release`
        reclaims segments whose consumer never attached, exactly like
        the kernel's large-array transfer path.
        """
        if _shared_memory is None:  # pragma: no cover
            raise ChannelError("shared memory unavailable for overflow")
        segment = _shared_memory.SharedMemory(create=True, size=max(1, size))
        pos = 0
        for part in buffers:
            view = part if isinstance(part, memoryview) else memoryview(part)
            if view.format != "B" or view.ndim != 1:
                view = view.cast("B")
            n = view.nbytes
            if n:
                segment.buf[pos:pos + n] = view
            pos += n
        name = segment.name
        segment.close()
        self._owned_overflow.add(name)
        self.sent_overflows += 1
        descriptor = _DESC.pack(len(name.encode("ascii"))) \
            + name.encode("ascii") + struct.pack("<Q", size)
        return descriptor, name

    def _fetch_overflow(self, descriptor: bytes) -> bytes:
        name_len = _DESC.unpack_from(descriptor, 0)[0]
        name = descriptor[_DESC.size:_DESC.size + name_len].decode("ascii")
        (size,) = struct.unpack_from("<Q", descriptor, _DESC.size + name_len)
        try:
            segment = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise ChannelError(
                f"overflow segment {name!r} vanished before the consumer "
                "attached (sender torn down mid-run?)"
            ) from None
        try:
            blob = bytes(segment.buf[:size])
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double reclaim
                pass
        return blob

    def _decode(self, flags: int, payload: bytes) -> Any:
        if flags & F_OVERFLOW:
            payload = self._fetch_overflow(payload)
            flags &= ~F_OVERFLOW
        if flags == F_CODEC:
            return codec_decode(payload)
        if flags == F_PICKLE:
            return pickle.loads(payload)
        raise ChannelError(f"slot carries unknown flags {flags:#x}")

    # -- producer --------------------------------------------------------------

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def try_flush(self) -> bool:
        """Write the pending batch into the ring; True when drained."""
        pending = self._pending
        if not pending:
            return True
        if len(pending) == 1:
            flags, payload = pending[0]
            pushed = self.ring.try_push([payload], len(payload), flags)
        else:
            frame = frame_entries(pending)
            pushed = self.ring.try_push([frame], len(frame), F_BATCH)
            if pushed:
                self.sent_batches += 1
        if pushed:
            self.sent_slots += 1
            pending.clear()
            self._pending_bytes = 0
        return pushed

    def _flush_until(self, deadline: Optional[float]) -> bool:
        while not self.try_flush():
            if deadline is None or time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_TICK_S)
        return True

    def _push_single_until(
        self, buffers: List[Any], size: int, flags: int,
        deadline: Optional[float],
    ) -> bool:
        while not self.ring.try_push(buffers, size, flags):
            if deadline is None or time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_TICK_S)
        self.sent_slots += 1
        return True

    def _note_owner(self) -> None:
        self.pending_owner = threading.get_ident()

    def put(self, value: Any, timeout: Optional[float] = None) -> None:
        """Enqueue ``value``; ``queue.Full`` after ``timeout`` seconds.

        Small packets may be *accepted into the pending batch* rather
        than written through — the kernel flushes pending batches at
        every blocking point and at producer-thread exit, which is what
        bounds their residency.  ``queue.Full`` is only raised with the
        value NOT enqueued, so a retry loop never duplicates a packet.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        self._note_owner()
        flags, buffers, size = self._encode(value)
        entry_bytes = ENTRY_OVERHEAD + size
        batchable = (
            size <= self.policy.small_max
            and entry_bytes + BATCH_OVERHEAD <= self.handle.slot_bytes
        )
        if not batchable:
            # Order is sacred: everything pending goes first.
            if not self._flush_until(deadline):
                raise queue.Full
            spilled: Optional[str] = None
            if size > self.handle.slot_bytes:
                descriptor, spilled = self._spill(buffers, size)
                buffers, size, flags = (
                    [descriptor], len(descriptor), flags | F_OVERFLOW
                )
            if not self._push_single_until(buffers, size, flags, deadline):
                if spilled is not None:
                    # The descriptor never made it into a slot: reclaim
                    # the segment now so a put retry does not stack one
                    # orphan per attempt until shutdown.
                    self._owned_overflow.discard(spilled)
                    _unlink_segment(spilled)
                raise queue.Full
            self.sent_packets += 1
            return
        payload = b"".join(
            bytes(b) if not isinstance(b, (bytes, bytearray)) else b
            for b in buffers
        )
        if (self._pending
                and self._pending_bytes + entry_bytes > self._batch_room):
            # No room to coalesce: the pending frame must drain first.
            if not self._flush_until(deadline):
                raise queue.Full
        if not self._pending:
            self._pending_since = time.monotonic()
        self._pending.append((flags, payload))
        self._pending_bytes += entry_bytes
        self.sent_packets += 1
        if self.policy.should_flush(
            self._pending_bytes, len(self._pending),
            time.monotonic() - self._pending_since,
        ):
            # Best effort: a full ring leaves the batch pending for the
            # kernel's next blocking-point sweep.
            self.try_flush()

    def put_nowait(self, value: Any) -> None:
        """Immediate put (the supervisor's re-dispatch path)."""
        self._note_owner()
        if not self.try_flush():
            raise queue.Full
        flags, buffers, size = self._encode(value)
        spilled: Optional[str] = None
        if size > self.handle.slot_bytes:
            descriptor, spilled = self._spill(buffers, size)
            buffers, size, flags = (
                [descriptor], len(descriptor), flags | F_OVERFLOW
            )
        if not self.ring.try_push(buffers, size, flags):
            if spilled is not None:
                self._owned_overflow.discard(spilled)
                _unlink_segment(spilled)
            raise queue.Full
        self.sent_packets += 1
        self.sent_slots += 1

    # -- consumer --------------------------------------------------------------

    def _pop_inbox(self) -> Any:
        value = self._inbox[self._inbox_pos]
        self._inbox_pos += 1
        if self._inbox_pos >= len(self._inbox):
            self._inbox.clear()
            self._inbox_pos = 0
        self.received_packets += 1
        return value

    def _pop_slot(self) -> bool:
        """Pop one slot into the inbox; False when the ring is empty."""
        item = self.ring.try_pop()
        if item is None:
            return False
        flags, payload = item
        if flags & F_BATCH:
            for entry_flags, entry_payload in split_entries(payload):
                self._inbox.append(self._decode(entry_flags, entry_payload))
        else:
            self._inbox.append(self._decode(flags, payload))
        return True

    def get(self, timeout: Optional[float] = None) -> Any:
        if self._inbox_pos < len(self._inbox):
            return self._pop_inbox()
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._pop_slot():
            if deadline is not None and time.monotonic() >= deadline:
                raise queue.Empty
            time.sleep(_POLL_TICK_S)
        return self._pop_inbox()

    def get_nowait(self) -> Any:
        if self._inbox_pos < len(self._inbox):
            return self._pop_inbox()
        if not self._pop_slot():
            raise queue.Empty
        return self._pop_inbox()

    def qsize(self) -> int:
        """Occupied slots plus locally buffered packets (approximate)."""
        return len(self.ring) + (len(self._inbox) - self._inbox_pos) \
            + len(self._pending)

    # -- lifecycle -------------------------------------------------------------

    def release(self) -> None:
        """Reclaim overflow segments whose consumer never attached."""
        if _shared_memory is None:  # pragma: no cover
            return
        names, self._owned_overflow = self._owned_overflow, set()
        for name in names:
            try:
                segment = _shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue  # claimed by the consumer: the common case
            except Exception:  # pragma: no cover - platform oddities
                continue
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - lost race
                pass

    def close(self) -> None:
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def destroy(self) -> None:
        """Unlink the ring segment (creator-side, end of run)."""
        self.close()
        self.handle.unlink()

    def __repr__(self) -> str:
        where = f" {self.label}" if self.label else ""
        return f"<RingChannel{where} {self.handle!r}>"
