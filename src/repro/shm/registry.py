"""Transport registry: one intra-host channel story per registered name.

Mirrors the execution-backend and codegen-target registries: a
:class:`Transport` subclass registers itself under a short name, the
processes backend resolves the requested name at run time, and channel
selection happens *per edge* — a transport may decline an edge (return
``None`` from :meth:`Transport.channel_for`), in which case the edge
falls back down the chain, ultimately to the ``queue`` transport, which
accepts everything a ``multiprocessing.Queue`` accepts.  Adding a
transport therefore never touches the kernel or the backend: register a
class, and every intra-host edge can ride it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Type

__all__ = [
    "EdgeSpec",
    "Transport",
    "TransportError",
    "ChannelSet",
    "register_transport",
    "get_transport",
    "transport_names",
    "list_transports",
    "transport_capabilities",
    "build_channels",
    "DEFAULT_TRANSPORT",
    "TRANSPORT_ENV",
]

#: Environment override for the intra-host transport of the processes
#: backend (same idiom as ``REPRO_MP_START_METHOD``): CI legs set
#: ``REPRO_TRANSPORT=ring`` to certify the ring data plane everywhere.
TRANSPORT_ENV = "REPRO_TRANSPORT"

DEFAULT_TRANSPORT = "queue"


class TransportError(RuntimeError):
    """Unknown or unavailable transport."""


@dataclass(frozen=True)
class EdgeSpec:
    """What a transport may inspect when claiming an edge."""

    edge: str              # channel key in the generated executive (e7)
    src: str               # source process id
    dst: str               # destination process id
    src_processor: str
    dst_processor: str


class Transport:
    """One way to move packets across an intra-host processor boundary.

    Subclasses register with :func:`register_transport` and implement
    :meth:`channel_for`, returning a queue-compatible channel object
    (``put``/``put_nowait``/``get``/``get_nowait`` with ``queue.Full``/
    ``queue.Empty`` semantics, picklable across the start method) — or
    ``None`` to decline the edge and let the fallback chain handle it.
    """

    name: str = "?"
    description: str = ""
    #: Capability flags surfaced by :func:`transport_capabilities`.
    shared_memory = False
    batching = False
    preallocated = False

    @classmethod
    def available(cls) -> bool:
        return True

    def channel_for(
        self, spec: EdgeSpec, ctx: Any, *,
        queue_size: int, options: Dict[str, Any],
    ) -> Optional[Any]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Transport]] = {}


def register_transport(cls: Type[Transport]) -> Type[Transport]:
    """Class decorator adding a :class:`Transport` to the registry."""
    if not cls.name or cls.name == "?":
        raise ValueError(f"transport class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"transport {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_transport(name: str) -> Transport:
    """Instantiate the transport registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise TransportError(
            f"unknown transport {name!r}; available: "
            f"{', '.join(transport_names())}"
        ) from None
    if not cls.available():
        raise TransportError(
            f"transport {name!r} is not available on this host"
        )
    return cls()


def transport_names() -> List[str]:
    """Registered transport names, sorted."""
    return sorted(_REGISTRY)


def list_transports() -> Dict[str, str]:
    """Mapping of transport name -> one-line description."""
    return {name: _REGISTRY[name].description for name in transport_names()}


def transport_capabilities() -> Dict[str, Dict[str, bool]]:
    """Per-transport capability flags, in sorted-name order."""
    out: Dict[str, Dict[str, bool]] = {}
    for name in transport_names():
        cls = _REGISTRY[name]
        out[name] = {
            "shared_memory": bool(cls.shared_memory),
            "batching": bool(cls.batching),
            "preallocated": bool(cls.preallocated),
            "available": bool(cls.available()),
        }
    return out


class ChannelSet:
    """The channels of one run, with creator-side teardown.

    ``channels`` maps edge keys to channel objects; ``by_transport``
    records which transport claimed each edge (introspection + tests).
    :meth:`destroy` unlinks whatever the transports preallocated — the
    parent calls it after the workers have joined.
    """

    def __init__(self) -> None:
        self.channels: Dict[str, Any] = {}
        self.by_transport: Dict[str, str] = {}

    def add(self, spec: EdgeSpec, transport_name: str, channel: Any) -> None:
        self.channels[spec.edge] = channel
        self.by_transport[spec.edge] = transport_name

    def destroy(self) -> None:
        for channel in self.channels.values():
            destroy = getattr(channel, "destroy", None)
            if destroy is not None:
                try:
                    destroy()
                except Exception:  # pragma: no cover - teardown best effort
                    pass


def build_channels(
    name: str,
    specs: Sequence[EdgeSpec],
    ctx: Any,
    *,
    queue_size: int = 4,
    options: Optional[Dict[str, Any]] = None,
) -> ChannelSet:
    """Create one channel per edge via the ``name`` transport.

    Edges the requested transport declines fall back to the ``queue``
    transport (the catch-all for unsized/exotic payloads), so a run
    always gets a complete channel map.
    """
    options = dict(options or {})
    chain = [get_transport(name)]
    if name != DEFAULT_TRANSPORT:
        chain.append(get_transport(DEFAULT_TRANSPORT))
    out = ChannelSet()
    for spec in specs:
        for transport in chain:
            channel = transport.channel_for(
                spec, ctx, queue_size=queue_size, options=options
            )
            if channel is not None:
                out.add(spec, transport.name, channel)
                break
        else:  # pragma: no cover - queue accepts everything
            raise TransportError(
                f"no transport accepted edge {spec.edge!r} "
                f"({spec.src} -> {spec.dst})"
            )
    return out
