"""Seeded multi-process stress driver for the shared-memory ring.

Two scenarios, both deterministic in ``seed``:

* ``exchange`` — a producer *process* pushes a seeded mix of payload
  sizes (empty, batchable-small, slot-sized, and overflow-large) through
  a :class:`~repro.shm.channel.RingChannel` while the consumer drains
  and re-derives every payload from the seed — any reorder, drop,
  duplicate or corruption fails the checksum.  The ring is deliberately
  tiny so the exchange wraps the slot array hundreds of times.
* ``slow_reader`` — a fault-injected consumer that *violates* the SPSC
  contract: it releases the head slot before copying it, dawdles, and
  only then verifies the seqlock stamps.  With a fast producer the slot
  is rewritten in the window, and the verdict counts how many times
  :class:`~repro.shm.ring.TornRead` fired — the stress suite asserts it
  does, i.e. the stamps actually catch torn reads.

Runnable standalone (CI uses this under fork *and* spawn)::

    python -m repro.shm.stress --scenario exchange --seed 7 --packets 400
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import queue
import sys
import time
from typing import Any, Dict, List, Optional

from .batch import BatchPolicy
from .channel import RingChannel
from .ring import Ring, TornRead, create_ring

__all__ = ["payload_for", "run_exchange", "run_slow_reader", "main"]

_SIZE_BUCKETS = (0, 1, 17, 200, 900, 4000, 16384, 16385, 70000)


def payload_for(seed: int, index: int, size: int) -> bytes:
    """The deterministic payload both endpoints can derive independently."""
    out = bytearray()
    counter = 0
    stamp = f"{seed}:{index}:{size}".encode()
    while len(out) < size:
        out += hashlib.sha256(stamp + counter.to_bytes(4, "little")).digest()
        counter += 1
    return bytes(out[:size])


def _plan_sizes(seed: int, packets: int) -> List[int]:
    """Seeded size schedule; hits every bucket including overflow."""
    sizes = []
    state = seed & 0xFFFFFFFF or 1
    for _ in range(packets):
        # xorshift32: tiny, deterministic, no random-module state leaks.
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        sizes.append(_SIZE_BUCKETS[state % len(_SIZE_BUCKETS)])
    return sizes


def _producer_main(channel: RingChannel, seed: int, packets: int) -> None:
    for index, size in enumerate(_plan_sizes(seed, packets)):
        value = (index, payload_for(seed, index, size))
        while True:
            try:
                channel.put(value, timeout=5.0)
                break
            except queue.Full:
                continue
        # A short stall every so often lets the consumer race ahead and
        # exercises the empty boundary, not just the full one.
        if index % 97 == 96:
            time.sleep(0.001)
    deadline = time.monotonic() + 30.0
    while channel.has_pending:
        if channel.try_flush():
            break
        if time.monotonic() >= deadline:
            raise RuntimeError("producer could not drain its pending batch")
        time.sleep(0.0005)
    # No release() here: in-flight overflow descriptors still sit in
    # unconsumed slots, and the consumer asserts it drains everything.
    channel.close()


def run_exchange(
    seed: int = 7,
    packets: int = 400,
    *,
    slots: int = 8,
    slot_bytes: int = 512,
    start_method: Optional[str] = None,
    eager: bool = False,
) -> Dict[str, Any]:
    """Producer process vs consumer (this process) over a tiny ring."""
    ctx = (multiprocessing.get_context(start_method)
           if start_method else multiprocessing.get_context())
    policy = BatchPolicy(small_max=min(256, slot_bytes // 2), eager=eager)
    channel = RingChannel(slots=slots, slot_bytes=slot_bytes, policy=policy,
                          label="stress")
    verdict: Dict[str, Any] = {
        "scenario": "exchange",
        "seed": seed,
        "packets": packets,
        "slots": slots,
        "slot_bytes": slot_bytes,
        "start_method": ctx.get_start_method(),
        "received": 0,
        "mismatches": 0,
        "torn": 0,
        "ok": False,
    }
    proc = ctx.Process(
        target=_producer_main, args=(channel, seed, packets),
        name="repro-shm-stress-producer", daemon=True,
    )
    proc.start()
    sizes = _plan_sizes(seed, packets)
    try:
        for index, size in enumerate(sizes):
            try:
                got = channel.get(timeout=30.0)
            except queue.Empty:
                verdict["error"] = f"timed out waiting for packet {index}"
                return verdict
            except TornRead as exc:
                verdict["torn"] += 1
                verdict["error"] = str(exc)
                return verdict
            verdict["received"] += 1
            expect = (index, payload_for(seed, index, size))
            if got != expect:
                verdict["mismatches"] += 1
        proc.join(timeout=30.0)
        verdict["producer_exitcode"] = proc.exitcode
        verdict["ring_occupancy_after"] = len(channel.ring)
        verdict["ok"] = (
            verdict["mismatches"] == 0
            and verdict["received"] == packets
            and proc.exitcode == 0
            and len(channel.ring) == 0
        )
        # Wraparound proof: the head counter must have lapped the slot
        # array many times for the run to mean anything.
        verdict["laps"] = channel.ring.head // slots
        return verdict
    finally:
        if proc.is_alive():  # pragma: no cover - failure path
            proc.terminate()
            proc.join(timeout=5.0)
        channel.close()
        channel.destroy()


def _fast_producer_main(handle, packets: int) -> None:
    ring = Ring(handle)
    payload = b"\xAB" * 48
    pushed = 0
    while pushed < packets:
        if ring.try_push([payload], len(payload), 1):
            pushed += 1
        # No backoff: the point is to rewrite slots as fast as possible.
    ring.close()


def run_slow_reader(
    seed: int = 7,
    packets: int = 5000,
    *,
    slots: int = 4,
    slot_bytes: int = 64,
    start_method: Optional[str] = None,
    dawdle_s: float = 0.0005,
) -> Dict[str, Any]:
    """Fault-injected reader: release-before-copy must trip TornRead."""
    ctx = (multiprocessing.get_context(start_method)
           if start_method else multiprocessing.get_context())
    handle = create_ring(slots, slot_bytes)
    verdict: Dict[str, Any] = {
        "scenario": "slow_reader",
        "seed": seed,
        "packets": packets,
        "slots": slots,
        "start_method": ctx.get_start_method(),
        "reads": 0,
        "torn": 0,
        "ok": False,
    }
    proc = ctx.Process(
        target=_fast_producer_main, args=(handle, packets),
        name="repro-shm-stress-writer", daemon=True,
    )
    ring = Ring(handle)
    proc.start()
    try:
        deadline = time.monotonic() + 30.0
        while ring.head < packets and time.monotonic() < deadline:
            head = ring.head
            if head == ring.tail:
                continue
            # THE VIOLATION: release the slot first, then dawdle, then
            # read and verify.  The producer is free to rewrite the slot
            # inside the dawdle window, so the stamps must mismatch.
            ring.advance_head()
            time.sleep(dawdle_s)
            seq0, length, _flags, _payload, seq1 = ring.read_slot(head)
            verdict["reads"] += 1
            try:
                ring.verify_slot(head, seq0, length, seq1)
            except TornRead:
                verdict["torn"] += 1
        proc.join(timeout=10.0)
        verdict["ok"] = verdict["torn"] > 0
        return verdict
    finally:
        if proc.is_alive():  # pragma: no cover - failure path
            proc.terminate()
            proc.join(timeout=5.0)
        ring.close()
        handle.unlink()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shm.stress",
        description="seeded multi-process stress driver for the ring",
    )
    parser.add_argument("--scenario", choices=("exchange", "slow_reader"),
                        default="exchange")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--packets", type=int, default=400)
    parser.add_argument("--slots", type=int, default=8)
    parser.add_argument("--slot-bytes", type=int, default=512)
    parser.add_argument("--start-method", default=None,
                        choices=(None, "fork", "spawn", "forkserver"))
    parser.add_argument("--eager", action="store_true",
                        help="eager batch policy (flush every append)")
    args = parser.parse_args(argv)
    if args.scenario == "exchange":
        verdict = run_exchange(
            args.seed, args.packets, slots=args.slots,
            slot_bytes=args.slot_bytes, start_method=args.start_method,
            eager=args.eager,
        )
    else:
        verdict = run_slow_reader(
            args.seed, max(args.packets, 1000), slots=4, slot_bytes=64,
            start_method=args.start_method,
        )
    json.dump(verdict, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0 if verdict["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
