"""The shared-memory SPSC ring buffer: preallocated slots, seqlock stamps.

One :class:`Ring` is a single POSIX shared-memory segment laid out as a
small header plus a power-of-two array of fixed-size slots:

.. code-block:: text

    offset 0     +--------------------------------------------------+
                 | head counter (u64, consumer-owned)   | 56B pad   |
    offset 64    | tail counter (u64, producer-owned)   | 56B pad   |
    offset 128   | slot 0: seq0 u64 | len u32 | flags u32 | payload |
                 |         ...                            | seq1 u64 |
                 | slot 1: ...                                      |
                 +--------------------------------------------------+

Head and tail are free-running modulo 2**64 counters (the slot index is
``counter % slots``, which is why ``slots`` must be a power of two: the
rotation stays aligned across the counter wrap).  The ring is *empty*
when ``head == tail`` and *full* when ``tail - head == slots``.

The publish protocol is seqlock-flavoured single-producer /
single-consumer:

* the **producer** owns ``tail``: it stamps ``seq0 = tail + 1``, writes
  the payload, length and flags, stamps ``seq1 = tail + 1``, and only
  then advances ``tail`` — the tail store is the publish, so a producer
  killed mid-write leaves an *invisible* slot, never a torn one;
* the **consumer** owns ``head``: it reads the slot, copies the payload
  out, verifies ``seq0 == seq1 == head + 1`` (a mismatch raises
  :class:`TornRead`), and only then advances ``head`` — the head store
  is what releases the slot for reuse.

Counter and stamp stores are single aligned 8-byte writes through a
``memoryview`` (one C ``memcpy``), the same lock-free single-writer
assumption the fault supervisor's ``HealthBoard`` already relies on.
The stamps cannot trip in a *correct* SPSC exchange; they exist to turn
protocol violations — a second producer, a reader that releases a slot
before copying it, stray writes through the raw buffer — into loud
:class:`TornRead` errors instead of silent corruption, and the stress
suite in ``tests/shm/`` provokes exactly those violations.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

__all__ = [
    "RingError",
    "RingFull",
    "TornRead",
    "RingHandle",
    "Ring",
    "HEADER_BYTES",
    "SLOT_OVERHEAD",
    "DEFAULT_SLOTS",
    "DEFAULT_SLOT_BYTES",
]

#: Header: one cache line per counter so producer and consumer stores
#: never share a line (false sharing would not break correctness, only
#: throughput, but cache lines are cheap).
_HEAD_OFF = 0
_TAIL_OFF = 64
HEADER_BYTES = 128

#: Per-slot metadata: seq0 u64 + length u32 + flags u32 before the
#: payload, seq1 u64 after it.
_SLOT_META = 16
_SLOT_FOOT = 8
SLOT_OVERHEAD = _SLOT_META + _SLOT_FOOT

DEFAULT_SLOTS = 64
DEFAULT_SLOT_BYTES = 16384

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_MASK64 = (1 << 64) - 1


class RingError(RuntimeError):
    """A structural ring failure (bad geometry, corrupt header...)."""


class RingFull(RingError):
    """Internal marker; the public API returns False / raises queue.Full."""


class TornRead(RingError):
    """A slot's seqlock stamps do not match the expected cycle.

    In a correct single-producer/single-consumer exchange this cannot
    happen — the tail store publishes a fully written slot and the head
    store releases a fully read one.  Seeing it means the protocol was
    violated: two producers raced a slot, a reader released a slot
    before copying it (the fault-injected slow reader of the stress
    suite), or something scribbled on the segment.
    """


def _check_geometry(slots: int, slot_bytes: int) -> None:
    if slots <= 0 or slots & (slots - 1):
        raise RingError(
            f"slot count must be a power of two (got {slots}): the slot "
            "index is counter % slots and must stay aligned across the "
            "u64 counter wrap"
        )
    if slot_bytes < 64:
        raise RingError(f"slot payload must be >= 64 bytes (got {slot_bytes})")


class RingHandle:
    """Picklable descriptor of a ring segment (name + geometry).

    Crossing a process boundary ships only this; each process attaches
    its own mapping lazily.  The *creator* of the segment is responsible
    for the final :meth:`unlink`.
    """

    __slots__ = ("name", "slots", "slot_bytes")

    def __init__(self, name: str, slots: int, slot_bytes: int):
        self.name = name
        self.slots = slots
        self.slot_bytes = slot_bytes

    def __getstate__(self):
        return (self.name, self.slots, self.slot_bytes)

    def __setstate__(self, state):
        self.name, self.slots, self.slot_bytes = state

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + self.slots * (SLOT_OVERHEAD + self.slot_bytes)

    def unlink(self) -> None:
        """Remove the segment (idempotent; survives a vanished name)."""
        if _shared_memory is None:  # pragma: no cover
            return
        try:
            segment = _shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            return
        # No explicit untrack here: attach registered the name with the
        # resource tracker and unlink() unregisters it — balanced.
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - lost the race
            pass

    def __repr__(self) -> str:
        return (f"<ring {self.name} {self.slots}x{self.slot_bytes}B>")


def create_ring(
    slots: int = DEFAULT_SLOTS, slot_bytes: int = DEFAULT_SLOT_BYTES
) -> RingHandle:
    """Allocate a zeroed ring segment; the caller owns the unlink.

    The creating process does not keep a mapping — endpoints (possibly
    including the creator) attach their own via :class:`Ring`.
    """
    if _shared_memory is None:  # pragma: no cover
        raise RingError("POSIX shared memory is unavailable on this host")
    _check_geometry(slots, slot_bytes)
    handle = RingHandle("?", slots, slot_bytes)
    segment = _shared_memory.SharedMemory(create=True, size=handle.nbytes)
    handle.name = segment.name
    # The segment stays registered with the (tree-wide, deduplicating)
    # resource tracker until the creator's eventual unlink unregisters
    # it; explicit per-process unregistration is a race — two processes
    # attaching and untracking concurrently double-remove from the
    # tracker's set and flood stderr with KeyError tracebacks.
    # ftruncate zero-fills: head == tail == 0, every stamp 0 (cycle
    # stamps start at 1, so a never-written slot can never verify).
    segment.close()
    return handle


class Ring:
    """One process's attached view of a ring segment.

    All methods assume the caller respects the SPSC contract: exactly
    one thread (in one process) pushes, exactly one pops.  The low-level
    ``read_slot`` / ``advance_head`` / ``force_counters`` entry points
    exist for the stress suite, which deliberately breaks the contract
    to prove the stamps catch it.
    """

    def __init__(self, handle: RingHandle):
        if _shared_memory is None:  # pragma: no cover
            raise RingError("POSIX shared memory is unavailable on this host")
        self.handle = handle
        self._segment = _shared_memory.SharedMemory(name=handle.name)
        self._buf = self._segment.buf
        self._slots = handle.slots
        self._slot_bytes = handle.slot_bytes
        self._stride = SLOT_OVERHEAD + handle.slot_bytes

    # -- counters --------------------------------------------------------------

    def _load(self, off: int) -> int:
        return _U64.unpack_from(self._buf, off)[0]

    def _store(self, off: int, value: int) -> None:
        _U64.pack_into(self._buf, off, value & _MASK64)

    @property
    def head(self) -> int:
        return self._load(_HEAD_OFF)

    @property
    def tail(self) -> int:
        return self._load(_TAIL_OFF)

    def __len__(self) -> int:
        """Occupied slots (consumer-visible)."""
        return (self.tail - self.head) & _MASK64

    @property
    def capacity(self) -> int:
        return self._slots

    @property
    def slot_bytes(self) -> int:
        return self._slot_bytes

    def force_counters(self, head: int, tail: int) -> None:
        """Test hook: park the counters anywhere (e.g. near the u64 wrap)."""
        self._store(_HEAD_OFF, head)
        self._store(_TAIL_OFF, tail)

    # -- producer --------------------------------------------------------------

    def try_push(self, buffers: List[Any], length: int, flags: int) -> bool:
        """Publish one slot from ``buffers`` (written back to back).

        Returns False when the ring is full.  ``length`` must equal the
        total byte length of ``buffers`` and fit the slot payload.
        """
        if length > self._slot_bytes:
            raise RingError(
                f"payload of {length} byte(s) exceeds the {self._slot_bytes}"
                "-byte slot; route it through the overflow side-channel"
            )
        tail = self._load(_TAIL_OFF)
        if ((tail - self._load(_HEAD_OFF)) & _MASK64) >= self._slots:
            return False
        base = HEADER_BYTES + (tail % self._slots) * self._stride
        cycle = (tail + 1) & _MASK64
        _U64.pack_into(self._buf, base, cycle)
        pos = base + _SLOT_META
        for part in buffers:
            view = part if isinstance(part, memoryview) else memoryview(part)
            if view.format != "B" or view.ndim != 1:
                view = view.cast("B")
            n = view.nbytes
            if n:
                self._buf[pos:pos + n] = view
            pos += n
        if pos - (base + _SLOT_META) != length:
            raise RingError(
                f"declared length {length} != written "
                f"{pos - (base + _SLOT_META)} byte(s)"
            )
        _U32.pack_into(self._buf, base + 8, length)
        _U32.pack_into(self._buf, base + 12, flags)
        _U64.pack_into(self._buf, base + _SLOT_META + self._slot_bytes, cycle)
        # The publish: a producer killed anywhere above this line leaves
        # the slot invisible to the consumer.
        self._store(_TAIL_OFF, tail + 1)
        return True

    # -- consumer --------------------------------------------------------------

    def read_slot(self, counter: int) -> Tuple[int, int, int, bytes, int]:
        """Raw slot contents at ``counter`` — no verification, no release.

        Returns ``(seq0, length, flags, payload_bytes, seq1)`` with the
        payload truncated to the slot size when the length field is
        corrupt (the caller verifies).  Stress-suite building block.
        """
        base = HEADER_BYTES + (counter % self._slots) * self._stride
        seq0 = _U64.unpack_from(self._buf, base)[0]
        length = _U32.unpack_from(self._buf, base + 8)[0]
        flags = _U32.unpack_from(self._buf, base + 12)[0]
        safe_len = min(length, self._slot_bytes)
        payload = bytes(self._buf[base + _SLOT_META:
                                  base + _SLOT_META + safe_len])
        seq1 = _U64.unpack_from(
            self._buf, base + _SLOT_META + self._slot_bytes
        )[0]
        return seq0, length, flags, payload, seq1

    def verify_slot(
        self, counter: int, seq0: int, length: int, seq1: int
    ) -> None:
        """Raise :class:`TornRead` unless a read of ``counter`` was clean."""
        cycle = (counter + 1) & _MASK64
        if seq0 != cycle or seq1 != cycle:
            raise TornRead(
                f"slot {counter % self._slots}: stamps ({seq0}, {seq1}) != "
                f"cycle {cycle} — the slot was rewritten during the read"
            )
        if length > self._slot_bytes:
            raise TornRead(
                f"slot {counter % self._slots}: corrupt length {length} > "
                f"slot size {self._slot_bytes}"
            )

    def advance_head(self) -> None:
        """Release the head slot for reuse (consumer-owned store)."""
        self._store(_HEAD_OFF, self._load(_HEAD_OFF) + 1)

    def try_pop(self) -> Optional[Tuple[int, bytes]]:
        """The safe consumer read: ``(flags, payload)`` or None when empty.

        Copy first, verify the stamps, and only then release the slot —
        the release is what lets the producer overwrite it, so a clean
        verify proves the copy was not torn.
        """
        head = self._load(_HEAD_OFF)
        if head == self._load(_TAIL_OFF):
            return None
        seq0, length, flags, payload, seq1 = self.read_slot(head)
        self.verify_slot(head, seq0, length, seq1)
        self._store(_HEAD_OFF, head + 1)
        return flags, payload

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._buf = None
            self._segment.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __repr__(self) -> str:
        return (f"<Ring {self.handle.name} {len(self)}/{self._slots} "
                f"slots of {self._slot_bytes}B>")
