"""Packet batching: coalesce small packets into one framed ring slot.

A batched frame is a flat byte string::

    u32 count | ( u8 flags | u32 length | payload )*

:func:`frame_entries` and :func:`split_entries` are exact inverses on
any sequence of ``(flags, payload)`` entries — the property suite in
``tests/shm/test_batch.py`` fuzzes that round trip byte-for-byte, and
strict framing (truncation, trailing garbage, oversized counts) raises
:class:`BatchError` instead of yielding a short read.

:class:`BatchPolicy` is the *flush policy* of a batching producer:

* ``eager`` — try to flush after every append; packets only coalesce
  while the ring is full (backpressure batching).  Zero added latency;
  the default wherever a latency budget is attached.
* non-eager (Nagle-flavoured) — hold small packets until the pending
  batch reaches ``max_bytes`` or ``max_packets`` or ages past
  ``max_delay_s``; the kernel additionally flushes at every blocking
  point (and when a producer thread exits), which is what bounds the
  residency of a held packet.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "BatchError",
    "BatchPolicy",
    "ENTRY_OVERHEAD",
    "BATCH_OVERHEAD",
    "frame_entries",
    "split_entries",
    "framed_size",
]

_U32 = struct.Struct("<I")
_ENTRY = struct.Struct("<BI")  # flags u8, length u32

#: Per-entry framing cost inside a batch.
ENTRY_OVERHEAD = _ENTRY.size
#: Fixed framing cost of a batch (the entry count).
BATCH_OVERHEAD = _U32.size


class BatchError(ValueError):
    """A batch frame is structurally invalid (truncated, oversized...)."""


class BatchPolicy:
    """When a batching producer flushes its pending packets.

    ``small_max`` bounds which packets batch at all: anything larger is
    written to its own slot (after flushing what is pending, so order
    is preserved).  ``max_bytes`` / ``max_packets`` / ``max_delay_s``
    are the flush triggers; ``eager`` makes every append attempt a
    flush, so coalescing only happens under backpressure.
    """

    __slots__ = ("small_max", "max_bytes", "max_packets", "max_delay_s",
                 "eager")

    def __init__(
        self,
        *,
        small_max: int = 1024,
        max_bytes: int = 8192,
        max_packets: int = 32,
        max_delay_s: float = 0.002,
        eager: bool = False,
    ):
        if small_max <= 0 or max_bytes <= 0 or max_packets <= 0:
            raise ValueError("batch policy limits must be positive")
        self.small_max = small_max
        self.max_bytes = max_bytes
        self.max_packets = max_packets
        self.max_delay_s = max_delay_s
        self.eager = eager

    def should_flush(self, pending_bytes: int, pending_count: int,
                     age_s: float) -> bool:
        return (
            self.eager
            or pending_bytes >= self.max_bytes
            or pending_count >= self.max_packets
            or age_s >= self.max_delay_s
        )

    def __getstate__(self):
        return (self.small_max, self.max_bytes, self.max_packets,
                self.max_delay_s, self.eager)

    def __setstate__(self, state):
        (self.small_max, self.max_bytes, self.max_packets,
         self.max_delay_s, self.eager) = state

    def __repr__(self) -> str:
        mode = "eager" if self.eager else f"delay<={self.max_delay_s*1e3}ms"
        return (f"<BatchPolicy small<={self.small_max}B "
                f"flush@{self.max_bytes}B/{self.max_packets}pkt {mode}>")


def framed_size(sizes: Iterable[int]) -> int:
    """Byte length of a batch frame holding payloads of ``sizes``."""
    total = BATCH_OVERHEAD
    for size in sizes:
        total += ENTRY_OVERHEAD + size
    return total


def frame_entries(entries: Sequence[Tuple[int, bytes]]) -> bytes:
    """Coalesce ``(flags, payload)`` entries into one batch frame."""
    parts = [_U32.pack(len(entries))]
    for flags, payload in entries:
        if not 0 <= flags <= 0xFF:
            raise BatchError(f"entry flags {flags} do not fit one byte")
        parts.append(_ENTRY.pack(flags, len(payload)))
        parts.append(bytes(payload))
    return b"".join(parts)


def split_entries(data) -> List[Tuple[int, bytes]]:
    """Split a batch frame back into its ``(flags, payload)`` entries."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    if len(view) < BATCH_OVERHEAD:
        raise BatchError(f"batch frame of {len(view)} byte(s) has no header")
    count = _U32.unpack_from(view, 0)[0]
    if count * ENTRY_OVERHEAD > len(view) - BATCH_OVERHEAD:
        raise BatchError(
            f"batch count {count} impossible in {len(view)} byte(s)"
        )
    pos = BATCH_OVERHEAD
    out: List[Tuple[int, bytes]] = []
    for index in range(count):
        if pos + ENTRY_OVERHEAD > len(view):
            raise BatchError(
                f"truncated batch: entry {index} header past the frame end"
            )
        flags, length = _ENTRY.unpack_from(view, pos)
        pos += ENTRY_OVERHEAD
        if pos + length > len(view):
            raise BatchError(
                f"truncated batch: entry {index} wants {length} byte(s), "
                f"{len(view) - pos} left"
            )
        out.append((flags, bytes(view[pos:pos + length])))
        pos += length
    if pos != len(view):
        raise BatchError(
            f"trailing garbage: {len(view) - pos} byte(s) after the last "
            "batch entry"
        )
    return out
