"""repro.shm — preallocated shared-memory ring channels with batching.

The intra-host data plane of the ``processes`` backend: seqlock-style
SPSC rings (:mod:`repro.shm.ring`), packet batching
(:mod:`repro.shm.batch`), the queue-compatible channel over both
(:mod:`repro.shm.channel`), and the transport registry that lets the
backend pick a channel implementation per edge
(:mod:`repro.shm.registry` / :mod:`repro.shm.transports`).
"""

from .batch import BatchError, BatchPolicy, frame_entries, split_entries
from .channel import (
    F_BATCH,
    F_CODEC,
    F_OVERFLOW,
    F_PICKLE,
    ChannelError,
    RingChannel,
)
from .flag import StopFlag
from .registry import (
    DEFAULT_TRANSPORT,
    TRANSPORT_ENV,
    ChannelSet,
    EdgeSpec,
    Transport,
    TransportError,
    build_channels,
    get_transport,
    list_transports,
    register_transport,
    transport_capabilities,
    transport_names,
)
from .ring import (
    DEFAULT_SLOT_BYTES,
    DEFAULT_SLOTS,
    Ring,
    RingError,
    RingHandle,
    TornRead,
    create_ring,
)
from . import transports as _builtin_transports  # noqa: F401  (registers)

__all__ = [
    "BatchError",
    "BatchPolicy",
    "frame_entries",
    "split_entries",
    "F_BATCH",
    "F_CODEC",
    "F_OVERFLOW",
    "F_PICKLE",
    "ChannelError",
    "RingChannel",
    "StopFlag",
    "DEFAULT_TRANSPORT",
    "TRANSPORT_ENV",
    "ChannelSet",
    "EdgeSpec",
    "Transport",
    "TransportError",
    "build_channels",
    "get_transport",
    "list_transports",
    "register_transport",
    "transport_capabilities",
    "transport_names",
    "Ring",
    "RingError",
    "RingHandle",
    "TornRead",
    "create_ring",
    "DEFAULT_SLOTS",
    "DEFAULT_SLOT_BYTES",
]
