"""Per-worker health scoring: EWMA service times + a robust outlier rule.

Two independent detectors feed the *limping* state:

* **Score outlier** — each completed packet updates the answering
  worker's EWMA service time; a worker whose score exceeds
  ``limp_factor`` x the farm median (computed only over workers with
  enough samples) is limping.  The median makes the rule robust: one
  slow worker cannot drag the baseline up after itself, and a uniformly
  loaded farm (every worker equally slow) flags nobody.
* **Stuck** — a worker holding an in-flight packet whose heartbeat is
  fresh but which has completed *nothing* since the dispatch (BEAT
  fresh, COUNT flat) is limping too, even before any score exists.
  This state clears on the worker's next completion, not on the median
  rule, because a stuck worker's score is by definition not moving.

State transitions are returned to the caller (the supervisor) as
events, so every flip becomes a :class:`~repro.faults.report.FaultRecord`
and shows up in traces and ``repro stats``.
"""

from __future__ import annotations

import statistics
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from .policy import HealthPolicy

__all__ = ["HEALTHY", "LIMPING", "WorkerHealth", "FarmHealth"]

HEALTHY = "healthy"
LIMPING = "limping"


class WorkerHealth:
    """One worker's scoring state (times in seconds)."""

    __slots__ = ("index", "score", "samples", "completed", "state",
                 "reason", "last_done_at")

    def __init__(self, index: int, window: int):
        self.index = index
        self.score: Optional[float] = None  # EWMA service time
        self.samples: Deque[float] = deque(maxlen=window)
        self.completed = 0
        self.state = HEALTHY
        self.reason = ""  # "slow" (score outlier) or "stuck" (no progress)
        self.last_done_at: Optional[float] = None

    def observe(self, service_s: float, alpha: float, now: float) -> None:
        self.samples.append(service_s)
        self.completed += 1
        self.last_done_at = now
        if self.score is None:
            self.score = service_s
        else:
            self.score = alpha * service_s + (1.0 - alpha) * self.score

    def to_row(self) -> Dict:
        return {
            "worker": self.index,
            "state": self.state,
            "reason": self.reason,
            "score_ms": (round(self.score * 1e3, 3)
                         if self.score is not None else None),
            "completed": self.completed,
        }


class FarmHealth:
    """Health view of one farm's workers (owner-process only, unlocked:
    the supervisor already serialises access under the farm lock)."""

    def __init__(self, n_workers: int, policy: Optional[HealthPolicy] = None):
        self.policy = policy or HealthPolicy()
        self.workers = [WorkerHealth(i, self.policy.window)
                        for i in range(max(1, n_workers))]

    # -- feeding -----------------------------------------------------------

    def observe(self, index: int, service_s: float,
                now: float) -> Optional[Tuple[int, str, str]]:
        """One completed packet; returns a ``restored`` event if the
        completion clears a *stuck* flag."""
        w = self.workers[index]
        w.observe(service_s, self.policy.ewma_alpha, now)
        if w.state == LIMPING and w.reason == "stuck":
            # Progress resumed; the score rule takes over from here.
            w.state, w.reason = HEALTHY, ""
            return (index, "restored", "stuck")
        return None

    def mark_stuck(self, index: int) -> Optional[Tuple[int, str, str]]:
        """BEAT fresh, COUNT flat: flag without waiting for a score."""
        w = self.workers[index]
        if w.state == LIMPING:
            return None
        w.state, w.reason = LIMPING, "stuck"
        return (index, LIMPING, "stuck")

    def evaluate(self) -> List[Tuple[int, str, str]]:
        """Re-apply the score-outlier rule; returns state transitions
        as ``(worker index, new state, reason)`` tuples."""
        if not self.policy.enabled:
            return []
        median = self.median()
        if median is None or median <= 0.0:
            return []
        events: List[Tuple[int, str, str]] = []
        for w in self.workers:
            if w.score is None or w.completed < self.policy.min_samples:
                continue
            if w.state == HEALTHY:
                if w.score > self.policy.limp_factor * median:
                    w.state, w.reason = LIMPING, "slow"
                    events.append((w.index, LIMPING, "slow"))
            elif w.reason == "slow":
                if w.score < self.policy.clear_factor * median:
                    w.state, w.reason = HEALTHY, ""
                    events.append((w.index, "restored", "slow"))
        return events

    # -- queries -----------------------------------------------------------

    def median(self) -> Optional[float]:
        scores = [w.score for w in self.workers
                  if w.score is not None
                  and w.completed >= self.policy.min_samples]
        if not scores:
            return None
        return statistics.median(scores)

    def state(self, index: int) -> str:
        return self.workers[index].state

    def limping(self) -> Set[int]:
        return {w.index for w in self.workers if w.state == LIMPING}

    def keeps(self, index: int, seq: int) -> bool:
        """Does a limping worker keep this addressed packet?

        Demotion, not quarantine: the worker keeps every
        ``keep_stride``-th packet (deterministic in ``seq``), the rest
        are rerouted to healthy peers.  Keeping a trickle flowing is
        what lets the score recover and the worker earn its way back.
        """
        if self.workers[index].state != LIMPING:
            return True
        return seq % self.policy.keep_stride() == 0

    def pick_healthy(self, seq: int, *, exclude: Set[int],
                     alive: List[int]) -> Optional[int]:
        """Deterministic rotation over the healthiest candidates.

        ``alive`` is the non-quarantined index list; prefers fully
        healthy workers, falls back to limping ones (a limping worker
        still beats a dead one), and never returns an excluded index.
        """
        pool = [i for i in alive
                if i not in exclude and self.workers[i].state == HEALTHY]
        if not pool:
            pool = [i for i in alive if i not in exclude]
        if not pool:
            return None
        return pool[seq % len(pool)]

    def rows(self) -> List[Dict]:
        return [w.to_row() for w in self.workers]
