"""Gray-failure defense: limplock detection, health scoring, hedging.

The supervision stack of :mod:`repro.faults` knows binary liveness — a
worker that stops heartbeating is quarantined.  This package adds the
third state in between: *limping*.  A limping worker keeps beating (so
the crash path never fires) while serving packets far slower than its
peers, and one such worker is enough to drag a whole farm's p99 down —
the limplock scenario.

Three cooperating pieces, all deterministic and dependency-free:

* :class:`HealthPolicy` — the tuning knobs (EWMA smoothing, the outlier
  rule, hedge thresholds), frozen and picklable so they travel to
  worker OS processes alongside :class:`~repro.faults.policy.FaultPolicy`.
* :class:`FarmHealth` — per-worker EWMA service-time scores with a
  robust outlier rule (score > k x farm median) and the
  beats-but-never-progresses detector (BEAT fresh, COUNT flat).
* :class:`HedgeClock` — the adaptive percentile threshold that decides
  when an in-flight packet has been waiting long enough to justify a
  speculative duplicate on a healthy worker (first result wins; the
  envelope layer deduplicates, so ledger conservation is untouched).
"""

from .hedge import HedgeClock
from .policy import HealthPolicy
from .score import HEALTHY, LIMPING, FarmHealth, WorkerHealth

__all__ = [
    "HEALTHY",
    "LIMPING",
    "HealthPolicy",
    "WorkerHealth",
    "FarmHealth",
    "HedgeClock",
]
