"""The adaptive hedge threshold: when is an in-flight packet *overdue*?

Classic hedged-request design (Dean & Barroso's "tail at scale"):
instead of a fixed timeout, anchor the speculation threshold to a high
percentile of *observed* completed service times.  The clock is cheap —
a bounded deque and a nearest-rank percentile — and entirely
deterministic given the same observation sequence.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from .policy import HealthPolicy

__all__ = ["HedgeClock"]


class HedgeClock:
    """Farm-wide adaptive percentile threshold over completed services.

    The clock is unit-agnostic apart from the floor: real kernels feed
    wall-clock seconds and keep the policy's ``hedge_floor_s`` (a guard
    against hedging on measurement noise), while the simulator feeds
    virtual microseconds with ``floor=0.0`` — virtual time has no
    jitter, so the percentile rule applies undamped.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None, *,
                 floor: Optional[float] = None):
        self.policy = policy or HealthPolicy()
        self._floor = self.policy.hedge_floor_s if floor is None else floor
        self._window: Deque[float] = deque(maxlen=self.policy.hedge_window)
        self._seen = 0
        #: Hedges issued / won by the duplicate / wasted (late loser).
        self.issued = 0
        self.won = 0
        self.wasted = 0

    @property
    def samples(self) -> int:
        """Completed service times observed over the clock's lifetime."""
        return self._seen

    def record(self, service_s: float) -> None:
        """One completed packet's service time (seconds)."""
        if service_s >= 0.0:
            self._window.append(service_s)
            self._seen += 1

    def percentile(self) -> Optional[float]:
        """Nearest-rank ``hedge_percentile`` of the window, or None."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = math.ceil(self.policy.hedge_percentile / 100.0 * len(ordered))
        return ordered[max(0, min(rank - 1, len(ordered) - 1))]

    def threshold_s(self) -> Optional[float]:
        """Current hedge threshold (seconds); None while warming up."""
        if not self.policy.hedge_enabled:
            return None
        if self._seen < self.policy.hedge_min_samples:
            return None
        pct = self.percentile()
        if pct is None:
            return None
        return max(self._floor, self.policy.hedge_factor * pct)

    def overdue(self, elapsed_s: float) -> bool:
        """Has this in-flight time crossed the speculation threshold?"""
        threshold = self.threshold_s()
        return threshold is not None and elapsed_s > threshold

    def to_dict(self) -> dict:
        threshold = self.threshold_s()
        return {
            "samples": self._seen,
            "threshold_ms": (round(threshold * 1e3, 3)
                             if threshold is not None else None),
            "issued": self.issued,
            "won": self.won,
            "wasted": self.wasted,
        }
