"""Tuning knobs of the gray-failure defense layer.

Kept in their own frozen dataclass (rather than growing
:class:`~repro.faults.policy.FaultPolicy` field by field) so the health
machinery can be reasoned about — and switched off — as a unit.  The
fault policy carries one of these in its ``health`` slot; everything is
plain data and picklable because the processes and tcp backends ship
policies into worker OS processes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HealthPolicy"]


@dataclass(frozen=True)
class HealthPolicy:
    """How the supervisor scores workers and hedges overdue packets.

    The defaults favour *no false positives* on a loaded laptop: a
    worker is only flagged limping on a sustained multiple of the farm
    median, and hedging waits for both a sample floor and an absolute
    elapsed floor before spending duplicate work.
    """

    #: Master switch for scoring and limping detection.  Off, the
    #: supervisor behaves exactly as before this layer existed.
    enabled: bool = True
    #: EWMA smoothing factor for per-worker service times (weight of the
    #: newest sample).
    ewma_alpha: float = 0.3
    #: Sliding window of recent service-time samples kept per worker
    #: (the farm median is computed over these EWMA scores).
    window: int = 32
    #: Completed packets a worker must have before its score is trusted
    #: enough to flag it (protects cold starts).
    min_samples: int = 3
    #: A worker whose EWMA score exceeds ``limp_factor`` x the farm
    #: median is flagged *limping*.
    limp_factor: float = 3.0
    #: Hysteresis: a limping worker is restored once its score drops
    #: back under ``clear_factor`` x the farm median.
    clear_factor: float = 2.0
    #: Dispatch weight of a limping worker: it keeps roughly this
    #: fraction of the packets addressed to it (demotion, not the
    #: binary quarantine reserved for dead workers).
    limp_weight: float = 0.25
    #: Seconds an in-flight packet may sit on a worker whose heartbeat
    #: is *fresh* but which has completed nothing since the dispatch —
    #: the beats-but-never-progresses case (BEAT fresh, COUNT flat) —
    #: before the worker is flagged limping as *stuck*.
    stuck_after_s: float = 0.25
    #: Master switch for hedged re-dispatch.
    hedge_enabled: bool = True
    #: Percentile of recent completed service times the hedge threshold
    #: is anchored to.
    hedge_percentile: float = 95.0
    #: The threshold itself: ``hedge_factor`` x that percentile.  An
    #: in-flight time beyond it earns a speculative duplicate.
    hedge_factor: float = 3.0
    #: Farm-wide completions required before hedging engages (the
    #: percentile is meaningless on a handful of samples).
    hedge_min_samples: int = 8
    #: Absolute floor (seconds) under which a packet is never hedged,
    #: whatever the percentile says.
    hedge_floor_s: float = 0.01
    #: Speculative duplicates allowed per packet.
    max_hedges_per_packet: int = 1
    #: Completed service times remembered by the hedge clock.
    hedge_window: int = 128
    #: Seconds between per-worker health samples recorded into the
    #: fault report (the ``health:*`` trace counters).
    sample_interval_s: float = 0.25

    def __post_init__(self):
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.limp_factor < self.clear_factor:
            raise ValueError("limp_factor must be >= clear_factor "
                             "(hysteresis would oscillate)")
        if not 0.0 < self.limp_weight <= 1.0:
            raise ValueError("limp_weight must be in (0, 1]")
        if not 0.0 < self.hedge_percentile <= 100.0:
            raise ValueError("hedge_percentile must be in (0, 100]")

    def keep_stride(self) -> int:
        """Every n-th packet a limping worker keeps (``1/limp_weight``)."""
        return max(1, round(1.0 / self.limp_weight))
