"""The distributed executive, interpreted by a discrete-event simulator.

This is the runtime half of SKiPPER: the mapped process network runs on
a simulated MIMD-DM machine whose processors execute one computation at
a time and whose channels carry one message at a time (FIFO,
store-and-forward across hops) — a faithful model of the ring-connected
Transputer machine of §4.

The executive computes with *real data*: every sequential function is
actually called, so the simulated run produces exactly the outputs of
the sequential emulation (the equivalence the paper requires between the
declarative and operational skeleton definitions), while simulated time
advances according to the cost models of :mod:`repro.machine.costs`.

Farm protocols follow the operational definition of Fig. 1: the master
dispatches one packet per idle worker, accumulates results as they
return (order is arrival order — hence the commutativity requirement on
``acc``), and keeps workers busy until the packet list is exhausted;
``tf`` workers may return new packets that the master re-injects.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .trace import Trace

from ..core.functions import FunctionTable
from ..core.semantics import EndOfStream, TaskOutcome
from ..core.sizes import HEADER_BYTES, payload_bytes
from ..pnt.graph import ProcessGraph, ProcessKind
from ..syndex.distribute import Mapping
from ..syndex.route import RoutingTable, route_mapping
from .costs import CostModel, T9000

__all__ = ["ExecutiveError", "IterationRecord", "RunReport", "Executive", "simulate"]


class ExecutiveError(RuntimeError):
    """A sequential function failed during simulated execution.

    Wraps the original exception with the process/function context a
    user needs to find the faulty kernel (the simulated equivalent of a
    processor crash dump)."""

    def __init__(self, pid: str, func: Optional[str], time_us: float,
                 original: BaseException):
        self.pid = pid
        self.func = func
        self.time_us = time_us
        self.original = original
        super().__init__(
            f"sequential function {func!r} failed in process {pid!r} "
            f"at t={time_us:.1f} us: {type(original).__name__}: {original}"
        )


class _NoPiece:
    """Sentinel for scm splits shorter than the worker count."""

    def __repr__(self) -> str:
        return "<no-piece>"


_NO_PIECE = _NoPiece()


@dataclass
class IterationRecord:
    """Timing of one stream iteration (times in µs)."""

    index: int
    start: float  # when the input process began grabbing
    end: float  # when the last event of the iteration completed
    output_time: float  # when the output function ran
    frame_index: int  # which video frame was consumed
    frames_skipped: int  # frames lost to a slow previous iteration

    @property
    def latency(self) -> float:
        """Grab-to-display latency of this iteration."""
        return self.output_time - self.start


@dataclass
class RunReport:
    """Aggregate result of a run (simulated or real).

    Simulated runs report times in simulated microseconds; real-backend
    runs (``wall_clock=True``) report wall-clock microseconds measured on
    the host.  ``trace`` carries the per-resource span recording when the
    run was traced (see :mod:`repro.machine.trace`), and ``backend``
    names the execution backend that produced the report.
    """

    iterations: List[IterationRecord]
    outputs: List[Any]
    final_state: Any
    makespan: float
    proc_busy: Dict[str, float]
    chan_busy: Dict[str, float]
    one_shot_results: Optional[Tuple[Any, ...]] = None
    trace: Optional["Trace"] = None
    backend: str = "simulate"
    wall_clock: bool = False
    #: Fault story of the run (:class:`~repro.faults.report.FaultReport`)
    #: when fault injection / supervision was enabled; else None.
    faults: Optional[Any] = None
    #: Real-time story (:class:`~repro.realtime.ledger.RealtimeReport`)
    #: when a :class:`~repro.realtime.budget.LatencyBudget` was attached
    #: to the run; else None.
    realtime: Optional[Any] = None

    @property
    def mean_latency(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(r.latency for r in self.iterations) / len(self.iterations)

    @property
    def max_latency(self) -> float:
        return max((r.latency for r in self.iterations), default=0.0)

    @property
    def min_latency(self) -> float:
        return min((r.latency for r in self.iterations), default=0.0)

    @property
    def total_frames_skipped(self) -> int:
        return sum(r.frames_skipped for r in self.iterations)

    def throughput_hz(self) -> float:
        """Completed iterations per second of simulated time."""
        if self.makespan <= 0:
            return 0.0
        return len(self.iterations) * 1e6 / self.makespan

    def utilisation(self) -> Dict[str, float]:
        """Fraction of the makespan each processor spent computing."""
        if self.makespan <= 0:
            return {p: 0.0 for p in self.proc_busy}
        return {p: b / self.makespan for p, b in self.proc_busy.items()}

    def summary(self) -> str:
        if self.wall_clock:
            lines = [
                f"backend {self.backend}: {len(self.outputs)} output(s), "
                f"wall time {self.makespan / 1000:.2f} ms",
            ]
        else:
            lines = [
                f"{len(self.iterations)} iteration(s), makespan "
                f"{self.makespan / 1000:.2f} ms",
                f"latency mean/min/max: {self.mean_latency / 1000:.2f} / "
                f"{self.min_latency / 1000:.2f} / {self.max_latency / 1000:.2f} ms",
                f"frames skipped: {self.total_frames_skipped}",
            ]
        if self.faults:
            lines.append(self.faults.summary())
        if self.realtime:
            lines.append(self.realtime.summary())
        return "\n".join(lines)


@dataclass
class Profile:
    """Measured execution profile of one run.

    ``edge_bytes`` maps edge indices (position in ``graph.edges``) to the
    largest payload observed on that edge; ``durations`` maps process ids
    to their mean per-firing compute time (µs).  Feeding these back into
    :func:`repro.syndex.distribute` is the measured-cost "adequation"
    loop of the AAA methodology.
    """

    edge_bytes: Dict[int, int] = field(default_factory=dict)
    compute_us: Dict[str, float] = field(default_factory=dict)
    firings: Dict[str, int] = field(default_factory=dict)

    def durations(self) -> Dict[str, float]:
        """Mean compute time per firing for each process."""
        return {
            pid: total / self.firings[pid]
            for pid, total in self.compute_us.items()
            if self.firings.get(pid)
        }


@dataclass
class _FarmState:
    """Master-side farm bookkeeping."""

    acc_value: Any = None
    queue: List[Any] = field(default_factory=list)
    busy: Dict[int, bool] = field(default_factory=dict)
    pending: int = 0
    started: bool = False
    #: Worker indices retired after a detected crash/stall: the master
    #: never dispatches to them again (matches the supervised kernels).
    quarantined: set = field(default_factory=set)


class Executive:
    """Simulates one mapped program on the machine model."""

    def __init__(
        self,
        mapping: Mapping,
        table: FunctionTable,
        costs: CostModel = T9000,
        *,
        real_time: bool = False,
        max_farm_tasks: int = 1_000_000,
        record_trace: bool = False,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        budget: Optional[Any] = None,
    ):
        self.mapping = mapping
        self.graph: ProcessGraph = mapping.graph
        self.table = table
        self.costs = costs
        self.real_time = real_time
        self.budget = budget
        self.max_farm_tasks = max_farm_tasks
        self.routing: RoutingTable = route_mapping(mapping)
        self._edge_index = {id(e): i for i, e in enumerate(self.graph.edges)}

        # Fault model: the same FaultPlan that drives the real kernels,
        # charged in virtual time (see repro.faults).
        self._matcher = None
        self._fault_topology = None
        self._fault_policy = None
        self.fault_report = None
        if fault_plan is not None:
            from ..faults.plan import PlanMatcher
            from ..faults.policy import FaultPolicy
            from ..faults.report import FaultReport
            from ..faults.topology import FaultTopology

            self._matcher = PlanMatcher(fault_plan)
            self._fault_topology = FaultTopology.from_mapping(mapping)
            self._fault_policy = fault_policy or FaultPolicy()
            self.fault_report = FaultReport()
        self._dead_pids: set = set()
        self._scm_quarantined: Dict[str, set] = {}

        # Gray-failure model: limplock factors latch per worker pid and
        # every farm carries a virtual HedgeClock fed with simulated
        # service times, so the hedged-vs-unhedged verdict of the real
        # kernels reproduces in virtual time (same threshold logic).
        self._limp_factors: Dict[str, float] = {}
        self._limp_flagged: set = set()
        self._limp_offers: Dict[str, int] = {}
        self._hp = None
        # Online re-mapping twin: the same count-based decisions the
        # supervised kernels make, replayed in virtual time.
        self._rp = None
        self._remap_migrated: set = set()
        self._remap_counts: Dict[str, int] = {}
        self._hedge_clocks: Dict[str, Any] = {}
        self._worker_farm: Dict[str, Tuple[Any, Any]] = {}
        self._master_farm: Dict[str, Any] = {}
        if self._fault_policy is not None:
            from ..health import HedgeClock

            self._hp = self._fault_policy.health_policy()
            self._rp = self._fault_policy.remap_policy()
            for farm in self._fault_topology.farms:
                # Clocks run in virtual µs, floorless: simulated service
                # times carry no measurement noise to guard against.
                self._hedge_clocks[farm.sid] = HedgeClock(self._hp,
                                                          floor=0.0)
                if farm.kind == "farm":
                    self._master_farm[farm.owner_pid] = farm
                for w in farm.workers:
                    self._worker_farm[w.pid] = (farm, w)

        # Machine state.
        self._proc_free: Dict[str, float] = {}
        self._proc_busy_total: Dict[str, float] = {}
        self._chan_free: Dict[str, float] = {}
        self._chan_busy_total: Dict[str, float] = {}
        # Event queue: (time, seq, handler-args)
        self._events: List[Tuple[float, int, Tuple]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._horizon = 0.0  # latest completion time seen (CPU, link, event)
        self.profile = Profile()
        self._profiled_pid: Optional[str] = None  # process being computed
        from .trace import Trace

        self.trace: Optional[Trace] = Trace() if record_trace else None

        # Per-process runtime state.
        self._inbox: Dict[str, Dict[int, Any]] = {}
        self._farms: Dict[str, _FarmState] = {}
        self._farm_tasks_done = 0

        # Stream state.
        self._mem_state: Dict[str, Any] = {}
        self._outputs: List[Any] = []
        self._one_shot_results: Dict[int, Any] = {}
        self._iteration_records: List[IterationRecord] = []
        self._frames_consumed = 0
        self._stream_over = False
        self._grab_start = 0.0
        self._output_time = 0.0

    # -- machine primitives --------------------------------------------------

    def _processor_of(self, pid: str) -> str:
        return self.mapping.processor_of(pid)

    def _speed_of(self, pid: str) -> float:
        return self.mapping.arch.processors[self._processor_of(pid)].speed

    def _compute(self, pid: str, ready: float, base_cost: float) -> float:
        """Reserve the process's CPU for a computation; returns end time."""
        proc = self._processor_of(pid)
        cost = self.costs.scaled_cost(base_cost, self._speed_of(pid))
        start = max(ready, self._proc_free.get(proc, 0.0))
        end = start + cost
        self._proc_free[proc] = end
        self._proc_busy_total[proc] = self._proc_busy_total.get(proc, 0.0) + cost
        self._horizon = max(self._horizon, end)
        self.profile.compute_us[pid] = (
            self.profile.compute_us.get(pid, 0.0) + base_cost
        )
        self.profile.firings[pid] = self.profile.firings.get(pid, 0) + 1
        if self.trace is not None:
            self.trace.add_compute(proc, pid, start, end)
        return end


    def _call(self, pid: str, spec, *args):
        """Invoke a user sequential function with crash context."""
        try:
            return spec(*args)
        except EndOfStream:
            raise
        except Exception as err:
            raise ExecutiveError(pid, spec.name, self._now, err) from err

    def _func_cost(self, func: Optional[str], *args) -> float:
        if func is None:
            return 0.0
        spec = self.table[func]
        cost = spec.cost_of(*args)
        return self.costs.default_func_cost if cost is None else cost

    def _schedule(self, time: float, handler: str, *args) -> None:
        self._horizon = max(self._horizon, time)
        heapq.heappush(self._events, (time, next(self._seq), (handler, args)))

    def _send(self, pid: str, port: int, value: Any, time: float) -> None:
        """Emit ``value`` from (pid, port): deliver along every out edge."""
        payload: Optional[int] = None
        for edge in self.graph.edges:
            if edge.src != pid or edge.src_port != port:
                continue
            idx = self._edge_index[id(edge)]
            if self._matcher is not None and self._drop(idx, value, time):
                continue  # the message is lost in transit
            if payload is None:
                payload = payload_bytes(value)
            self.profile.edge_bytes[idx] = max(
                self.profile.edge_bytes.get(idx, 0), payload
            )
            route = self.routing.routes[idx]
            if route.is_local:
                arrival = time + self.costs.local_delivery
            else:
                nbytes = HEADER_BYTES + payload
                t = time
                for cid in route.channels:
                    channel = self.mapping.arch.channels[cid]
                    start = max(t, self._chan_free.get(cid, 0.0))
                    duration = channel.transfer_time(nbytes)
                    t = start + duration
                    self._chan_free[cid] = t
                    self._chan_busy_total[cid] = (
                        self._chan_busy_total.get(cid, 0.0) + duration
                    )
                    if self.trace is not None:
                        self.trace.add_transfer(cid, pid, start, t)
                arrival = t
            self._schedule(arrival, "arrive", edge.dst, edge.dst_port, value, edge.loop)

    # -- event handlers --------------------------------------------------

    def _handle_arrive(self, pid: str, port: int, value: Any, loop: bool) -> None:
        process = self.graph[pid]
        if process.kind == ProcessKind.MEM:
            # Feedback: store the next iteration's state.
            self._mem_state[pid] = value
            return
        if process.kind == ProcessKind.MASTER:
            self._master_arrive(pid, port, value)
            return
        inbox = self._inbox.setdefault(pid, {})
        if port in inbox:
            raise RuntimeError(
                f"{pid} port {port} received a second message within one "
                "iteration"
            )
        inbox[port] = value
        if len(inbox) == process.n_in:
            self._inbox[pid] = {}
            self._fire(pid, dict(inbox))

    def _fire(self, pid: str, inputs: Dict[int, Any]) -> None:
        process = self.graph[pid]
        kind = process.kind
        if kind == ProcessKind.APPLY:
            self._fire_apply(pid, inputs)
        elif kind == ProcessKind.WORKER:
            self._fire_worker(pid, inputs)
        elif kind in (ProcessKind.ROUTER_MW, ProcessKind.ROUTER_WM):
            end = self._compute(pid, self._now, self.costs.router_forward)
            self._send(pid, 0, inputs[0], end)
        elif kind == ProcessKind.SPLIT:
            self._fire_split(pid, inputs)
        elif kind == ProcessKind.MERGE:
            self._fire_merge(pid, inputs)
        elif kind == ProcessKind.OUTPUT:
            self._fire_output(pid, inputs)
        else:
            raise RuntimeError(f"process kind {kind!r} should not fire")

    def _fire_apply(self, pid: str, inputs: Dict[int, Any]) -> None:
        process = self.graph[pid]
        args = tuple(inputs[i] for i in range(process.n_in))
        spec = self.table[process.func]
        end = self._compute(pid, self._now, self._func_cost(process.func, *args))
        result = self._call(pid, spec, *args)
        if spec.n_outs == 1:
            self._send(pid, 0, result, end)
        else:
            for port, value in enumerate(result):
                self._send(pid, port, value, end)

    def _fire_worker(self, pid: str, inputs: Dict[int, Any]) -> None:
        process = self.graph[pid]
        x = inputs[0]
        if isinstance(x, _NoPiece):
            end = self._compute(pid, self._now, self.costs.local_delivery)
            self._send(pid, 0, _NO_PIECE, end)
            return
        delay_us = 0.0
        if self._matcher is not None:
            if pid in self._dead_pids:
                # A packet addressed to an already-dead worker: the real
                # dispatcher reroutes instantly, so no detection latency.
                self._fault_recover(pid, "reroute", x, self._now,
                                    detected=False)
                return
            specs = self._matcher.fire(
                process=pid, processor=self._processor_of(pid),
                kinds=("crash", "stall", "delay", "slow-worker",
                       "limplock", "credit-starvation"),
            )
            for spec in specs:
                if spec.kind in ("delay", "slow-worker"):
                    delay_us += spec.delay_us
                    self.fault_report.add(
                        "injected", spec.kind, pid, self._now,
                        processor=self._processor_of(pid),
                        note=f"{spec.delay_us:.0f} us",
                    )
                elif spec.kind == "limplock":
                    # Persistent gray failure: every subsequent firing of
                    # this worker is stretched by the latched factor.
                    self._limp_factors[pid] = spec.factor
                    self.fault_report.add(
                        "injected", "limplock", pid, self._now,
                        processor=self._processor_of(pid),
                        note=f"x{spec.factor:g} slowdown latched",
                    )
            fatal = next(
                (s for s in specs
                 if s.kind in ("crash", "stall", "credit-starvation")),
                None,
            )
            if fatal is not None:
                # The worker consumed the packet and will never answer
                # (a starved worker keeps beating but stops dequeuing —
                # to the master both look like eternal silence).
                self.fault_report.add(
                    "injected", fatal.kind, pid, self._now,
                    processor=self._processor_of(pid),
                )
                self._dead_pids.add(pid)
                self._fault_recover(pid, fatal.kind, x, self._now)
                return
        spec = self.table[process.func]
        base = self._func_cost(process.func, x)
        cost = base + delay_us
        factor = self._limp_factors.get(pid)
        if factor is not None:
            cost = base * factor + delay_us
        end = self._compute(pid, self._now, cost)
        result = self._call(pid, spec, x)
        if factor is not None and pid not in self._limp_flagged:
            self._limp_flagged.add(pid)
            self.fault_report.add(
                "limping", "slow", pid, self._now,
                processor=self._processor_of(pid),
                note=f"x{factor:g} service-time stretch",
            )
        if not self._observe_service(pid, base, end, result):
            self._send(pid, 0, result, end)

    def _observe_service(self, pid: str, base_cost: float, end: float,
                         result: Any) -> bool:
        """Feed the farm's virtual HedgeClock; maybe win a virtual hedge.

        When hedging is enabled and this worker's in-flight time crosses
        the clock's adaptive threshold, a healthy farm-mate recomputes
        the packet speculatively and delivers straight to the owner
        (sequential functions are deterministic, so first-result-wins is
        exact); the loser's late copy is the discarded duplicate, so the
        caller must not send it — a True return means "already
        delivered".  Both CPUs are charged for the race: hedging buys
        latency with spare capacity, never for free.
        """
        entry = self._worker_farm.get(pid)
        if entry is None or self._hp is None or not self._hp.enabled:
            return False
        farm, worker = entry
        clock = self._hedge_clocks[farm.sid]
        start = self._now
        elapsed = end - start
        threshold = clock.threshold_s()  # virtual µs (floorless clock)
        delivered = False
        effective = end
        if (self._hp.hedge_enabled and farm.supervised
                and threshold is not None and elapsed > threshold):
            survivor = next(
                (w for w in farm.workers
                 if w.pid != pid and w.pid not in self._dead_pids
                 and w.pid not in self._limp_factors),
                None,
            )
            if survivor is not None:
                issue_at = start + threshold
                clock.issued += 1
                self.fault_report.add(
                    "hedge", "limplock", pid, issue_at,
                    processor=worker.processor,
                    note=(f"in-flight {elapsed:.0f} us > "
                          f"{threshold:.0f} us"),
                )
                h_end = self._compute(
                    survivor.pid, issue_at + self.costs.master_dispatch,
                    base_cost,
                )
                if h_end < end:
                    # The duplicate answers first, via the *survivor's*
                    # side of the machine (the loser's own result would
                    # queue behind its limping processor).
                    clock.won += 1
                    self.fault_report.add(
                        "hedge-win", "limplock", survivor.pid, h_end,
                        processor=survivor.processor,
                        latency_us=h_end - start,
                    )
                    port = (2 + worker.index if farm.kind == "farm"
                            else 1 + worker.index)
                    self._schedule(
                        h_end + self.costs.local_delivery, "arrive",
                        farm.owner_pid, port, result, False,
                    )
                    clock.wasted += 1
                    self.fault_report.add(
                        "duplicate", "hedge-waste", pid, end,
                        processor=worker.processor,
                        note="late loser of the hedge race discarded",
                    )
                    delivered = True
                    effective = h_end
                else:
                    clock.wasted += 1
                    self.fault_report.add(
                        "duplicate", "hedge-waste", survivor.pid, h_end,
                        processor=survivor.processor,
                    )
        if pid not in self._limp_factors:
            # Only healthy services calibrate the threshold (limped
            # samples would inflate the percentile until hedging
            # self-disables — mirrors the real supervisor).
            clock.record(effective - start)
        return delivered

    def _fire_split(self, pid: str, inputs: Dict[int, Any]) -> None:
        process = self.graph[pid]
        degree = process.params["degree"]
        spec = self.table[process.func]
        x = inputs[0]
        base = self._func_cost(process.func, degree, x)
        end = self._compute(
            pid, self._now, base + degree * self.costs.split_piece
        )
        pieces = self._call(pid, spec, degree, x)
        if len(pieces) > degree:
            raise RuntimeError(
                f"{process.func} returned {len(pieces)} pieces for "
                f"degree {degree}"
            )
        for i in range(degree):
            piece = pieces[i] if i < len(pieces) else _NO_PIECE
            self._send(pid, i, piece, end)

    def _fire_merge(self, pid: str, inputs: Dict[int, Any]) -> None:
        process = self.graph[pid]
        degree = process.params["degree"]
        x = inputs[0]
        results = [
            inputs[1 + i]
            for i in range(degree)
            if not isinstance(inputs[1 + i], _NoPiece)
        ]
        spec = self.table[process.func]
        base = self._func_cost(process.func, x, results)
        end = self._compute(
            pid, self._now, base + len(results) * self.costs.merge_piece
        )
        self._send(pid, 0, self._call(pid, spec, x, results), end)

    def _fire_output(self, pid: str, inputs: Dict[int, Any]) -> None:
        process = self.graph[pid]
        value = inputs[0]
        if process.params.get("discard"):
            return
        if process.func is not None:
            end = self._compute(
                pid, self._now, self._func_cost(process.func, value)
            )
            self._call(pid, self.table[process.func], value)
            self._outputs.append(value)
            self._output_time = end
        else:
            self._one_shot_results[process.params.get("index", 0)] = value
            self._output_time = self._now

    # -- farm protocol -----------------------------------------------------------

    def _master_arrive(self, pid: str, port: int, value: Any) -> None:
        farm = self._farms.setdefault(pid, _FarmState())
        process = self.graph[pid]
        degree = process.params["degree"]
        if port in (0, 1):
            inbox = self._inbox.setdefault(pid, {})
            inbox[port] = value
            if 0 in inbox and 1 in inbox:
                farm.acc_value = inbox[0]
                xs = inbox[1]
                if not isinstance(xs, (list, tuple)):
                    raise RuntimeError(
                        f"farm input of {pid} must be a list, got "
                        f"{type(xs).__name__}"
                    )
                farm.queue = list(xs)
                farm.busy = {i: False for i in range(degree)}
                farm.started = True
                self._inbox[pid] = {}
                self._master_dispatch(pid, farm, self._now)
            return
        # A worker response on port 2+i.
        worker_index = port - 2
        farm.pending -= 1
        farm.busy[worker_index] = False
        self._note_virtual_completion(pid)
        spec = self.table[process.func]  # the accumulator
        if process.params["farm_kind"] == "tf":
            outcome = value
            if isinstance(outcome, tuple) and len(outcome) == 2:
                outcome = TaskOutcome(
                    results=list(outcome[0]), subtasks=list(outcome[1])
                )
            if not isinstance(outcome, TaskOutcome):
                raise RuntimeError(
                    f"tf worker returned {type(value).__name__}; expected "
                    "TaskOutcome or (results, subtasks)"
                )
            end = self._now
            for y in outcome.results:
                end = self._compute(
                    pid,
                    end,
                    self.costs.master_collect
                    + self._func_cost(process.func, farm.acc_value, y),
                )
                farm.acc_value = self._call(pid, spec, farm.acc_value, y)
            farm.queue.extend(outcome.subtasks)
        else:
            end = self._compute(
                pid,
                self._now,
                self.costs.master_collect
                + self._func_cost(process.func, farm.acc_value, value),
            )
            farm.acc_value = self._call(pid, spec, farm.acc_value, value)
        self._farm_tasks_done += 1
        if self._farm_tasks_done > self.max_farm_tasks:
            raise RuntimeError(
                f"farm processed more than {self.max_farm_tasks} packets; "
                "diverging task farm?"
            )
        self._master_dispatch(pid, farm, end)

    def _master_dispatch(self, pid: str, farm: _FarmState, time: float) -> None:
        """Send packets to idle workers; emit the result when drained."""
        process = self.graph[pid]
        degree = process.params["degree"]
        end = time
        for i in range(degree):
            if not farm.queue:
                break
            if farm.busy[i] or i in farm.quarantined:
                continue
            if self._health_demoted(pid, i):
                continue
            packet = farm.queue.pop(0)
            farm.busy[i] = True
            farm.pending += 1
            end = self._compute(pid, end, self.costs.master_dispatch)
            self._send(pid, 1 + i, packet, end)
        if farm.started and farm.pending == 0 and not farm.queue:
            farm.started = False
            self._send(pid, 0, farm.acc_value, end)

    # -- fault model -------------------------------------------------------------

    def _note_virtual_completion(self, master_pid: str) -> None:
        """The simulator's re-map clock: one tick per farm completion.

        Mirrors ``SupervisedKernel._note_completion`` + ``_apply_remap``
        in virtual time: every settled packet advances the count of each
        farm-mate that is currently flagged limping, and a worker whose
        continuous streak reaches ``confirm_completions`` is migrated
        (full dispatch exclusion) while a healthy mate exists.  Counting
        completions rather than microseconds is what makes the decision
        sequence identical to the wall-clock kernels'.
        """
        if (self._rp is None or not self._rp.enabled
                or self._hp is None or not self._hp.enabled):
            return
        farm = self._master_farm.get(master_pid)
        if farm is None:
            return
        for w in farm.workers:
            if w.pid in self._remap_migrated or w.pid in self._dead_pids:
                continue
            if w.pid not in self._limp_flagged:
                self._remap_counts.pop(w.pid, None)
                continue
            count = self._remap_counts.get(w.pid, 0) + 1
            self._remap_counts[w.pid] = count
            if count < self._rp.confirm_completions:
                continue
            active = [m for m in farm.workers
                      if m.pid != w.pid and m.pid not in self._dead_pids
                      and m.pid not in self._remap_migrated]
            healthy = [m for m in active
                       if m.pid not in self._limp_factors]
            if len(active) < self._rp.min_active or not healthy:
                continue
            self._remap_counts.pop(w.pid, None)
            self._remap_migrated.add(w.pid)
            self.fault_report.add(
                "remap", "limping", w.pid, self._now,
                processor=w.processor,
                note=f"migrated after {self._rp.confirm_completions} farm "
                     f"completions limping",
            )

    def _health_demoted(self, master_pid: str, index: int) -> bool:
        """Health-weighted dispatch: keep a flagged-limping worker on a
        1-in-``keep_stride`` packet trickle while a healthy farm-mate
        exists (matches ``FarmHealth.keeps`` on the real kernels — the
        trickle lets its score recover rather than freezing it)."""
        if self._hp is None or not self._hp.enabled:
            return False
        farm = self._master_farm.get(master_pid)
        if farm is None:
            return False
        worker = next((w for w in farm.workers if w.index == index), None)
        if worker is None:
            return False
        if worker.pid in self._remap_migrated:
            # Migrated by the re-mapper: no trickle at all while any
            # healthy farm-mate remains (the limp factor is latched for
            # the whole simulated run, so restoration never applies).
            if any(w.pid not in self._limp_factors
                   and w.pid not in self._dead_pids
                   and w.pid not in self._remap_migrated
                   for w in farm.workers):
                return True
        if worker.pid not in self._limp_flagged:
            return False
        if not any(w.pid not in self._limp_factors
                   and w.pid not in self._dead_pids
                   for w in farm.workers):
            return False  # nobody healthy left: better limping than idle
        offers = self._limp_offers.get(worker.pid, 0)
        self._limp_offers[worker.pid] = offers + 1
        return offers % self._hp.keep_stride() != 0

    def _drop(self, edge_idx: int, value: Any, time: float) -> bool:
        """Lose one planned message; arrange recovery on farm edges."""
        name = f"e{edge_idx}"
        specs = self._matcher.fire(edge=name,
                                   kinds=("drop", "partial-partition"))
        if not specs:
            return False
        kind = specs[0].kind
        self.fault_report.add("injected", kind, name, time)
        topo = self._fault_topology
        entry = topo.dispatch_edges.get(name) or topo.work_in_edges.get(name)
        if entry is not None and not isinstance(value, _NoPiece):
            # A lost dispatch packet times out at the supervisor and is
            # re-sent; the carrying worker is not quarantined (a
            # partial partition stalls the link, not the worker).
            farm, worker = entry
            handler = "fault_scm" if farm.kind == "scm" else "fault_farm"
            self._schedule(
                time + self._fault_policy.detect_us, handler,
                farm, worker.index, kind, value, time, True, False,
            )
        return True

    def _fault_recover(self, pid: str, kind: str, packet: Any,
                       inject_time: float, detected: bool = True) -> None:
        """Schedule supervisor recovery for a worker that will not answer."""
        topo = self._fault_topology
        entry = next(
            ((farm, w) for farm in topo.farms for w in farm.workers
             if w.pid == pid),
            None,
        )
        if entry is None:
            return  # a non-farm process died: nothing supervises it
        farm, worker = entry
        if not farm.supervised:
            return  # e.g. an scm whose split/merge are separated
        delay = self._fault_policy.detect_us if detected else 0.0
        handler = "fault_scm" if farm.kind == "scm" else "fault_farm"
        self._schedule(
            inject_time + delay, handler,
            farm, worker.index, kind, packet, inject_time, detected,
            kind in ("crash", "stall", "credit-starvation"),
        )

    def _handle_fault_farm(self, farm, index: int, kind: str, packet: Any,
                           inject_time: float, detected: bool,
                           quarantine: bool) -> None:
        """df/tf recovery: re-queue the packet, retire the worker."""
        pid = farm.owner_pid  # the master
        state = self._farms.get(pid)
        if state is None:
            return
        worker = farm.workers[index]
        if detected:
            self.fault_report.add(
                "detected", kind, worker.pid, self._now,
                processor=worker.processor,
            )
        if quarantine and index not in state.quarantined:
            state.quarantined.add(index)
            self.fault_report.add(
                "quarantine", kind, worker.pid, self._now,
                processor=worker.processor,
            )
        # The packet is no longer in flight; put it back at the head of
        # the queue and let the master redistribute (the dead worker's
        # busy flag stays set, so it is skipped — as on real kernels).
        state.pending -= 1
        state.queue.insert(0, packet)
        if kind in ("drop", "partial-partition"):
            # The worker is healthy — the packet was lost on the way to
            # it — so its slot is free for the re-dispatch.
            state.busy[index] = False
        end = self._compute(pid, self._now, self.costs.master_dispatch)
        self.fault_report.add(
            "redispatch", kind, worker.pid, self._now,
            processor=worker.processor, latency_us=end - inject_time,
        )
        self._master_dispatch(pid, state, end)

    def _handle_fault_scm(self, farm, index: int, kind: str, piece: Any,
                          inject_time: float, detected: bool,
                          quarantine: bool) -> None:
        """scm recovery: recompute the piece on a surviving worker and
        deliver the result to the dead worker's merge port."""
        worker = farm.workers[index]
        quarantined = self._scm_quarantined.setdefault(farm.sid, set())
        if detected:
            self.fault_report.add(
                "detected", kind, worker.pid, self._now,
                processor=worker.processor,
            )
        if quarantine and index not in quarantined:
            quarantined.add(index)
            self.fault_report.add(
                "quarantine", kind, worker.pid, self._now,
                processor=worker.processor,
            )
        survivors = [
            w for w in farm.workers
            if w.index not in quarantined and w.pid not in self._dead_pids
        ]
        if not survivors:
            self.fault_report.add(
                "abandoned", "give-up", farm.sid, self._now,
                note="no surviving scm workers",
            )
            return
        survivor = survivors[index % len(survivors)]
        process = self.graph[survivor.pid]
        spec = self.table[process.func]
        end = self._compute(
            survivor.pid,
            self._now + self.costs.master_dispatch,
            self._func_cost(process.func, piece),
        )
        result = self._call(survivor.pid, spec, piece)
        self.fault_report.add(
            "redispatch", kind, survivor.pid, self._now,
            processor=survivor.processor, latency_us=end - inject_time,
            note=f"piece {index} recomputed on {survivor.pid}",
        )
        # Deliver to the merge port the dead worker was feeding.
        self._schedule(
            end + self.costs.local_delivery, "arrive",
            farm.owner_pid, 1 + index, result, False,
        )

    # -- iteration control ------------------------------------------------------

    def _start_sources(self, t: float, one_shot_args: Optional[Tuple] = None) -> None:
        for pid in sorted(self.graph.processes):
            process = self.graph[pid]
            if process.kind == ProcessKind.CONST:
                end = self._compute(pid, t, self.costs.const_emit)
                self._send(pid, 0, process.params["value"], end)
            elif process.kind == ProcessKind.APPLY and process.n_in == 0:
                # Nullary functions have no arrivals to trigger them:
                # they fire once at the start of every iteration.
                self._now = t
                self._fire_apply(pid, {})
            elif process.kind == ProcessKind.MEM:
                end = self._compute(pid, t, self.costs.mem_update)
                self._send(pid, 0, self._mem_state[pid], end)
            elif process.kind == ProcessKind.INPUT:
                if process.func is not None:
                    self._start_stream_input(pid, t)
                else:
                    index = list(self.graph.by_kind(ProcessKind.INPUT)).index(
                        process
                    )
                    assert one_shot_args is not None
                    self._send(pid, 0, one_shot_args[index], t)

    def _start_stream_input(self, pid: str, t: float) -> None:
        process = self.graph[pid]
        spec = self.table[process.func]
        source = process.params.get("source")
        skipped = 0
        if self.real_time:
            period = self.costs.frame_period
            latest = int(t // period)
            target = max(latest, self._frames_consumed)
            skipped = target - self._frames_consumed
            for _ in range(skipped):
                try:
                    self._call(pid, spec, source)  # frame lost to the grabber
                except EndOfStream:
                    self._stream_over = True
                    return
            grab_ready = max(t, target * period)
            self._frames_consumed = target + 1
            frame_index = target
        else:
            grab_ready = t
            frame_index = self._frames_consumed
            self._frames_consumed += 1
        try:
            item = self._call(pid, spec, source)
        except EndOfStream:
            self._stream_over = True
            return
        self._grab_start = grab_ready
        self._grab_frame = frame_index
        self._grab_skipped = skipped
        end = self._compute(pid, grab_ready, self._func_cost(process.func, source))
        self._send(pid, 0, item, end)

    def _drain(self) -> float:
        """Run events until the queue empties; returns the completion horizon
        (latest CPU, link or delivery completion time)."""
        while self._events:
            time, _seq, (handler, args) = heapq.heappop(self._events)
            self._now = time
            if handler == "arrive":
                self._handle_arrive(*args)
            elif handler == "fault_farm":
                self._handle_fault_farm(*args)
            elif handler == "fault_scm":
                self._handle_fault_scm(*args)
            else:
                raise RuntimeError(f"unknown event {handler!r}")
        return self._horizon

    def _finish_faults(self):
        """Sort the fault report and annotate the trace, if any."""
        if self.fault_report is None:
            return None
        self.fault_report.sorted()
        if self.trace is not None:
            self.fault_report.annotate_trace(self.trace)
        return self.fault_report

    def _finish_realtime(self):
        """Project the iteration records onto a frame ledger.

        The simulator is lock-step (one frame in flight), so the ledger
        is exact: every completed iteration is a delivered frame, every
        grabber skip is a shed frame, and a deadline miss is simply
        ``latency > budget``.  This gives the conformance harness a
        deterministic realtime oracle to compare the real backends
        against.
        """
        if self.budget is None:
            return None
        from ..realtime.ledger import FrameRecord, RealtimeReport

        report = RealtimeReport(budget=self.budget)
        deadline_us = self.budget.deadline_us
        for rec in self._iteration_records:
            for k in range(rec.frames_skipped):
                frame = rec.frame_index - rec.frames_skipped + k
                report.ledger.frames.append(FrameRecord(
                    frame=frame, admitted_us=rec.start, status="shed",
                    reason="frame-skip",
                ))
                report.add_event("shed", frame, rec.start,
                                 detail="frame-skip")
            missed = rec.latency > deadline_us
            report.ledger.frames.append(FrameRecord(
                frame=rec.frame_index, admitted_us=rec.start,
                status="delivered", released_us=rec.start,
                delivered_us=rec.output_time, deadline_missed=missed,
            ))
            if missed:
                report.add_event(
                    "deadline-miss", rec.frame_index, rec.output_time,
                    detail=f"{rec.latency / 1000:.1f} ms",
                )
        if self.trace is not None:
            report.annotate_trace(self.trace)
        return report

    # -- public API --------------------------------------------------------------

    def run(self, max_iterations: Optional[int] = None) -> RunReport:
        """Run a stream program; returns the timing/output report."""
        if self.graph.by_kind(ProcessKind.MEM):
            self._init_memories()
            return self._run_stream(max_iterations)
        raise RuntimeError("not a stream program; use run_once()")

    def _init_memories(self) -> None:
        for mem in self.graph.by_kind(ProcessKind.MEM):
            params = mem.params
            if "init_func" in params:
                self._mem_state[mem.id] = self.table[params["init_func"]]()
            else:
                self._mem_state[mem.id] = params["init_value"]

    def _run_stream(self, max_iterations: Optional[int]) -> RunReport:
        t = 0.0
        index = 0
        while max_iterations is None or index < max_iterations:
            self._output_time = t
            self._grab_start = t
            self._grab_frame = self._frames_consumed
            self._grab_skipped = 0
            self._start_sources(t)
            if self._stream_over:
                break
            end = self._drain()
            self._iteration_records.append(
                IterationRecord(
                    index=index,
                    start=self._grab_start,
                    end=end,
                    output_time=self._output_time,
                    frame_index=self._grab_frame,
                    frames_skipped=self._grab_skipped,
                )
            )
            t = end
            index += 1
        final_state = None
        mems = self.graph.by_kind(ProcessKind.MEM)
        if mems:
            final_state = self._mem_state[mems[0].id]
        return RunReport(
            iterations=self._iteration_records,
            outputs=self._outputs,
            final_state=final_state,
            makespan=t,
            proc_busy=dict(self._proc_busy_total),
            chan_busy=dict(self._chan_busy_total),
            trace=self.trace,
            faults=self._finish_faults(),
            realtime=self._finish_realtime(),
        )

    def run_once(self, *args: Any) -> RunReport:
        """Run a one-shot program on ``args`` (one per INPUT process)."""
        inputs = self.graph.by_kind(ProcessKind.INPUT)
        if len(args) != len(inputs):
            raise RuntimeError(
                f"program takes {len(inputs)} input(s), got {len(args)}"
            )
        self._start_sources(0.0, one_shot_args=args)
        end = self._drain()
        results = tuple(
            self._one_shot_results[i] for i in sorted(self._one_shot_results)
        )
        return RunReport(
            iterations=[],
            outputs=list(results),
            final_state=None,
            makespan=end,
            proc_busy=dict(self._proc_busy_total),
            chan_busy=dict(self._chan_busy_total),
            one_shot_results=results,
            trace=self.trace,
            faults=self._finish_faults(),
        )


def simulate(
    mapping: Mapping,
    table: FunctionTable,
    costs: CostModel = T9000,
    *,
    max_iterations: Optional[int] = None,
    real_time: bool = False,
    args: Optional[Tuple] = None,
    fault_plan: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    budget: Optional[Any] = None,
) -> RunReport:
    """Convenience wrapper: build an :class:`Executive` and run it.

    Stream programs run ``max_iterations`` (or until the source raises
    :class:`~repro.core.semantics.EndOfStream`); one-shot programs need
    ``args``.  ``fault_plan`` enables the virtual-time fault model (see
    :mod:`repro.faults`): injected faults are charged in simulated time
    and the resulting :class:`~repro.faults.report.FaultReport` is
    attached to the returned report.
    """
    executive = Executive(
        mapping, table, costs, real_time=real_time,
        fault_plan=fault_plan, fault_policy=fault_policy, budget=budget,
    )
    if mapping.graph.by_kind(ProcessKind.MEM):
        return executive.run(max_iterations)
    return executive.run_once(*(args or ()))
