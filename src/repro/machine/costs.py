"""Cost models for the simulated MIMD-DM machine.

The paper's testbench is the Transvision platform: a ring of T9000
Transputers (20 MHz) with ~10 MB/s serial links, processing a 25 Hz
512x512 video stream.  Absent the hardware, the simulator charges:

* **compute** — each sequential function's registered cost model
  (microseconds as a function of its actual arguments), scaled by the
  processor's ``speed``; unmodelled functions get a default;
* **control** — small constant overheads for the skeleton control
  processes (master dispatch/accumulate bookkeeping, router forwarding,
  memory update), representing the hand-written kernel primitives;
* **communication** — per-channel ``latency + bytes / bandwidth``
  (see :class:`repro.syndex.arch.Channel`), with store-and-forward
  through intermediate hops and FIFO contention.

``T9000`` is the calibration used by the case-study benchmarks; the
per-pixel figures were chosen so an 8-worker ring reproduces the
paper's 30 ms tracking / 110 ms reinitialisation latencies (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CostModel", "T9000", "FAST_TEST"]


@dataclass(frozen=True)
class CostModel:
    """Control-process and default-cost parameters (times in µs)."""

    #: Charged for a sequential function whose spec has no cost model.
    default_func_cost: float = 50.0
    #: Master bookkeeping per packet dispatched.
    master_dispatch: float = 15.0
    #: Master bookkeeping per result accumulated (before the acc function
    #: itself, which is charged via its own cost model).
    master_collect: float = 15.0
    #: Router (M->W / W->M) store-and-forward CPU cost per message.
    router_forward: float = 5.0
    #: Memory-process state update per iteration.
    mem_update: float = 2.0
    #: Constant-source emission.
    const_emit: float = 0.5
    #: Local (same-processor) message delivery (a memcpy + queue op).
    local_delivery: float = 1.0
    #: Split/merge process bookkeeping per piece.
    split_piece: float = 10.0
    merge_piece: float = 10.0
    #: Video frame period (µs); 25 Hz like the Transvision stream.
    frame_period: float = 40_000.0

    def scaled_cost(self, base_us: float, speed: float) -> float:
        """A compute cost on a processor of relative ``speed``."""
        if speed <= 0:
            raise ValueError(f"processor speed must be positive, got {speed}")
        return base_us / speed


#: T9000-class calibration: the reference machine of the paper's §4.
T9000 = CostModel()

#: A near-zero-overhead model for functional (non-timing) tests.
FAST_TEST = CostModel(
    default_func_cost=1.0,
    master_dispatch=0.1,
    master_collect=0.1,
    router_forward=0.1,
    mem_update=0.1,
    const_emit=0.1,
    local_delivery=0.1,
    split_piece=0.1,
    merge_piece=0.1,
    frame_period=1000.0,
)
