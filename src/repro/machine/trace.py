"""Execution tracing and Gantt rendering.

SynDEx generates "a dead-lock free distributed executive with optional
real-time performance measurement" (§3).  This module is that
measurement facility: the executive records every computation interval
(process, processor, start, end) and every channel transfer, and the
renderers turn a trace into a per-processor text Gantt chart or
per-entity utilisation statistics — the view a SKiPPER user tunes a
mapping with.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Span", "Instant", "CounterSample", "Trace", "render_gantt",
           "busy_statistics"]


@dataclass(frozen=True)
class Span:
    """One occupancy interval of a processor or channel (times in µs)."""

    resource: str  # processor or channel id
    owner: str  # process id (or "edge<i>" for transfers)
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event on a resource's timeline (times in µs).

    Used for things that happen *at* a moment rather than *over* one —
    fault injections, detections, re-dispatches.  Renders as a Chrome
    trace instant (``ph="i"``) marker on the resource's row.
    """

    name: str  # e.g. "fault:detected"
    resource: str  # processor id (or another trace row key)
    time: float
    detail: str = ""


@dataclass(frozen=True)
class CounterSample:
    """One point of a counter series (Chrome ``ph="C"`` events).

    Counter series render as stacked area charts above the Gantt rows —
    the per-worker health scores (``health:<worker>``) use them so
    degradation is visible as a rising curve rather than a flurry of
    instant markers.
    """

    name: str  # series name, e.g. "health:df0.worker3"
    resource: str  # trace row the series is attached to
    time: float  # µs
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class Trace:
    """A recorded run: compute spans + transfer spans + instants."""

    compute: List[Span] = field(default_factory=list)
    transfer: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    counters: List[CounterSample] = field(default_factory=list)

    def add_compute(self, resource: str, owner: str, start: float, end: float) -> None:
        if end > start:
            self.compute.append(Span(resource, owner, start, end))

    def add_transfer(self, resource: str, owner: str, start: float, end: float) -> None:
        if end > start:
            self.transfer.append(Span(resource, owner, start, end))

    def add_instant(
        self, name: str, resource: str, time: float, detail: str = ""
    ) -> None:
        self.instants.append(Instant(name, resource, time, detail))

    def add_counter(
        self, name: str, resource: str, time: float,
        values: Dict[str, float],
    ) -> None:
        self.counters.append(CounterSample(name, resource, time,
                                           dict(values)))

    @property
    def makespan(self) -> float:
        spans = self.compute + self.transfer
        return max((s.end for s in spans), default=0.0)

    def window(self, t0: float, t1: float) -> "Trace":
        """The sub-trace overlapping [t0, t1] (e.g. one iteration)."""
        out = Trace()
        out.compute = [s for s in self.compute if s.end > t0 and s.start < t1]
        out.transfer = [s for s in self.transfer if s.end > t0 and s.start < t1]
        return out

    def to_chrome_json(self, *, indent: Optional[int] = None) -> str:
        """Render the trace in Chrome trace-event format.

        The output loads directly into ``chrome://tracing`` or Perfetto:
        one row ("process") per machine resource, complete (``ph="X"``)
        events for every compute and transfer span.  Span times are
        already in microseconds, the unit the format expects.
        """
        resources = sorted(
            {s.resource for s in self.compute}
            | {s.resource for s in self.transfer}
            | {i.resource for i in self.instants}
            | {c.resource for c in self.counters}
        )
        row = {resource: i + 1 for i, resource in enumerate(resources)}
        events: List[Dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": resource},
            }
            for resource, pid in row.items()
        ]
        for category, spans in (("compute", self.compute),
                                ("transfer", self.transfer)):
            for span in spans:
                events.append({
                    "ph": "X",
                    "name": span.owner,
                    "cat": category,
                    "ts": span.start,
                    "dur": span.duration,
                    "pid": row[span.resource],
                    "tid": 0,
                })
        for instant in self.instants:
            events.append({
                "ph": "i",
                "name": instant.name,
                "cat": "fault",
                "ts": instant.time,
                "pid": row[instant.resource],
                "tid": 0,
                "s": "p",  # process-scoped marker
                "args": {"detail": instant.detail},
            })
        for counter in self.counters:
            events.append({
                "ph": "C",
                "name": counter.name,
                "cat": "health",
                "ts": counter.time,
                "pid": row[counter.resource],
                "tid": 0,
                "args": counter.values,
            })
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=indent
        )


def busy_statistics(trace: Trace) -> Dict[str, Tuple[float, int]]:
    """Per-resource (busy µs, span count), computes and transfers merged."""
    stats: Dict[str, Tuple[float, int]] = {}
    for span in trace.compute + trace.transfer:
        busy, count = stats.get(span.resource, (0.0, 0))
        stats[span.resource] = (busy + span.duration, count + 1)
    return stats


def render_gantt(
    trace: Trace,
    *,
    width: int = 72,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    include_transfers: bool = True,
) -> str:
    """A text Gantt chart: one row per resource, time left to right.

    Each busy cell shows the first letter of the occupying process; idle
    time is ``.``; overlapping owners in one cell show ``#``.
    """
    spans = trace.compute + (trace.transfer if include_transfers else [])
    if not spans:
        return "(empty trace)"
    lo = min(s.start for s in spans) if t0 is None else t0
    hi = max(s.end for s in spans) if t1 is None else t1
    if hi <= lo:
        return "(empty window)"
    scale = width / (hi - lo)
    resources = sorted({s.resource for s in spans})
    label_w = max(len(r) for r in resources) + 1
    lines = [
        f"{'':<{label_w}}|{lo:>10.0f} us {'':>{max(0, width - 26)}}{hi:>10.0f} us"
    ]
    for resource in resources:
        cells = ["."] * width
        for span in spans:
            if span.resource != resource:
                continue
            a = int((max(span.start, lo) - lo) * scale)
            b = int((min(span.end, hi) - lo) * scale)
            b = max(b, a + 1)
            mark = span.owner.split(".")[-1][:1] or "?"
            for i in range(a, min(b, width)):
                cells[i] = mark if cells[i] == "." else "#"
        lines.append(f"{resource:<{label_w}}|{''.join(cells)}|")
    return "\n".join(lines)
