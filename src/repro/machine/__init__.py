"""Simulated MIMD-DM machine: cost models and the distributed executive."""

from .costs import FAST_TEST, T9000, CostModel
from .executive import (
    Executive,
    ExecutiveError,
    IterationRecord,
    Profile,
    RunReport,
    simulate,
)
from .trace import Span, Trace, busy_statistics, render_gantt

__all__ = [
    "CostModel",
    "T9000",
    "FAST_TEST",
    "Executive",
    "ExecutiveError",
    "Profile",
    "IterationRecord",
    "RunReport",
    "simulate",
    "Span",
    "Trace",
    "busy_statistics",
    "render_gantt",
]
