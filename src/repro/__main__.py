"""``python -m repro`` — the SKiPPER command-line driver."""

import sys

from .cli import main

sys.exit(main())
