"""SKiPPER reproduction: a skeleton-based parallel programming environment
for real-time image processing applications.

Reimplements the complete system of Serot, Ginhac & Derutin (PaCT-99):
the skeleton repertoire (scm, df, tf, itermem) with declarative and
operational definitions, the mini-ML front end with polymorphic type
checking, process-network-template expansion, SynDEx-style mapping, code
generation, and a discrete-event MIMD-DM machine simulator, plus the
vision substrate and the real-time vehicle-tracking case study.
"""

from . import backends, core, machine, minicaml, pipeline, pnt, syndex, tracking, vision
from .backends import Backend, BackendError, backend_names, get_backend, list_backends
from .core import (
    EndOfStream,
    FunctionTable,
    ProgramBuilder,
    TaskOutcome,
    df,
    emulate,
    emulate_once,
    itermem,
    scm,
    tf,
)
from .machine import FAST_TEST, T9000, CostModel, Executive, RunReport, simulate
from .minicaml import CompiledProgram, compile_source, typecheck_source
from .pipeline import BuiltApplication, build
from .pnt import ProcessGraph, expand_program
from .syndex import Mapping, distribute, ring

__version__ = "0.1.0"

__all__ = [
    "core",
    "minicaml",
    "pnt",
    "syndex",
    "machine",
    "vision",
    "tracking",
    "pipeline",
    "backends",
    "Backend",
    "BackendError",
    "get_backend",
    "list_backends",
    "backend_names",
    "scm",
    "df",
    "tf",
    "itermem",
    "TaskOutcome",
    "EndOfStream",
    "FunctionTable",
    "ProgramBuilder",
    "emulate",
    "emulate_once",
    "compile_source",
    "typecheck_source",
    "CompiledProgram",
    "expand_program",
    "ProcessGraph",
    "ring",
    "distribute",
    "Mapping",
    "simulate",
    "Executive",
    "RunReport",
    "CostModel",
    "T9000",
    "FAST_TEST",
    "build",
    "BuiltApplication",
    "__version__",
]
