"""White-line detection for the road-following application.

SKiPPER's second demo application is "road-following by white line
detection" [Ginhac '99].  We reproduce it as: gradient thresholding to
candidate line pixels, then a Hough transform voting for (rho, theta)
line parameters, with per-band partial accumulators so the application
parallelises under ``scm`` (accumulators merge by addition — an
associative, commutative fold, as the skeleton contract requires).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .image import Image
from .ops import gradient_magnitude, threshold

__all__ = ["Line", "hough_accumulate", "hough_peaks", "detect_lines"]

_THETA_BINS = 180


@dataclass(frozen=True)
class Line:
    """A line in normal form: rho = col*cos(theta) + row*sin(theta)."""

    rho: float
    theta: float  # radians, in [0, pi)
    votes: int

    def point_distance(self, row: float, col: float) -> float:
        """Perpendicular distance from (row, col) to the line."""
        return abs(col * math.cos(self.theta) + row * math.sin(self.theta) - self.rho)


def hough_accumulate(
    binary: Image, *, rho_step: float = 1.0, origin: Tuple[int, int] = (0, 0)
) -> np.ndarray:
    """Vote every foreground pixel into a (rho, theta) accumulator.

    ``origin`` places the piece in global coordinates so per-band partial
    accumulators from an ``scm`` split sum to the full-image accumulator —
    the merge-by-addition property the tests verify.

    The rho axis is diagonal-sized for a 512x512 reference frame so all
    pieces share one accumulator geometry.
    """
    max_rho = 1024.0
    n_rho = int(2 * max_rho / rho_step) + 1
    acc = np.zeros((n_rho, _THETA_BINS), dtype=np.int64)
    rows, cols = np.nonzero(binary.pixels)
    if rows.size == 0:
        return acc
    rows = rows.astype(np.float64) + origin[0]
    cols = cols.astype(np.float64) + origin[1]
    thetas = np.arange(_THETA_BINS) * (math.pi / _THETA_BINS)
    cos_t, sin_t = np.cos(thetas), np.sin(thetas)
    for t in range(_THETA_BINS):
        rho = cols * cos_t[t] + rows * sin_t[t]
        idx = np.round((rho + max_rho) / rho_step).astype(np.int64)
        np.clip(idx, 0, n_rho - 1, out=idx)
        np.add.at(acc[:, t], idx, 1)
    return acc


def hough_peaks(
    acc: np.ndarray, k: int, *, min_votes: int = 1, rho_step: float = 1.0
) -> List[Line]:
    """Top-``k`` accumulator peaks with non-maximum suppression (3x3)."""
    max_rho = (acc.shape[0] - 1) * rho_step / 2
    padded = np.pad(acc, 1, constant_values=-1)
    neighbourhood_max = np.stack(
        [
            padded[1 + dr : 1 + dr + acc.shape[0], 1 + dc : 1 + dc + acc.shape[1]]
            for dr in (-1, 0, 1)
            for dc in (-1, 0, 1)
            if (dr, dc) != (0, 0)
        ]
    ).max(axis=0)
    is_peak = (acc >= neighbourhood_max) & (acc >= min_votes)
    peaks = np.argwhere(is_peak)
    if peaks.size == 0:
        return []
    votes = acc[peaks[:, 0], peaks[:, 1]]
    order = np.argsort(-votes)[:k]
    lines = []
    for i in order:
        r_idx, t_idx = peaks[i]
        lines.append(
            Line(
                rho=float(r_idx * rho_step - max_rho),
                theta=float(t_idx * math.pi / _THETA_BINS),
                votes=int(votes[i]),
            )
        )
    return lines


def detect_lines(
    frame: Image, k: int = 2, *, edge_level: int = 100, min_votes: int = 30
) -> List[Line]:
    """End-to-end white-line detector: gradient -> threshold -> Hough."""
    edges = threshold(gradient_magnitude(frame), edge_level)
    acc = hough_accumulate(edges)
    return hough_peaks(acc, k, min_votes=min_votes)
