"""Low-level pixel operations.

These are the "application specific sequential functions written in C" of
the paper, reimplemented in Python/numpy: thresholding, histogramming,
convolution and gradient operators.  They are deliberately *pure*
functions over :class:`~repro.vision.image.Image` so the coordination
layer (skeletons) can treat them as opaque compute kernels — exactly the
contract SKiPPER imposes on its C functions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .image import Image

__all__ = [
    "threshold",
    "histogram",
    "otsu_threshold",
    "equalization_lut",
    "apply_lut",
    "equalize",
    "convolve",
    "sobel",
    "gradient_magnitude",
    "box_blur",
    "invert",
    "add_noise",
]


def threshold(image: Image, level: int, *, above: int = 255, below: int = 0) -> Image:
    """Binarise ``image``: pixels strictly above ``level`` map to ``above``.

    The paper detects marks as "connected groups of pixels with values
    above a given threshold" (section 4); this is that predicate.
    """
    out = np.where(image.pixels > level, above, below).astype(np.uint8)
    return Image(out)


def histogram(image: Image) -> np.ndarray:
    """256-bin intensity histogram (int64 counts)."""
    return np.bincount(image.pixels.ravel(), minlength=256).astype(np.int64)


def otsu_threshold(image: Image) -> int:
    """Otsu's optimal global threshold.

    Used by the mark detector when no fixed threshold is supplied:
    maximises inter-class variance over the intensity histogram.
    """
    hist = histogram(image).astype(np.float64)
    total = hist.sum()
    if total == 0:
        return 0
    prob = hist / total
    omega = np.cumsum(prob)
    mu = np.cumsum(prob * np.arange(256))
    mu_total = mu[-1]
    # Inter-class variance; guard the 0/0 cases at the extremes.
    denom = omega * (1.0 - omega)
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma_b = np.where(denom > 0, (mu_total * omega - mu) ** 2 / denom, 0.0)
    return int(np.argmax(sigma_b))


def equalization_lut(hist: np.ndarray) -> np.ndarray:
    """Histogram-equalisation lookup table from a 256-bin histogram.

    Maps the cumulative distribution onto the full 8-bit range (the
    classic contrast enhancement).  Returns a uint8 LUT of 256 entries;
    an all-zero histogram yields the identity LUT.
    """
    hist = np.asarray(hist, dtype=np.float64)
    if hist.shape != (256,):
        raise ValueError(f"histogram must have 256 bins, got {hist.shape}")
    total = hist.sum()
    if total == 0:
        return np.arange(256, dtype=np.uint8)
    cdf = np.cumsum(hist)
    cdf_min = cdf[np.flatnonzero(cdf)[0]]
    denom = total - cdf_min
    if denom <= 0:  # single-intensity image
        return np.arange(256, dtype=np.uint8)
    lut = np.round((cdf - cdf_min) / denom * 255.0)
    return np.clip(lut, 0, 255).astype(np.uint8)


def apply_lut(image: Image, lut: np.ndarray) -> Image:
    """Remap intensities through a 256-entry lookup table."""
    lut = np.asarray(lut, dtype=np.uint8)
    if lut.shape != (256,):
        raise ValueError(f"LUT must have 256 entries, got {lut.shape}")
    return Image(lut[image.pixels])


def equalize(image: Image) -> Image:
    """Whole-image histogram equalisation (the sequential reference)."""
    return apply_lut(image, equalization_lut(histogram(image)))


def convolve(image: Image, kernel: np.ndarray) -> Image:
    """2-D convolution with zero padding, clamped to [0, 255].

    A direct (non-FFT) implementation matching what a hand-written C
    kernel on a Transputer would do; cost models in
    :mod:`repro.machine.costs` charge per output pixel per tap.
    """
    k = np.asarray(kernel, dtype=np.float64)
    if k.ndim != 2 or k.shape[0] % 2 == 0 or k.shape[1] % 2 == 0:
        raise ValueError("kernel must be 2-D with odd dimensions")
    kr, kc = k.shape[0] // 2, k.shape[1] // 2
    src = np.pad(image.pixels.astype(np.float64), ((kr, kr), (kc, kc)))
    out = np.zeros(image.shape, dtype=np.float64)
    nrows, ncols = image.shape
    for dr in range(k.shape[0]):
        for dc in range(k.shape[1]):
            out += k[dr, dc] * src[dr : dr + nrows, dc : dc + ncols]
    return Image(np.clip(out, 0, 255).astype(np.uint8))


_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64)
_SOBEL_Y = _SOBEL_X.T


def sobel(image: Image) -> Tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel gradients (float64, unclipped)."""
    src = np.pad(image.pixels.astype(np.float64), 1)
    nrows, ncols = image.shape
    gx = np.zeros(image.shape)
    gy = np.zeros(image.shape)
    for dr in range(3):
        for dc in range(3):
            window = src[dr : dr + nrows, dc : dc + ncols]
            gx += _SOBEL_X[dr, dc] * window
            gy += _SOBEL_Y[dr, dc] * window
    return gx, gy


def gradient_magnitude(image: Image) -> Image:
    """Sobel gradient magnitude, scaled to 8 bits."""
    gx, gy = sobel(image)
    mag = np.hypot(gx, gy)
    peak = mag.max()
    if peak > 0:
        mag = mag * (255.0 / peak)
    return Image(mag.astype(np.uint8))


def box_blur(image: Image, radius: int = 1) -> Image:
    """Mean filter over a (2r+1)^2 box."""
    size = 2 * radius + 1
    kernel = np.full((size, size), 1.0 / (size * size))
    return convolve(image, kernel)


def invert(image: Image) -> Image:
    return Image(255 - image.pixels)


def add_noise(image: Image, sigma: float, rng: np.random.Generator) -> Image:
    """Additive Gaussian noise, clamped; used by the synthetic video source."""
    noisy = image.pixels.astype(np.float64) + rng.normal(0.0, sigma, image.shape)
    return Image(np.clip(noisy, 0, 255).astype(np.uint8))
