"""Binary mathematical morphology.

Standard low-level vision operators of the SKiPPER era's toolbox —
erosion, dilation, opening, closing — used to clean detection masks
before labelling (speck removal, hole filling).  All operate on binary
images (non-zero = foreground) with a rectangular structuring element,
and all are pure functions, so they parallelise under ``scm`` with a
halo equal to the structuring-element radius.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .image import Image

__all__ = ["erode", "dilate", "opening", "closing", "morphological_gradient"]


def _check_element(size: Tuple[int, int]) -> Tuple[int, int]:
    rows, cols = size
    if rows <= 0 or cols <= 0 or rows % 2 == 0 or cols % 2 == 0:
        raise ValueError(
            f"structuring element must have odd positive sides, got {size}"
        )
    return rows, cols


def _neighbourhood_stack(binary: np.ndarray, size: Tuple[int, int],
                         pad_value: int) -> np.ndarray:
    """All shifted copies of ``binary`` under the element, stacked."""
    rows, cols = size
    rr, cc = rows // 2, cols // 2
    padded = np.pad(binary, ((rr, rr), (cc, cc)), constant_values=pad_value)
    nrows, ncols = binary.shape
    return np.stack(
        [
            padded[dr : dr + nrows, dc : dc + ncols]
            for dr in range(rows)
            for dc in range(cols)
        ]
    )


def erode(image: Image, size: Tuple[int, int] = (3, 3)) -> Image:
    """Binary erosion: a pixel survives iff its whole neighbourhood is set.

    Outside the frame counts as foreground (the adjoint convention),
    making erosion/dilation a proper adjunction on the finite frame:
    opening/closing are idempotent and erosion is the De Morgan dual of
    dilation.
    """
    size = _check_element(size)
    fg = (image.pixels > 0).astype(np.uint8)
    stack = _neighbourhood_stack(fg, size, pad_value=1)
    return Image((stack.min(axis=0) * 255).astype(np.uint8))


def dilate(image: Image, size: Tuple[int, int] = (3, 3)) -> Image:
    """Binary dilation: a pixel is set iff any neighbour is set."""
    size = _check_element(size)
    fg = (image.pixels > 0).astype(np.uint8)
    stack = _neighbourhood_stack(fg, size, pad_value=0)
    return Image((stack.max(axis=0) * 255).astype(np.uint8))


def opening(image: Image, size: Tuple[int, int] = (3, 3)) -> Image:
    """Erosion then dilation: removes specks smaller than the element."""
    return dilate(erode(image, size), size)


def closing(image: Image, size: Tuple[int, int] = (3, 3)) -> Image:
    """Dilation then erosion: fills holes smaller than the element."""
    return erode(dilate(image, size), size)


def morphological_gradient(image: Image, size: Tuple[int, int] = (3, 3)) -> Image:
    """Dilation minus erosion: the boundary of each component."""
    d = dilate(image, size).pixels.astype(np.int16)
    e = erode(image, size).pixels.astype(np.int16)
    return Image(np.clip(d - e, 0, 255).astype(np.uint8))
