"""Feature extraction: marks, centroids and englobing frames.

Section 4 of the paper: "Each mark is then characterized by computing its
center of gravity and an englobing frame."  A :class:`Mark` bundles those
two characterisations plus the pixel count, and is the unit of data
flowing through the ``df`` skeleton in the case study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .image import Image, Rect
from .labelling import bounding_rect, label
from .ops import otsu_threshold, threshold

__all__ = ["Mark", "centroid", "extract_marks"]


@dataclass(frozen=True)
class Mark:
    """A detected visual mark.

    Coordinates are *global* image coordinates (the detector translates
    window-local results back into frame coordinates so the tracker can
    reason about the whole scene).
    """

    center: Tuple[float, float]  # (row, col) center of gravity
    frame: Rect  # englobing frame
    pixel_count: int

    @property
    def row(self) -> float:
        return self.center[0]

    @property
    def col(self) -> float:
        return self.center[1]

    def translated(self, drow: int, dcol: int) -> "Mark":
        """The same mark shifted by (drow, dcol)."""
        return Mark(
            (self.center[0] + drow, self.center[1] + dcol),
            Rect(self.frame.row + drow, self.frame.col + dcol,
                 self.frame.height, self.frame.width),
            self.pixel_count,
        )

    def distance_to(self, other: "Mark") -> float:
        dr = self.row - other.row
        dc = self.col - other.col
        return float(np.hypot(dr, dc))


def centroid(mask: np.ndarray) -> Tuple[float, float]:
    """Center of gravity (row, col) of a boolean mask."""
    rows, cols = np.nonzero(mask)
    if rows.size == 0:
        raise ValueError("centroid of an empty mask")
    return (float(rows.mean()), float(cols.mean()))


def extract_marks(
    window: Image,
    *,
    level: Optional[int] = None,
    min_pixels: int = 1,
    connectivity: int = 8,
    origin: Tuple[int, int] = (0, 0),
) -> List[Mark]:
    """Detect marks in a window.

    Marks are connected groups of pixels strictly above ``level`` (Otsu's
    threshold when ``level`` is None).  Components smaller than
    ``min_pixels`` are rejected as noise.  ``origin`` is the (row, col) of
    the window's top-left corner in the full frame; returned marks use
    global coordinates.
    """
    if window.nrows == 0 or window.ncols == 0:
        return []
    lvl = otsu_threshold(window) if level is None else level
    binary = threshold(window, lvl)
    labels, count = label(binary, connectivity)
    marks: List[Mark] = []
    for k in range(1, count + 1):
        mask = labels == k
        pixels = int(mask.sum())
        if pixels < min_pixels:
            continue
        marks.append(
            Mark(centroid(mask), bounding_rect(mask), pixels).translated(*origin)
        )
    return marks
