"""Core image container for the vision substrate.

SKiPPER's sequential C functions exchange iconic data (gray-level images)
and feature data (lists of marks, windows).  This module provides the
``Image`` type used throughout the reproduction: a thin, explicit wrapper
around a 2-D ``numpy.uint8`` array with row-major (row, col) indexing,
mirroring the ``img`` C struct of the paper's prototypes
(``void read_img(int nrows, int ncols, img *im)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["Image", "Rect"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in image coordinates.

    ``row``/``col`` locate the top-left corner; the rectangle spans rows
    ``row .. row + height - 1`` and columns ``col .. col + width - 1``.
    This is the "englobing frame" of the paper (section 4).
    """

    row: int
    col: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.height < 0 or self.width < 0:
            raise ValueError(f"negative rectangle extent: {self}")

    @property
    def row_end(self) -> int:
        """One past the last row covered."""
        return self.row + self.height

    @property
    def col_end(self) -> int:
        """One past the last column covered."""
        return self.col + self.width

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def center(self) -> Tuple[float, float]:
        """(row, col) geometric center."""
        return (self.row + (self.height - 1) / 2.0, self.col + (self.width - 1) / 2.0)

    def is_empty(self) -> bool:
        return self.height == 0 or self.width == 0

    def contains(self, row: float, col: float) -> bool:
        return self.row <= row < self.row_end and self.col <= col < self.col_end

    def intersect(self, other: "Rect") -> "Rect":
        """Intersection rectangle (possibly empty)."""
        r0 = max(self.row, other.row)
        c0 = max(self.col, other.col)
        r1 = min(self.row_end, other.row_end)
        c1 = min(self.col_end, other.col_end)
        return Rect(r0, c0, max(0, r1 - r0), max(0, c1 - c0))

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both operands."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        r0 = min(self.row, other.row)
        c0 = min(self.col, other.col)
        r1 = max(self.row_end, other.row_end)
        c1 = max(self.col_end, other.col_end)
        return Rect(r0, c0, r1 - r0, c1 - c0)

    def inflate(self, margin: int) -> "Rect":
        """Grow the rectangle by ``margin`` pixels on every side."""
        return Rect(
            self.row - margin,
            self.col - margin,
            self.height + 2 * margin,
            self.width + 2 * margin,
        )

    def clip(self, nrows: int, ncols: int) -> "Rect":
        """Clip to an ``nrows`` x ``ncols`` image."""
        r0 = min(max(self.row, 0), nrows)
        c0 = min(max(self.col, 0), ncols)
        r1 = min(max(self.row_end, 0), nrows)
        c1 = min(max(self.col_end, 0), ncols)
        return Rect(r0, c0, max(0, r1 - r0), max(0, c1 - c0))


class Image:
    """A gray-level image (8-bit, row-major).

    The wrapper keeps the pixel buffer explicit (``.pixels``) while adding
    the small set of operations the coordination layer needs: sub-window
    extraction, in-place blitting, and structural equality.  All heavy
    pixel processing lives in :mod:`repro.vision.ops`.
    """

    __slots__ = ("pixels",)

    def __init__(self, pixels: np.ndarray):
        arr = np.asarray(pixels)
        if arr.ndim != 2:
            raise ValueError(f"Image requires a 2-D array, got shape {arr.shape}")
        self.pixels = arr.astype(np.uint8, copy=False)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "Image":
        return cls(np.zeros((nrows, ncols), dtype=np.uint8))

    @classmethod
    def full(cls, nrows: int, ncols: int, value: int) -> "Image":
        return cls(np.full((nrows, ncols), value, dtype=np.uint8))

    @classmethod
    def from_list(cls, rows) -> "Image":
        return cls(np.asarray(rows, dtype=np.uint8))

    # -- basic geometry ----------------------------------------------------

    @property
    def nrows(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def ncols(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def rect(self) -> Rect:
        """Rectangle covering the whole image."""
        return Rect(0, 0, self.nrows, self.ncols)

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (used by communication cost models)."""
        return int(self.pixels.nbytes)

    # -- sub-images --------------------------------------------------------

    def crop(self, rect: Rect) -> "Image":
        """Extract a copy of the pixels under ``rect`` (clipped to bounds)."""
        r = rect.clip(self.nrows, self.ncols)
        return Image(self.pixels[r.row : r.row_end, r.col : r.col_end].copy())

    def view(self, rect: Rect) -> np.ndarray:
        """A (non-copying) view of the pixels under ``rect``."""
        r = rect.clip(self.nrows, self.ncols)
        return self.pixels[r.row : r.row_end, r.col : r.col_end]

    def blit(self, rect: Rect, patch: "Image") -> None:
        """Copy ``patch`` into place at ``rect`` (clipped to bounds)."""
        r = rect.clip(self.nrows, self.ncols)
        self.pixels[r.row : r.row_end, r.col : r.col_end] = patch.pixels[
            : r.height, : r.width
        ]

    def copy(self) -> "Image":
        return Image(self.pixels.copy())

    # -- misc ---------------------------------------------------------------

    def __getitem__(self, idx) -> int:
        return self.pixels[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __hash__(self) -> int:  # images are mutable: identity hash
        return id(self)

    def __repr__(self) -> str:
        return f"Image({self.nrows}x{self.ncols})"

    def rows(self) -> Iterator[np.ndarray]:
        return iter(self.pixels)
