"""Windows of interest.

The tracker never scans whole frames: it processes a *list of windows*
whose number and sizes vary with the scene (3/6/9 windows in normal
tracking, n full-frame tiles during reinitialisation — section 4).  A
:class:`Window` pairs a rectangle with its extracted pixels so it can be
shipped to a ``df`` worker as a self-contained data packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .image import Image, Rect

__all__ = ["Window", "extract_window", "tile_image", "windows_around"]


@dataclass(frozen=True)
class Window:
    """A window of interest: its frame placement plus a pixel copy.

    ``rect`` is expressed in full-frame coordinates; ``pixels`` is the
    cropped sub-image (already clipped to the frame bounds).
    """

    rect: Rect
    pixels: Image

    @property
    def origin(self) -> Tuple[int, int]:
        return (self.rect.row, self.rect.col)

    @property
    def nbytes(self) -> int:
        """Payload size, used by communication cost models."""
        return self.pixels.nbytes

    @property
    def area(self) -> int:
        return self.rect.area


def extract_window(frame: Image, rect: Rect) -> Window:
    """Crop ``rect`` (clipped to the frame) into a shippable window."""
    clipped = rect.clip(frame.nrows, frame.ncols)
    return Window(clipped, frame.crop(clipped))


def tile_image(frame: Image, n: int) -> List[Window]:
    """Divide the frame into ``n`` equally-sized sub-windows.

    This is the reinitialisation strategy of section 4: "windows of
    interests are obtained by dividing up the whole image into n
    equally-sized sub-windows, where n is typically taken equal to the
    total number of processors".  The frame is cut into horizontal bands
    of (almost) equal height; remainder rows go to the first bands so the
    tiling always covers the frame exactly.
    """
    if n <= 0:
        raise ValueError(f"tile count must be positive, got {n}")
    n = min(n, frame.nrows) or 1
    base = frame.nrows // n
    extra = frame.nrows % n
    windows: List[Window] = []
    row = 0
    for i in range(n):
        height = base + (1 if i < extra else 0)
        rect = Rect(row, 0, height, frame.ncols)
        windows.append(extract_window(frame, rect))
        row += height
    return windows


def windows_around(
    frame: Image, rects: List[Rect], margin: int = 0
) -> List[Window]:
    """Extract (optionally inflated) windows around predicted rectangles."""
    return [extract_window(frame, r.inflate(margin)) for r in rects]
