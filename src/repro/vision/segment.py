"""Quadtree split-and-merge segmentation.

The paper names divide-and-conquer algorithms as the ``tf`` skeleton's
main use (§2), and its companion work on the Transvision machine used
region-based segmentation [Legrand et al., CAMP'93].  This module
provides the real algorithm: recursive quadtree *splitting* of regions
whose intensity variance exceeds a threshold, and *merging* of adjacent
leaves with similar statistics — exactly the workload shape ``tf``
parallelises (each split spawns four sub-regions as new packets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .image import Image, Rect
from .labelling import UnionFind

__all__ = [
    "RegionStats",
    "region_stats",
    "is_homogeneous",
    "split_region",
    "quadtree_leaves",
    "merge_adjacent",
    "segment",
]


@dataclass(frozen=True)
class RegionStats:
    """Intensity statistics of one rectangular region."""

    rect: Rect
    mean: float
    variance: float

    @property
    def area(self) -> int:
        return self.rect.area


def region_stats(image: Image, rect: Rect) -> RegionStats:
    """Mean/variance of the pixels under ``rect``."""
    view = image.view(rect).astype(np.float64)
    if view.size == 0:
        return RegionStats(rect, 0.0, 0.0)
    return RegionStats(rect, float(view.mean()), float(view.var()))


def is_homogeneous(
    image: Image, rect: Rect, *, var_threshold: float = 100.0,
    min_size: int = 4,
) -> bool:
    """The split predicate: small regions and low-variance regions stop."""
    if rect.height <= min_size or rect.width <= min_size:
        return True
    return region_stats(image, rect).variance <= var_threshold


def split_region(rect: Rect) -> List[Rect]:
    """The four quadrants of ``rect`` (odd sizes give uneven quadrants)."""
    half_h = rect.height // 2
    half_w = rect.width // 2
    return [
        Rect(rect.row, rect.col, half_h, half_w),
        Rect(rect.row, rect.col + half_w, half_h, rect.width - half_w),
        Rect(rect.row + half_h, rect.col, rect.height - half_h, half_w),
        Rect(
            rect.row + half_h,
            rect.col + half_w,
            rect.height - half_h,
            rect.width - half_w,
        ),
    ]


def quadtree_leaves(
    image: Image,
    *,
    var_threshold: float = 100.0,
    min_size: int = 4,
) -> List[RegionStats]:
    """Sequential reference: all homogeneous leaves of the quadtree.

    This is the declarative-semantics oracle for the ``tf`` version
    (whose worker performs exactly one ``is_homogeneous``/``split_region``
    step per packet).
    """
    leaves: List[RegionStats] = []
    stack = [image.rect]
    while stack:
        rect = stack.pop()
        if is_homogeneous(
            image, rect, var_threshold=var_threshold, min_size=min_size
        ):
            leaves.append(region_stats(image, rect))
        else:
            stack.extend(split_region(rect))
    leaves.sort(key=lambda s: (s.rect.row, s.rect.col, s.rect.height))
    return leaves


def _adjacent(a: Rect, b: Rect) -> bool:
    """Edge adjacency (sharing a boundary segment, not just a corner)."""
    row_overlap = min(a.row_end, b.row_end) - max(a.row, b.row)
    col_overlap = min(a.col_end, b.col_end) - max(a.col, b.col)
    touches_vertically = (
        (a.row_end == b.row or b.row_end == a.row) and col_overlap > 0
    )
    touches_horizontally = (
        (a.col_end == b.col or b.col_end == a.col) and row_overlap > 0
    )
    return touches_vertically or touches_horizontally


def merge_adjacent(
    leaves: Sequence[RegionStats], *, mean_threshold: float = 12.0
) -> List[List[RegionStats]]:
    """The merge phase: group adjacent leaves with similar means.

    Returns the leaf groups (segments), each a list of RegionStats,
    ordered by top-left corner.
    """
    uf = UnionFind()
    for _ in leaves:
        uf.make_set()
    for i, a in enumerate(leaves):
        for j in range(i + 1, len(leaves)):
            b = leaves[j]
            if abs(a.mean - b.mean) <= mean_threshold and _adjacent(
                a.rect, b.rect
            ):
                uf.union(i, j)
    groups: Dict[int, List[RegionStats]] = {}
    for i, leaf in enumerate(leaves):
        groups.setdefault(uf.find(i), []).append(leaf)
    segments = list(groups.values())
    segments.sort(key=lambda g: (g[0].rect.row, g[0].rect.col))
    return segments


def segment(
    image: Image,
    *,
    var_threshold: float = 100.0,
    min_size: int = 4,
    mean_threshold: float = 12.0,
) -> np.ndarray:
    """Full split-and-merge segmentation: a label per pixel (1-based)."""
    leaves = quadtree_leaves(
        image, var_threshold=var_threshold, min_size=min_size
    )
    segments = merge_adjacent(leaves, mean_threshold=mean_threshold)
    labels = np.zeros(image.shape, dtype=np.int32)
    for k, group in enumerate(segments, start=1):
        for leaf in group:
            r = leaf.rect
            labels[r.row : r.row_end, r.col : r.col_end] = k
    return labels
