"""Vision substrate: images, pixel operations, features and decompositions.

These are the sequential building blocks that SKiPPER coordinates - the
Python equivalents of the paper's application-specific C functions.
"""

from .image import Image, Rect
from .ops import (
    add_noise,
    apply_lut,
    equalization_lut,
    equalize,
    box_blur,
    convolve,
    gradient_magnitude,
    histogram,
    invert,
    otsu_threshold,
    sobel,
    threshold,
)
from .labelling import (
    UnionFind,
    bounding_rect,
    component_count,
    components,
    label,
    label_flood,
)
from .features import Mark, centroid, extract_marks
from .windows import Window, extract_window, tile_image, windows_around
from .geometry import (
    Domain,
    merge_image,
    merge_reduce,
    scm_apply,
    split_blocks,
    split_cols,
    split_rows,
)
from .lines import Line, detect_lines, hough_accumulate, hough_peaks
from .synth import checkerboard, draw_blob, road_scene, scene_with_blobs
from .morphology import closing, dilate, erode, morphological_gradient, opening
from .segment import (
    RegionStats,
    is_homogeneous,
    merge_adjacent,
    quadtree_leaves,
    region_stats,
    segment,
    split_region,
)

__all__ = [
    "Image",
    "Rect",
    "threshold",
    "histogram",
    "otsu_threshold",
    "equalization_lut",
    "apply_lut",
    "equalize",
    "convolve",
    "sobel",
    "gradient_magnitude",
    "box_blur",
    "invert",
    "add_noise",
    "UnionFind",
    "label",
    "label_flood",
    "component_count",
    "components",
    "bounding_rect",
    "Mark",
    "centroid",
    "extract_marks",
    "Window",
    "extract_window",
    "tile_image",
    "windows_around",
    "Domain",
    "split_rows",
    "split_cols",
    "split_blocks",
    "merge_image",
    "merge_reduce",
    "scm_apply",
    "Line",
    "hough_accumulate",
    "hough_peaks",
    "detect_lines",
    "draw_blob",
    "scene_with_blobs",
    "road_scene",
    "checkerboard",
    "erode",
    "dilate",
    "opening",
    "closing",
    "morphological_gradient",
    "RegionStats",
    "region_stats",
    "is_homogeneous",
    "split_region",
    "quadtree_leaves",
    "merge_adjacent",
    "segment",
]
