"""Geometric domain decomposition for the ``scm`` skeleton.

The first class of patterns the paper identifies is "geometric processing
of iconic data": the input image is decomposed into sub-domains, each
sub-domain is processed independently with the same function, and the
final result is obtained by merging those computed on each sub-domain
(section 2).  This module supplies the standard split/merge pairs:

* row-band / column-band splits (with optional overlap for stencil ops);
* block (grid) splits;
* the inverse merges reassembling an image of the original geometry.

Splits return :class:`Domain` values which remember where each piece came
from, so merges are self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from .image import Image, Rect

__all__ = [
    "Domain",
    "split_rows",
    "split_cols",
    "split_blocks",
    "merge_image",
    "merge_reduce",
    "scm_apply",
]


@dataclass(frozen=True)
class Domain:
    """One piece of a geometric decomposition.

    ``core`` is the sub-rectangle of the original image this piece is
    responsible for; ``rect`` is the possibly-larger extracted region
    (``rect`` ⊇ ``core`` when a halo/overlap was requested so stencil
    operators see their neighbourhoods).  ``pixels`` covers ``rect``.
    """

    rect: Rect
    core: Rect
    pixels: Image

    @property
    def core_in_piece(self) -> Rect:
        """``core`` expressed in piece-local coordinates."""
        return Rect(
            self.core.row - self.rect.row,
            self.core.col - self.rect.col,
            self.core.height,
            self.core.width,
        )

    @property
    def nbytes(self) -> int:
        return self.pixels.nbytes


def _band_bounds(total: int, n: int) -> List[Rect]:
    """Split ``total`` units into ``n`` contiguous spans of near-equal size."""
    base, extra = divmod(total, n)
    spans = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        spans.append((start, size))
        start += size
    return spans


def split_rows(image: Image, n: int, overlap: int = 0) -> List[Domain]:
    """Split into ``n`` horizontal bands, each with an ``overlap``-row halo."""
    if n <= 0:
        raise ValueError(f"split count must be positive, got {n}")
    n = min(n, image.nrows) or 1
    domains = []
    for start, size in _band_bounds(image.nrows, n):
        core = Rect(start, 0, size, image.ncols)
        rect = core.inflate(overlap).intersect(image.rect) if overlap else core
        # inflate() also widens columns; restore full-width bands.
        rect = Rect(rect.row, 0, rect.height, image.ncols)
        domains.append(Domain(rect, core, image.crop(rect)))
    return domains


def split_cols(image: Image, n: int, overlap: int = 0) -> List[Domain]:
    """Split into ``n`` vertical bands, each with an ``overlap``-column halo."""
    if n <= 0:
        raise ValueError(f"split count must be positive, got {n}")
    n = min(n, image.ncols) or 1
    domains = []
    for start, size in _band_bounds(image.ncols, n):
        core = Rect(0, start, image.nrows, size)
        rect = core.inflate(overlap).intersect(image.rect) if overlap else core
        rect = Rect(0, rect.col, image.nrows, rect.width)
        domains.append(Domain(rect, core, image.crop(rect)))
    return domains


def split_blocks(image: Image, nrows: int, ncols: int, overlap: int = 0) -> List[Domain]:
    """Split into an ``nrows`` x ``ncols`` grid of blocks (row-major order)."""
    if nrows <= 0 or ncols <= 0:
        raise ValueError("grid dimensions must be positive")
    nrows = min(nrows, image.nrows) or 1
    ncols = min(ncols, image.ncols) or 1
    domains = []
    for rstart, rsize in _band_bounds(image.nrows, nrows):
        for cstart, csize in _band_bounds(image.ncols, ncols):
            core = Rect(rstart, cstart, rsize, csize)
            rect = core.inflate(overlap).intersect(image.rect) if overlap else core
            domains.append(Domain(rect, core, image.crop(rect)))
    return domains


def merge_image(shape, pieces: Sequence[Domain], results: Sequence[Image]) -> Image:
    """Reassemble processed pieces into an image of the original geometry.

    ``results[i]`` must have the same shape as ``pieces[i].pixels``; only
    the ``core`` region of each result is copied out, discarding halos.
    """
    if len(pieces) != len(results):
        raise ValueError("pieces and results must align")
    out = Image.zeros(*shape)
    for dom, res in zip(pieces, results):
        local = dom.core_in_piece
        out.blit(dom.core, res.crop(local))
    return out


def merge_reduce(results: Sequence, combine: Callable, zero):
    """Fold per-domain scalar/feature results (e.g. per-band histograms)."""
    acc = zero
    for r in results:
        acc = combine(acc, r)
    return acc


def scm_apply(
    image: Image,
    n: int,
    compute: Callable[[Domain], Image],
    *,
    overlap: int = 0,
    split: Callable[..., List[Domain]] = split_rows,
) -> Image:
    """Reference sequential Split-Compute-Merge over an image.

    Mirrors the declarative semantics of the ``scm`` skeleton for the
    image-to-image case; used as an oracle by tests and by the sequential
    emulator.
    """
    pieces = split(image, n, overlap)
    results = [compute(d) for d in pieces]
    return merge_image(image.shape, pieces, results)
