"""Connected-component labelling (CCL).

The paper's mark detector finds "connected groups of pixels with values
above a given threshold" (section 4), and CCL is also SKiPPER's canonical
``scm`` demo application [Ginhac et al., MVA'98].  Two implementations are
provided:

* :func:`label` — the classical two-pass algorithm with a union-find
  equivalence table, as would be hand-coded in C on the Transvision
  machine;
* :func:`label_flood` — a simple flood-fill reference used by the test
  suite as an independent oracle.

Both support 4- and 8-connectivity.  Labels are positive consecutive
integers starting at 1; background (zero pixels) stays 0.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .image import Image, Rect

__all__ = ["UnionFind", "label", "label_flood", "component_count", "components"]


class UnionFind:
    """Array-based disjoint-set with path compression and union by rank.

    The provisional-label equivalence table of the two-pass algorithm.
    """

    __slots__ = ("parent", "rank")

    def __init__(self) -> None:
        self.parent: List[int] = []
        self.rank: List[int] = []

    def make_set(self) -> int:
        """Create a singleton set; returns its id."""
        idx = len(self.parent)
        self.parent.append(idx)
        self.rank.append(0)
        return idx

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        # Path compression.
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return ra

    def __len__(self) -> int:
        return len(self.parent)


def _neighbour_offsets(connectivity: int) -> Tuple[Tuple[int, int], ...]:
    """Offsets of already-scanned neighbours in raster order."""
    if connectivity == 4:
        return ((-1, 0), (0, -1))
    if connectivity == 8:
        return ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")


def label(binary: Image, connectivity: int = 8) -> Tuple[np.ndarray, int]:
    """Two-pass connected-component labelling.

    Returns ``(labels, count)`` where ``labels`` is an ``int32`` array of
    the same shape as ``binary`` holding labels ``1..count`` on foreground
    (non-zero) pixels and 0 on background.
    """
    offsets = _neighbour_offsets(connectivity)
    pix = binary.pixels
    nrows, ncols = binary.shape
    labels = np.zeros((nrows, ncols), dtype=np.int32)
    uf = UnionFind()

    # Pass 1: provisional labels + equivalences.  np.nonzero yields the
    # foreground pixels in raster order, so scanning only those is the
    # same algorithm as the full row/column sweep (background pixels
    # never read or write anything) — just proportional to the
    # foreground size instead of the frame size.
    fg_rows, fg_cols = np.nonzero(pix)
    for r, c in zip(fg_rows.tolist(), fg_cols.tolist()):
        neighbour_labels = []
        for dr, dc in offsets:
            nr, nc = r + dr, c + dc
            if 0 <= nr < nrows and 0 <= nc < ncols and labels[nr, nc] != 0:
                neighbour_labels.append(labels[nr, nc] - 1)
        if not neighbour_labels:
            labels[r, c] = uf.make_set() + 1
        else:
            root = neighbour_labels[0]
            for other in neighbour_labels[1:]:
                root = uf.union(root, other)
            labels[r, c] = uf.find(root) + 1

    # Pass 2: flatten equivalences to consecutive final labels.
    remap = np.zeros(len(uf) + 1, dtype=np.int32)
    count = 0
    for provisional in range(len(uf)):
        root = uf.find(provisional)
        if remap[root + 1] == 0:
            count += 1
            remap[root + 1] = count
    for provisional in range(len(uf)):
        remap[provisional + 1] = remap[uf.find(provisional) + 1]
    labels = remap[labels]
    return labels, count


def label_flood(binary: Image, connectivity: int = 8) -> Tuple[np.ndarray, int]:
    """Flood-fill labelling: an independent oracle for :func:`label`.

    Same output contract as :func:`label`, although the specific label
    assigned to each component may differ (tests compare up to relabelling).
    """
    if connectivity == 4:
        all_offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))
    elif connectivity == 8:
        all_offsets = tuple(
            (dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1) if (dr, dc) != (0, 0)
        )
    else:
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    pix = binary.pixels
    nrows, ncols = binary.shape
    labels = np.zeros((nrows, ncols), dtype=np.int32)
    count = 0
    for r in range(nrows):
        for c in range(ncols):
            if pix[r, c] == 0 or labels[r, c] != 0:
                continue
            count += 1
            stack = [(r, c)]
            labels[r, c] = count
            while stack:
                cr, cc = stack.pop()
                for dr, dc in all_offsets:
                    nr, nc = cr + dr, cc + dc
                    if (
                        0 <= nr < nrows
                        and 0 <= nc < ncols
                        and pix[nr, nc] != 0
                        and labels[nr, nc] == 0
                    ):
                        labels[nr, nc] = count
                        stack.append((nr, nc))
    return labels, count


def component_count(binary: Image, connectivity: int = 8) -> int:
    """Number of connected foreground components."""
    return label(binary, connectivity)[1]


def components(binary: Image, connectivity: int = 8) -> List[np.ndarray]:
    """Boolean masks, one per component, ordered by label."""
    labels, count = label(binary, connectivity)
    return [labels == k for k in range(1, count + 1)]


def bounding_rect(mask: np.ndarray) -> Rect:
    """Tight bounding rectangle of a boolean mask (the "englobing frame")."""
    rows = np.any(mask, axis=1)
    cols = np.any(mask, axis=0)
    if not rows.any():
        return Rect(0, 0, 0, 0)
    r0, r1 = np.flatnonzero(rows)[[0, -1]]
    c0, c1 = np.flatnonzero(cols)[[0, -1]]
    return Rect(int(r0), int(c0), int(r1 - r0 + 1), int(c1 - c0 + 1))
