"""Synthetic scene generation.

The paper's experiments use live video from a camera installed in a car.
Without that hardware we synthesise equivalent frames: dark backgrounds
with bright elliptical blobs (the retro-reflective marks), optional road
scenes with white lane lines, and controllable noise — enough to exercise
thresholding, labelling, mark extraction and line detection on realistic
inputs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .image import Image
from .ops import add_noise

__all__ = ["draw_blob", "scene_with_blobs", "road_scene", "checkerboard"]


def draw_blob(
    image: Image,
    center: Tuple[float, float],
    radii: Tuple[float, float],
    intensity: int = 255,
) -> None:
    """Draw a filled axis-aligned ellipse (in place).

    Marks in the paper are compact bright spots; ellipses capture the
    perspective foreshortening of circular reflectors.
    Degenerate radii (< 0.5) still light the single nearest pixel so a
    distant mark never silently vanishes.
    """
    cr, cc = center
    rr, rc = max(radii[0], 0.5), max(radii[1], 0.5)
    r0 = max(0, int(np.floor(cr - rr)))
    r1 = min(image.nrows, int(np.ceil(cr + rr)) + 1)
    c0 = max(0, int(np.floor(cc - rc)))
    c1 = min(image.ncols, int(np.ceil(cc + rc)) + 1)
    if r0 >= r1 or c0 >= c1:
        return
    rows = np.arange(r0, r1, dtype=np.float64)[:, None]
    cols = np.arange(c0, c1, dtype=np.float64)[None, :]
    inside = ((rows - cr) / rr) ** 2 + ((cols - cc) / rc) ** 2 <= 1.0
    if not inside.any():
        # Too small to cover a pixel center: light the nearest pixel.
        pr = min(max(int(round(cr)), 0), image.nrows - 1)
        pc = min(max(int(round(cc)), 0), image.ncols - 1)
        image.pixels[pr, pc] = intensity
        return
    region = image.pixels[r0:r1, c0:c1]
    region[inside] = intensity


def scene_with_blobs(
    shape: Tuple[int, int],
    blobs: Sequence[Tuple[Tuple[float, float], Tuple[float, float]]],
    *,
    background: int = 20,
    intensity: int = 255,
    noise_sigma: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Image:
    """A frame with bright elliptical blobs on a dark background.

    ``blobs`` is a sequence of ``(center, radii)`` pairs.
    """
    frame = Image.full(shape[0], shape[1], background)
    for center, radii in blobs:
        draw_blob(frame, center, radii, intensity)
    if noise_sigma > 0:
        frame = add_noise(frame, noise_sigma, rng or np.random.default_rng(0))
    return frame


def road_scene(
    shape: Tuple[int, int],
    *,
    lane_offsets: Iterable[float] = (-80.0, 80.0),
    vanish_row: float = 60.0,
    background: int = 60,
    line_intensity: int = 230,
    line_width: float = 3.0,
    noise_sigma: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Image:
    """A synthetic road: lane lines converging toward a vanishing point.

    Each lane line starts ``offset`` pixels from the image center at the
    bottom row and converges to the center column at ``vanish_row``.
    """
    nrows, ncols = shape
    frame = Image.full(nrows, ncols, background)
    center_col = ncols / 2.0
    span = nrows - 1 - vanish_row
    if span <= 0:
        raise ValueError("vanish_row must be above the bottom row")
    cols_grid = np.arange(ncols, dtype=np.float64)[None, :]
    rows_grid = np.arange(nrows, dtype=np.float64)[:, None]
    progress = np.clip((rows_grid - vanish_row) / span, 0.0, 1.0)
    for offset in lane_offsets:
        line_col = center_col + offset * progress
        on_line = (np.abs(cols_grid - line_col) <= line_width / 2.0) & (
            rows_grid >= vanish_row
        )
        frame.pixels[on_line] = line_intensity
    if noise_sigma > 0:
        frame = add_noise(frame, noise_sigma, rng or np.random.default_rng(0))
    return frame


def checkerboard(shape: Tuple[int, int], cell: int = 8) -> Image:
    """A checkerboard test pattern (distinct components for CCL tests)."""
    if cell <= 0:
        raise ValueError("cell size must be positive")
    rows = np.arange(shape[0]) // cell
    cols = np.arange(shape[1]) // cell
    board = (rows[:, None] + cols[None, :]) % 2
    return Image((board * 255).astype(np.uint8))
