"""Per-frame latency budgets and overload policies.

SKiPPER's target applications are *real-time*: the Transvision demo of
the paper processes a live video stream under a hard per-frame latency
bound.  A :class:`LatencyBudget` makes that bound explicit at runtime —
attached to a stream run it arms a watchdog (deadline misses are
detected while the frame is still in flight), bounds how many frames may
be inside the process network at once, and selects what happens to new
frames when the network is saturated.

The four overload policies:

* ``block`` — classic backpressure: the grabber waits until the network
  drains.  No frame is lost; latency grows unboundedly under sustained
  overload.
* ``shed-newest`` — a frame arriving while the admission queue is full
  is refused.  Keeps old work; freshest data is sacrificed.
* ``shed-oldest`` — the *oldest* waiting frame is dropped to make room.
  The right default for live video: a stale frame is worthless, the
  newest one is what the display needs.
* ``degrade`` — enter a degraded mode that admits only one frame in
  ``degrade_ratio`` (adaptive frame-rate halving) until the backlog
  clears; overflow beyond the queue is shed oldest-first meanwhile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["OVERLOAD_POLICIES", "LatencyBudget"]

#: The admission-time overload policies, in documentation order.
OVERLOAD_POLICIES = ("block", "shed-newest", "shed-oldest", "degrade")


@dataclass(frozen=True)
class LatencyBudget:
    """The real-time contract of one stream run.

    Times are wall-clock on the real backends and virtual microseconds on
    the simulator (which converts from the same millisecond knobs).
    """

    #: Grab-to-display budget of one frame, milliseconds.
    deadline_ms: float = 40.0
    #: What to do with new frames when the network is saturated.
    policy: str = "block"
    #: How many admitted frames may be inside the process network at
    #: once (the released-minus-delivered window).  This is the bounded
    #: queue that makes backpressure real: a slow worker slows the
    #: grabber instead of growing unbounded queues.
    max_in_flight: int = 4
    #: Admission-buffer depth ahead of the network (frames grabbed but
    #: not yet released).  0 means "same as max_in_flight".
    queue_depth: int = 0
    #: Source pacing period, milliseconds; 0 = free-running grabber.
    frame_period_ms: float = 0.0
    #: In degraded mode only one frame in ``degrade_ratio`` is admitted.
    degrade_ratio: int = 2
    #: Watchdog scan period (seconds) for in-flight deadline detection.
    watchdog_interval_s: float = 0.002

    def __post_init__(self):
        if self.policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {self.policy!r}; expected one of "
                f"{OVERLOAD_POLICIES}"
            )
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.degrade_ratio < 2:
            raise ValueError("degrade_ratio must be >= 2")

    @property
    def deadline_us(self) -> float:
        return self.deadline_ms * 1000.0

    @property
    def frame_period_s(self) -> float:
        return self.frame_period_ms / 1000.0

    @property
    def admission_depth(self) -> int:
        """Effective admission-buffer bound (resolves the 0 default)."""
        return self.queue_depth or self.max_in_flight

    def to_dict(self) -> Dict:
        return {
            "deadline_ms": self.deadline_ms,
            "policy": self.policy,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "frame_period_ms": self.frame_period_ms,
            "degrade_ratio": self.degrade_ratio,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LatencyBudget":
        return cls(**data)
