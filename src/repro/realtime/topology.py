"""Stream topology extraction: the admission and delivery edges.

The realtime layer enforces its budget at two choke points of the mapped
process graph: where grabbed frames *enter* the network (the out-edges
of the ``stream.input`` process) and where results *leave* it (the
in-edge of ``stream.output``).  Like :class:`~repro.faults.topology.
FaultTopology`, the map is derived once from the
:class:`~repro.syndex.distribute.Mapping` the code generator consumed,
so every OS process agrees on edge roles without runtime negotiation.

Edge names follow the generated code: ``e<i>`` indexes
``mapping.graph.edges``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..codegen.pygen import thread_name
from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping

__all__ = ["StreamTopology"]


@dataclass
class StreamTopology:
    """Edge-role map of the (single) stream of one mapped program.

    ``None``-valued via :meth:`from_mapping` returning ``None`` when the
    program has no stream skeleton — the realtime layer then has nothing
    to police and backends skip it.
    """

    input_pid: str
    input_processor: str
    #: Out-edges of the input process, ascending edge index.  The first
    #: one is the *primary* admission edge: the generated input loop
    #: sends each frame on every out-edge in this order, so a send on
    #: the primary edge marks a new frame boundary.
    admission_edges: List[str] = field(default_factory=list)
    output_pid: str = ""
    output_processor: str = ""
    delivery_edge: str = ""

    @property
    def primary_edge(self) -> str:
        return self.admission_edges[0]

    @property
    def input_thread(self) -> str:
        """Executive thread name hosting the frame grabber."""
        return thread_name(self.input_pid)

    @property
    def output_thread(self) -> str:
        return thread_name(self.output_pid)

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> Optional["StreamTopology"]:
        graph = mapping.graph
        inputs = [
            p for p in graph.by_kind(ProcessKind.INPUT) if p.func is not None
        ]
        outputs = [
            p for p in graph.by_kind(ProcessKind.OUTPUT)
            if p.func is not None
        ]
        if not inputs or not outputs:
            return None
        if len(inputs) > 1 or len(outputs) > 1:
            raise ValueError(
                "realtime budgets support exactly one stream per program "
                f"(found {len(inputs)} input(s), {len(outputs)} output(s))"
            )
        inp, out = inputs[0], outputs[0]
        admission = [
            f"e{i}" for i, e in enumerate(graph.edges) if e.src == inp.id
        ]
        delivery = [
            f"e{i}" for i, e in enumerate(graph.edges) if e.dst == out.id
        ]
        if not admission or len(delivery) != 1:
            raise ValueError(
                f"stream {inp.id!r}/{out.id!r} has no admission edge or "
                f"multiple delivery edges"
            )
        return cls(
            input_pid=inp.id,
            input_processor=mapping.processor_of(inp.id),
            admission_edges=admission,
            output_pid=out.id,
            output_processor=mapping.processor_of(out.id),
            delivery_edge=delivery[0],
        )
