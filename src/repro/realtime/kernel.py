"""Realtime kernel: deadline watchdog and admission control as a wrapper.

Like :class:`~repro.faults.supervisor.SupervisedKernel`, the realtime
layer hooks the *kernel primitives* and leaves the generated executive
untouched.  :class:`RealtimeKernel` wraps either a base kernel or a
supervised kernel and polices two choke points of the stream
(:class:`~repro.realtime.topology.StreamTopology`):

* **Admission** (the process hosting the stream input): frames the
  grabber sends are parked in a bounded admission buffer; a pump on the
  watchdog thread releases them into the process network with
  non-blocking puts, but only while fewer than ``max_in_flight`` frames
  are between release and delivery.  When the buffer is full the
  configured overload policy decides: ``block`` the grabber,
  ``shed-newest``, ``shed-oldest``, or enter ``degrade`` mode (admit one
  frame in ``degrade_ratio`` until the backlog clears).  Shedding
  happens strictly *before* a frame enters the FIFO network — which is
  what makes the frame-conservation ledger pair the j-th delivery with
  the j-th released frame.

* **Delivery** (the process hosting the stream output): each non-Stop
  value on the delivery edge is timestamped and counted on the shared
  :class:`StreamBoard`, closing the in-flight window.

The watchdog also flags deadline misses *while frames are in flight*
(pending or released-but-undelivered frames older than the budget), and
the admission side paces the grabber to ``frame_period_ms`` — the hook
where the seeded ``burst`` / ``input-surge`` overload faults fire.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import queue

from ..codegen.kernel import Shutdown
from .budget import LatencyBudget
from .ledger import FrameRecord, RealtimeRecord, assemble_report
from .topology import StreamTopology

__all__ = ["StreamBoard", "RealtimeKernel"]


class StreamBoard:
    """Shared released/delivered frame counters.

    Slot 0 counts frames released into the network (written only by the
    admission pump), slot 1 frames delivered at the stream output
    (written only by the output thread) — single-writer slots, so a
    lock-free ``multiprocessing.Array('d', 2)`` works across OS
    processes exactly like the heartbeat board.
    """

    def __init__(self, slots: Any):
        self._slots = slots

    @classmethod
    def local(cls) -> "StreamBoard":
        return cls([0.0, 0.0])

    def note_released(self) -> None:
        self._slots[0] += 1.0

    def note_delivered(self) -> None:
        self._slots[1] += 1.0

    def released(self) -> int:
        return int(self._slots[0])

    def delivered(self) -> int:
        return int(self._slots[1])

    def in_flight(self) -> int:
        return max(0, self.released() - self.delivered())


class _PendingFrame:
    """One grabbed frame waiting in the admission buffer."""

    __slots__ = ("record", "values", "unsent")

    def __init__(self, record: FrameRecord, edges: List[str]):
        self.record = record
        #: edge -> value; filled as the grabber sends on each out-edge.
        self.values: Dict[str, Any] = {}
        #: edges not yet put into the network (partial-send tracking).
        self.unsent: List[str] = list(edges)

    def complete(self, n_edges: int) -> bool:
        return len(self.values) == n_edges


class RealtimeKernel:
    """Budget-enforcing wrapper around a (possibly supervised) kernel.

    Every primitive not overridden here delegates to the wrapped kernel,
    so the wrapper is a drop-in replacement wherever a kernel is
    accepted.  On the processes backend one instance runs per OS
    process; admission logic activates only where the stream input is
    mapped, delivery logic only where the stream output is mapped
    (``processor=None`` — the threads backend — owns both).
    """

    def __init__(
        self,
        inner: Any,
        topology: StreamTopology,
        budget: LatencyBudget,
        *,
        board: Optional[StreamBoard] = None,
        processor: Optional[str] = None,
        start_watchdog: bool = True,
    ):
        self._inner = inner
        self._topo = topology
        self._budget = budget
        self._board = board or StreamBoard.local()
        self._processor = processor

        def hosts(proc: str) -> bool:
            # ``processor`` may be one mapped processor (processes
            # backend) or a set of them (a tcp worker hosting several).
            if processor is None:
                return True
            if isinstance(processor, (set, frozenset)):
                return proc in processor
            return processor == proc

        self._admission_active = hosts(topology.input_processor)
        self._delivery_active = hosts(topology.output_processor)
        self._edge_set = set(topology.admission_edges)
        self._n_edges = len(topology.admission_edges)
        # Overload injection shares the supervised kernel's matcher and
        # report when one is underneath; without a fault plan there is
        # no overload injection, only policy enforcement.
        self._matcher = getattr(inner, "_matcher", None)
        self._fault_report = getattr(inner, "fault_report", None)

        # -- admission state (guarded by _lock) --
        self._lock = threading.Lock()
        self._frames: List[FrameRecord] = []
        self._pending: Deque[_PendingFrame] = deque()
        self._events: List[RealtimeRecord] = []
        self._last_shed = False   # swallow trailing sends of a shed frame
        self._stopping = False
        self._flushed = False
        self._degraded = False
        self._degrade_counter = 0
        self._next_due = 0.0      # pacing clock (perf_counter seconds)
        self._pace_boost: int = 0       # grabs left at burst speed
        self._surge_left: int = 0       # grabs left at surged rate
        self._surge_factor: float = 1.0

        # -- delivery state (single-writer: the output thread) --
        self._stamps: List[float] = []

        self._watchdog: Optional[threading.Thread] = None
        # Local event, never the shared multiprocessing stop event: a
        # daemon thread parked inside a shared semaphore at process exit
        # poisons it for every other process (see the heartbeat thread).
        self._watchdog_stop = threading.Event()
        # A coroutine-kernel wrapper passes start_watchdog=False and runs
        # the same tick from an event-loop task instead (an OS thread
        # must not touch loop-confined asyncio queues).
        if self._admission_active and start_watchdog:
            self._watchdog = threading.Thread(
                target=self._watch_loop, name="rt-watchdog", daemon=True
            )
            self._watchdog.start()

    # -- plumbing ----------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def _now_us(self) -> float:
        return (time.perf_counter() - self._inner._epoch) * 1e6

    def _stopped(self) -> bool:
        return self._inner._stop_event.is_set()

    def _event(self, kind: str, frame: Optional[int], detail: str = "",
               *, locked: bool = False) -> None:
        record = RealtimeRecord(kind, frame, self._now_us(), detail)
        if locked:
            self._events.append(record)
        else:
            with self._lock:
                self._events.append(record)

    def shutdown(self) -> None:
        """Stop the watchdog (and the wrapped kernel's service threads)."""
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(1.0)
        inner_shutdown = getattr(self._inner, "shutdown", None)
        if inner_shutdown is not None:
            inner_shutdown()

    # -- pacing and overload injection (the grabber thread) ----------------

    def call_(self, func: Callable, *args: Any) -> Any:
        if (self._admission_active
                and threading.current_thread().name
                == self._topo.input_thread):
            self._pace()
        return self._inner.call_(func, *args)

    def _pace(self) -> None:
        """Pre-grab: fire overload faults, then hold to the frame period."""
        period = self._pace_setup()
        if period is None:
            return
        now = time.perf_counter()
        while now < self._next_due:
            if self._stopped():
                raise Shutdown
            time.sleep(min(0.002, self._next_due - now))
            now = time.perf_counter()
        self._next_due = max(self._next_due + period, now - period)

    def _pace_setup(self) -> Optional[float]:
        """Fire overload faults; returns this frame's effective period.

        ``None`` means no pacing wait applies (no period configured, or
        a burst fault releases the frame back-to-back); otherwise
        ``_next_due`` is primed and the caller sleeps up to it — in
        whatever way suits its substrate (``time.sleep`` for threads,
        ``asyncio.sleep`` for the coroutine wrapper).
        """
        if self._matcher is not None:
            specs = self._matcher.fire(
                process=self._topo.input_pid,
                processor=self._topo.input_processor,
                kinds=("burst", "input-surge"),
            )
            for spec in specs:
                if self._fault_report is not None:
                    self._fault_report.add(
                        "injected", spec.kind, self._topo.input_pid,
                        self._now_us(),
                        processor=self._topo.input_processor,
                        note=(f"x{spec.factor:g} rate"
                              if spec.kind == "input-surge"
                              else "back-to-back frame"),
                    )
                if spec.kind == "burst":
                    self._pace_boost += 1
                else:
                    self._surge_left += 1
                    self._surge_factor = max(self._surge_factor,
                                             spec.factor)
        period = self._budget.frame_period_s
        if period <= 0:
            return None
        if self._pace_boost > 0:
            self._pace_boost -= 1
            return None  # burst: release this frame immediately
        if self._surge_left > 0:
            self._surge_left -= 1
            period = period / self._surge_factor
            if self._surge_left == 0:
                self._surge_factor = 1.0
        if self._next_due == 0.0:
            self._next_due = time.perf_counter()
        return period

    # -- admission (the grabber thread) ------------------------------------

    def send_(self, edge: str, value: Any) -> None:
        if (not self._admission_active or edge not in self._edge_set
                or self._inner.is_stop(value)):
            return self._inner.send_(edge, value)
        if edge == self._topo.primary_edge:
            return self._admit(value)
        with self._lock:
            if self._last_shed:
                return None  # the rest of a shed frame's fan-out
            if self._pending:
                entry = self._pending[-1]
                if edge not in entry.values:
                    entry.values[edge] = value
                    self._drain()
                    return None
        # No pending entry can take it (flush raced us): send directly.
        return self._inner.send_(edge, value)

    def _admit(self, value: Any) -> None:
        if self._budget.policy == "block":
            while not self._admit_has_room():
                if self._stopped():
                    raise Shutdown
                time.sleep(0.001)
        return self._admit_locked(value)

    def _admit_has_room(self) -> bool:
        """Block-policy gate: buffer below the admission depth?"""
        with self._lock:
            return len(self._pending) < self._budget.admission_depth

    def _admit_locked(self, value: Any) -> None:
        """Admission decision for one frame (takes ``_lock`` itself)."""
        budget = self._budget
        with self._lock:
            frame = len(self._frames)
            record = FrameRecord(frame=frame, admitted_us=self._now_us())
            self._frames.append(record)
            self._last_shed = False
            if budget.policy == "degrade" and self._degraded:
                self._degrade_counter += 1
                if self._degrade_counter % budget.degrade_ratio != 0:
                    self._shed(record, "degraded")
                    return None
            if len(self._pending) >= budget.admission_depth:
                if budget.policy == "shed-newest":
                    self._shed(record, "shed-newest")
                    return None
                if budget.policy in ("shed-oldest", "degrade"):
                    if (budget.policy == "degrade"
                            and not self._degraded):
                        self._degraded = True
                        self._degrade_counter = 0
                        self._event("degraded-enter", frame,
                                    "admission buffer overflow",
                                    locked=True)
                    victim = self._pop_sheddable()
                    if victim is None:
                        # Only the half-released head remains: it cannot
                        # be retracted from the network, so the new
                        # frame takes the hit instead.
                        self._shed(record, "shed-oldest")
                        return None
                    self._shed(victim.record, "shed-oldest")
                # block never reaches here; degrade overflows shed-oldest
            self._pending.append(
                _PendingFrame(record, self._topo.admission_edges)
            )
            self._pending[-1].values[self._topo.primary_edge] = value
            # Kick the pump inline so throughput is not gated on the
            # watchdog tick; the watchdog remains the backstop that
            # drains when the grabber goes quiet.
            self._drain()
        return None

    def _pop_sheddable(self) -> Optional[_PendingFrame]:
        """Remove and return the oldest *retractable* buffered frame.

        The pump touches only the head of the deque, so the head is
        sheddable only while none of its edges have been released; every
        other entry is untouched by construction.  Caller holds
        ``_lock``.
        """
        if not self._pending:
            return None
        head = self._pending[0]
        if len(head.unsent) == self._n_edges:
            return self._pending.popleft()
        if len(self._pending) > 1:
            victim = self._pending[1]
            del self._pending[1]
            return victim
        return None

    def _shed(self, record: FrameRecord, reason: str) -> None:
        """Mark one frame shed (caller holds ``_lock``)."""
        record.status = "shed"
        record.reason = reason
        if record is self._frames[-1]:
            self._last_shed = True
        self._event("shed", record.frame, reason, locked=True)

    # -- the pump and watchdog (daemon thread on the admission side) -------

    def _put_nowait(self, edge: str, value: Any) -> bool:
        channel = self._inner.channel(edge)
        put = getattr(channel, "put_nowait", None)
        if put is None:  # ThreadKernel wraps the queue
            put = channel.q.put_nowait
        try:
            put(value)
            return True
        except (queue.Full, asyncio.QueueFull):
            return False

    def _drain(self) -> None:
        """Pump until stalled (caller holds ``_lock``)."""
        while self._pump_step():
            pass

    def _pump_step(self) -> bool:
        """Release the head frame if capacity allows (holds ``_lock``).

        Returns True when it made progress (a send landed)."""
        budget = self._budget
        if not self._pending:
            return False
        if (not self._stopping
                and self._board.in_flight() >= budget.max_in_flight):
            return False
        entry = self._pending[0]
        if not entry.complete(self._n_edges):
            return False  # the grabber is still fanning this frame out
        progressed = False
        while entry.unsent:
            edge = entry.unsent[0]
            if not self._put_nowait(edge, entry.values[edge]):
                return progressed
            entry.unsent.pop(0)
            progressed = True
        self._pending.popleft()
        entry.record.released_us = self._now_us()
        self._board.note_released()
        return True

    def _watch_loop(self) -> None:
        interval = self._budget.watchdog_interval_s
        while not self._watchdog_stop.wait(interval):
            self._watch_tick()

    def _watch_tick(self) -> None:
        """One watchdog round: pump, deadline scan, degrade hysteresis."""
        with self._lock:
            self._drain()
            self._scan_deadlines()
            self._maybe_exit_degraded()

    def _scan_deadlines(self) -> None:
        """Flag frames over budget *while still in flight* (lock held)."""
        now_us = self._now_us()
        deadline = self._budget.deadline_us
        delivered = self._board.delivered()
        released_seen = 0
        for rec in self._frames:
            if rec.status != "in-flight" or rec.deadline_missed:
                if rec.released_us is not None:
                    released_seen += 1
                continue
            if rec.released_us is not None:
                released_seen += 1
                if released_seen <= delivered:
                    continue  # FIFO: already delivered, just not stamped
            if now_us - rec.admitted_us > deadline:
                rec.deadline_missed = True
                self._event(
                    "deadline-miss", rec.frame,
                    f"{(now_us - rec.admitted_us) / 1000:.1f} ms in "
                    f"flight", locked=True,
                )

    def _maybe_exit_degraded(self) -> None:
        if not self._degraded:
            return
        cap = self._budget.max_in_flight
        if not self._pending and self._board.in_flight() <= max(1, cap // 2):
            self._degraded = False
            self._event("degraded-exit", None, "backlog cleared",
                        locked=True)

    # -- teardown (the grabber thread, via generated stop_) ----------------

    def stop_(self, edge: str) -> None:
        if self._admission_active and edge in self._edge_set:
            self._flush_on_stop()
        return self._inner.stop_(edge)

    def _flush_on_stop(self) -> None:
        """Blocking-release every buffered frame before Stop propagates."""
        if not self._begin_flush():
            return
        while not self._flush_step():
            time.sleep(0.001)

    def _begin_flush(self) -> bool:
        """Claim the (one-shot) flush; False when already flushed."""
        with self._lock:
            if self._flushed:
                return False
            self._flushed = True
            self._stopping = True
            return True

    def _flush_step(self) -> bool:
        """One flush round; returns True when flushing is finished."""
        if self._stopped():
            with self._lock:
                for entry in self._pending:
                    entry.record.status = "failed"
                    entry.record.reason = "aborted at teardown"
                self._pending.clear()
            return True
        with self._lock:
            if not self._pending:
                return True
            self._pump_step()
        return False

    # -- delivery (the output thread) --------------------------------------

    def recv_(self, edge: str) -> Any:
        value = self._inner.recv_(edge)
        if (self._delivery_active and edge == self._topo.delivery_edge
                and not self._inner.is_stop(value)):
            self._stamps.append(self._now_us())
            self._board.note_delivered()
        return value

    # -- reporting ---------------------------------------------------------

    def admission_payload(self) -> Optional[Dict]:
        """This kernel's admission half of the realtime report."""
        if not self._admission_active:
            return None
        with self._lock:
            return {
                "frames": [f.to_dict() for f in self._frames],
                "events": [e.to_dict() for e in self._events],
            }

    def delivery_payload(self) -> Optional[Dict]:
        """This kernel's delivery half of the realtime report."""
        if not self._delivery_active:
            return None
        return {"stamps": list(self._stamps), "events": []}

    def build_report(self):
        """Assemble the full report (single-process kernels only)."""
        return assemble_report(
            self._budget, self.admission_payload(), self.delivery_payload()
        )
