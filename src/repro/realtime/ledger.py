"""The frame-conservation ledger: every grabbed frame is accounted for.

A real-time executive that sheds load must be able to *prove* it lost
nothing silently.  The ledger records one :class:`FrameRecord` per
grabbed frame with a terminal status — ``delivered``, ``shed`` or
``failed`` — and the conservation identity

    delivered + shed + failed == submitted

is the acceptance criterion of the chaos soak (and a conformance
invariant, see :mod:`repro.conformance.invariants`).

Records are plain data (picklable): on the processes backend the
admission side and the delivery side of the stream may live in different
OS processes, each ships its half to the parent, and
:func:`assemble_report` zips them — the j-th delivered output is the
j-th *released* frame because shedding happens strictly before a frame
enters the FIFO process network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .budget import LatencyBudget

__all__ = [
    "FrameRecord",
    "RealtimeRecord",
    "FrameLedger",
    "RealtimeReport",
    "assemble_report",
]

#: Terminal frame statuses (``in-flight`` only appears mid-run).
FRAME_STATUSES = ("delivered", "shed", "failed", "in-flight")

#: Realtime event kinds recorded alongside the ledger.
EVENT_KINDS = (
    "deadline-miss",    # a frame exceeded its budget while in flight
    "shed",             # a frame was dropped at admission
    "degraded-enter",   # the executive switched to degraded frame rate
    "degraded-exit",    # backlog cleared; full frame rate restored
)


@dataclass
class FrameRecord:
    """One grabbed frame's fate (times in µs since the run epoch)."""

    frame: int                       # grab index (0-based)
    admitted_us: float               # when the grab completed
    status: str = "in-flight"
    released_us: Optional[float] = None  # when the frame entered the network
    delivered_us: Optional[float] = None
    deadline_missed: bool = False
    reason: str = ""                 # shed/failed cause (policy name, ...)

    @property
    def latency_us(self) -> Optional[float]:
        if self.delivered_us is None:
            return None
        return self.delivered_us - self.admitted_us

    def to_dict(self) -> Dict:
        out: Dict = {"frame": self.frame, "admitted_us": self.admitted_us,
                     "status": self.status}
        if self.released_us is not None:
            out["released_us"] = self.released_us
        if self.delivered_us is not None:
            out["delivered_us"] = self.delivered_us
        if self.deadline_missed:
            out["deadline_missed"] = True
        if self.reason:
            out["reason"] = self.reason
        return out


@dataclass
class RealtimeRecord:
    """One realtime event (deadline miss, shed, mode transition)."""

    kind: str
    frame: Optional[int]
    time_us: float
    detail: str = ""

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind, "time_us": self.time_us}
        if self.frame is not None:
            out["frame"] = self.frame
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "RealtimeRecord":
        # ``frame`` is omitted from payloads when None (mode transitions
        # have no single frame), so reconstruct with explicit defaults.
        return cls(
            kind=data["kind"],
            frame=data.get("frame"),
            time_us=data["time_us"],
            detail=data.get("detail", ""),
        )


@dataclass
class FrameLedger:
    """All frame records of one run, in grab order."""

    frames: List[FrameRecord] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.frames)

    def by_status(self, status: str) -> List[FrameRecord]:
        return [f for f in self.frames if f.status == status]

    @property
    def submitted(self) -> int:
        return len(self.frames)

    @property
    def delivered(self) -> List[FrameRecord]:
        return self.by_status("delivered")

    @property
    def shed(self) -> List[FrameRecord]:
        return self.by_status("shed")

    @property
    def failed(self) -> List[FrameRecord]:
        return self.by_status("failed")

    def conserved(self) -> bool:
        """delivered + shed + failed == submitted, nothing in flight."""
        return (
            len(self.delivered) + len(self.shed) + len(self.failed)
            == self.submitted
        )

    def unaccounted(self) -> int:
        return self.submitted - (
            len(self.delivered) + len(self.shed) + len(self.failed)
        )

    # -- latency statistics ------------------------------------------------

    def latencies_us(self) -> List[float]:
        return sorted(
            f.latency_us for f in self.delivered if f.latency_us is not None
        )

    def percentile_us(self, p: float) -> float:
        """Latency percentile over delivered frames (nearest-rank)."""
        lats = self.latencies_us()
        if not lats:
            return 0.0
        rank = max(0, min(len(lats) - 1, int(round(p / 100.0 * len(lats))) - 1))
        if p >= 100.0:
            rank = len(lats) - 1
        return lats[rank]

    @property
    def p50_us(self) -> float:
        return self.percentile_us(50.0)

    @property
    def p99_us(self) -> float:
        return self.percentile_us(99.0)

    @property
    def deadline_misses(self) -> int:
        return sum(1 for f in self.frames if f.deadline_missed)

    # -- pickling across OS processes --------------------------------------

    def to_payload(self) -> List[Dict]:
        return [f.to_dict() for f in self.frames]

    @classmethod
    def from_payload(cls, payload: List[Dict]) -> "FrameLedger":
        return cls(frames=[FrameRecord(**data) for data in payload])


@dataclass
class RealtimeReport:
    """The real-time story of one run: budget, ledger and events.

    Rides on :class:`~repro.machine.executive.RunReport` as
    ``report.realtime`` whenever a :class:`LatencyBudget` was attached.
    """

    budget: LatencyBudget
    ledger: FrameLedger = field(default_factory=FrameLedger)
    events: List[RealtimeRecord] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.ledger) or bool(self.events)

    def add_event(self, kind: str, frame: Optional[int], time_us: float,
                  detail: str = "") -> RealtimeRecord:
        record = RealtimeRecord(kind, frame, time_us, detail)
        self.events.append(record)
        return record

    def by_kind(self, kind: str) -> List[RealtimeRecord]:
        return [e for e in self.events if e.kind == kind]

    @property
    def deadline_miss_events(self) -> List[RealtimeRecord]:
        return self.by_kind("deadline-miss")

    @property
    def degraded_spells(self) -> int:
        return len(self.by_kind("degraded-enter"))

    def summary(self) -> str:
        L = self.ledger
        parts = [
            f"realtime[{self.budget.policy}]: {L.submitted} submitted, "
            f"{len(L.delivered)} delivered, {len(L.shed)} shed, "
            f"{len(L.failed)} failed",
            f"deadline {self.budget.deadline_ms:.0f} ms: "
            f"{L.deadline_misses} miss(es)",
        ]
        if L.delivered:
            parts.append(
                f"latency p50/p99: {L.p50_us / 1000:.1f} / "
                f"{L.p99_us / 1000:.1f} ms"
            )
        if self.degraded_spells:
            parts.append(f"{self.degraded_spells} degraded spell(s)")
        if not L.conserved():
            parts.append(f"UNACCOUNTED: {L.unaccounted()} frame(s)")
        return "; ".join(parts)

    # -- projections -------------------------------------------------------

    def annotate_trace(self, trace) -> None:
        """Project realtime events as Chrome instant markers (``rt:*``)."""
        for e in self.events:
            detail = e.detail
            if e.frame is not None:
                detail = f"frame {e.frame}" + (f": {detail}" if detail else "")
            trace.add_instant(f"rt:{e.kind}", "stream", e.time_us,
                              detail=detail)

    # -- pickling across OS processes --------------------------------------

    def to_payload(self) -> Dict:
        return {
            "budget": self.budget.to_dict(),
            "frames": self.ledger.to_payload(),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "RealtimeReport":
        return cls(
            budget=LatencyBudget.from_dict(payload["budget"]),
            ledger=FrameLedger.from_payload(payload["frames"]),
            events=[RealtimeRecord.from_dict(e) for e in payload["events"]],
        )


def assemble_report(
    budget: LatencyBudget,
    admission: Optional[Dict],
    delivery: Optional[Dict],
) -> RealtimeReport:
    """Join the admission-side and delivery-side halves of one run.

    ``admission`` holds the grab-order frame records (released frames
    still ``in-flight``, shed frames terminal) and admission-side events;
    ``delivery`` holds the ordered delivery timestamps.  Because frames
    are only ever dropped *before* entering the FIFO network, the j-th
    delivery timestamp belongs to the j-th released frame; released
    frames beyond the delivered count died with the run and are
    ``failed``.
    """
    report = RealtimeReport(budget=budget)
    if admission is None:
        return report
    ledger = FrameLedger.from_payload(admission["frames"])
    stamps: List[float] = list(delivery["stamps"]) if delivery else []
    raw_events = list(admission.get("events", []))
    if delivery:
        raw_events.extend(delivery.get("events", []))
    events = [RealtimeRecord.from_dict(e) for e in raw_events]
    evented = {
        e.frame for e in events if e.kind == "deadline-miss"
    }
    released = [f for f in ledger.frames if f.released_us is not None]
    for j, rec in enumerate(released):
        if j < len(stamps):
            rec.status = "delivered"
            rec.delivered_us = stamps[j]
            if rec.latency_us is not None and \
                    rec.latency_us > budget.deadline_us:
                rec.deadline_missed = True
                # The watchdog catches most misses in flight; this is the
                # backstop for a frame that crossed its deadline between
                # the last watchdog tick and delivery.
                if rec.frame not in evented:
                    events.append(RealtimeRecord(
                        "deadline-miss", rec.frame, rec.delivered_us,
                        detail="at delivery",
                    ))
        elif rec.status != "failed":
            rec.status = "failed"
            rec.reason = rec.reason or "undelivered at teardown"
    for rec in ledger.frames:
        if rec.released_us is None and rec.status == "in-flight":
            rec.status = "failed"
            rec.reason = rec.reason or "aborted before release"
    report.ledger = ledger
    report.events = sorted(events, key=lambda e: e.time_us)
    return report
