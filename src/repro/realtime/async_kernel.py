"""Coroutine dialect of the realtime wrapper (asyncio backend).

:class:`AsyncRealtimeKernel` is :class:`~repro.realtime.kernel.RealtimeKernel`
with its waiting re-expressed for one event loop: the blocking
primitives become coroutines awaiting :func:`asyncio.sleep`, and the
watchdog runs as a loop task instead of an OS thread — an OS thread
must never touch the loop-confined :class:`asyncio.Queue` channels of
an :class:`~repro.codegen.async_kernel.AsyncioKernel`.

All admission *logic* — shed/degrade policy, the pump, the ledger, the
deadline scan — is inherited unchanged; only the substrate-specific
waiting differs, which is exactly the paper's porting contract applied
to the realtime layer itself.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional

from ..codegen.kernel import Shutdown
from .budget import LatencyBudget
from .kernel import RealtimeKernel, StreamBoard
from .topology import StreamTopology

__all__ = ["AsyncRealtimeKernel"]


class AsyncRealtimeKernel(RealtimeKernel):
    """Budget enforcement for a coroutine executive on one event loop.

    Construct, then call :meth:`start` from inside the running loop
    (the watchdog is a task, not a thread), run the executive, and
    finish with :meth:`ashutdown`.
    """

    def __init__(
        self,
        inner: Any,
        topology: StreamTopology,
        budget: LatencyBudget,
        *,
        board: Optional[StreamBoard] = None,
        processor: Optional[str] = None,
    ):
        super().__init__(
            inner, topology, budget,
            board=board, processor=processor, start_watchdog=False,
        )
        self._watch_task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the watchdog task (call inside the running loop)."""
        if self._admission_active and self._watch_task is None:
            loop = asyncio.get_running_loop()
            self._watch_task = loop.create_task(self._watch_async())
            self._watch_task.set_name("rt-watchdog")

    async def _watch_async(self) -> None:
        interval = self._budget.watchdog_interval_s
        while True:
            await asyncio.sleep(interval)
            self._watch_tick()

    async def ashutdown(self) -> None:
        """Cancel the watchdog task; stop the wrapped kernel's services."""
        if self._watch_task is not None:
            self._watch_task.cancel()
            await asyncio.gather(self._watch_task, return_exceptions=True)
            self._watch_task = None
        inner_shutdown = getattr(self._inner, "shutdown", None)
        if inner_shutdown is not None:
            inner_shutdown()

    # -- pacing (the grabber task) -----------------------------------------

    @staticmethod
    def _task_name() -> str:
        task = asyncio.current_task()
        return task.get_name() if task is not None else "main"

    async def call_(self, func: Callable, *args: Any) -> Any:
        if (self._admission_active
                and self._task_name() == self._topo.input_thread):
            await self._pace_async()
        return await self._inner.call_(func, *args)

    async def _pace_async(self) -> None:
        period = self._pace_setup()
        if period is None:
            return
        now = time.perf_counter()
        while now < self._next_due:
            if self._stopped():
                raise Shutdown
            await asyncio.sleep(min(0.002, self._next_due - now))
            now = time.perf_counter()
        self._next_due = max(self._next_due + period, now - period)

    # -- admission (the grabber task) --------------------------------------

    async def send_(self, edge: str, value: Any) -> None:
        if (not self._admission_active or edge not in self._edge_set
                or self._inner.is_stop(value)):
            return await self._inner.send_(edge, value)
        if edge == self._topo.primary_edge:
            return await self._admit_async(value)
        with self._lock:
            if self._last_shed:
                return None  # the rest of a shed frame's fan-out
            if self._pending:
                entry = self._pending[-1]
                if edge not in entry.values:
                    entry.values[edge] = value
                    self._drain()
                    return None
        # No pending entry can take it (flush raced us): send directly.
        return await self._inner.send_(edge, value)

    async def _admit_async(self, value: Any) -> None:
        if self._budget.policy == "block":
            while not self._admit_has_room():
                if self._stopped():
                    raise Shutdown
                await asyncio.sleep(0.001)
        return self._admit_locked(value)

    # -- teardown (the grabber task, via generated stop_) ------------------

    async def stop_(self, edge: str) -> None:
        if self._admission_active and edge in self._edge_set:
            await self._flush_async()
        return await self._inner.stop_(edge)

    async def _flush_async(self) -> None:
        if not self._begin_flush():
            return
        while not self._flush_step():
            await asyncio.sleep(0.001)

    # -- delivery (the output task) ----------------------------------------

    async def recv_(self, edge: str) -> Any:
        value = await self._inner.recv_(edge)
        if (self._delivery_active and edge == self._topo.delivery_edge
                and not self._inner.is_stop(value)):
            self._stamps.append(self._now_us())
            self._board.note_delivered()
        return value
