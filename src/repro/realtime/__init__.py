"""Real-time robustness layer: deadlines, backpressure, degraded mode.

SKiPPER's target applications process live video under a per-frame
latency bound; this package makes that bound a runtime contract instead
of a post-hoc measurement:

* :class:`~repro.realtime.budget.LatencyBudget` — the per-frame
  deadline, the bounded in-flight window, and the overload policy
  (``block`` / ``shed-newest`` / ``shed-oldest`` / ``degrade``);
* :class:`~repro.realtime.kernel.RealtimeKernel` — admission control,
  pacing, and an in-flight deadline watchdog wrapped around any kernel
  (the same primitive-hooking trick as the fault supervisor);
* :class:`~repro.realtime.ledger.FrameLedger` — the frame-conservation
  ledger (delivered + shed + failed == submitted) the chaos soak
  asserts;
* :mod:`~repro.realtime.soak` — the ``repro soak`` harness driving
  hundreds of frames of mixed crash+overload chaos.
"""

from .budget import OVERLOAD_POLICIES, LatencyBudget
from .kernel import RealtimeKernel, StreamBoard
from .ledger import (
    FrameLedger,
    FrameRecord,
    RealtimeRecord,
    RealtimeReport,
    assemble_report,
)
from .topology import StreamTopology

__all__ = [
    "OVERLOAD_POLICIES",
    "LatencyBudget",
    "RealtimeKernel",
    "StreamBoard",
    "FrameLedger",
    "FrameRecord",
    "RealtimeRecord",
    "RealtimeReport",
    "assemble_report",
    "StreamTopology",
]
