"""Chaos soak: hundreds of frames under mixed crash+overload chaos.

``repro soak`` drives a stream-of-farms program — each grabbed frame is
shattered into pieces, crunched by a ``df`` farm, and re-gathered — on a
real backend while a seeded :class:`~repro.faults.plan.FaultPlan` mixes
classic faults (worker crashes, stalls) with the overload fault model
(``slow-worker``, ``burst``, ``input-surge``), all under a
:class:`~repro.realtime.budget.LatencyBudget`.

The harness then *proves* the run survived:

* **frame conservation** — delivered + shed + failed == submitted
  (:func:`~repro.conformance.invariants.check_frame_conservation`);
* **value correctness** — every delivered frame carries exactly the
  value the fault-free sequential semantics assigns to its frame index
  (each frame's result is a pure function of the index, so shedding
  cannot hide corruption);
* **deadline accounting** — every over-budget delivery is flagged and
  evented.

Every sequential function is a module-level ``def`` so the table
survives pickling under the ``spawn`` start method.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..backends import BackendError, get_backend
from ..conformance.invariants import (
    check_deadline_accounting,
    check_frame_conservation,
)
from ..core import EndOfStream, FunctionTable, ProgramBuilder
from ..faults.demo import worker_pids
from ..faults.plan import FaultPlan, FaultSpec, PlanError
from ..faults.policy import FaultPolicy
from ..health import HealthPolicy
from ..machine import FAST_TEST
from ..sched.remap import RemapPolicy
from ..pnt import expand_program
from ..syndex import distribute, ring
from .budget import OVERLOAD_POLICIES, LatencyBudget
from .topology import StreamTopology

__all__ = ["make_soak", "soak_plan", "limplock_plan", "frame_value",
           "run_soak", "SoakResult", "main"]


# -- module-level sequential functions (spawn-picklable) ----------------------

_counter = {"i": 0}


def grab(source):
    """Grab the next frame: ``(index, pieces, work_us)``."""
    n_frames, pieces, work_us = source
    i = _counter["i"]
    _counter["i"] += 1
    if i >= n_frames:
        raise EndOfStream
    return (i, pieces, work_us)


def shatter(frame):
    """Break one frame into its farm packets ``(index, piece, work_us)``."""
    k, pieces, work_us = frame
    return [(k, j, work_us) for j in range(pieces)]


def crunch(piece):
    """Busy-wait ``work_us`` (the offered load), return a pure checksum."""
    k, j, work_us = piece
    if work_us > 0:
        t0 = time.perf_counter()
        while (time.perf_counter() - t0) * 1e6 < work_us:
            pass
    return (k * 2_654_435_761 + j * 40_503) % 100_003


def gather(acc, v):
    return acc + v


def pack(state, frame, total):
    """Next memory state and the delivered ``(index, checksum)`` pair."""
    return state + 1, (frame[0], total)


def emit(_y):
    return None


def frame_value(k: int, pieces: int) -> int:
    """The fault-free sequential result for frame ``k`` (the oracle)."""
    return sum((k * 2_654_435_761 + j * 40_503) % 100_003
               for j in range(pieces))


# -- the soak program ---------------------------------------------------------

def make_soak(nproc: int = 3, frames: int = 100, pieces: int = 6,
              work_us: float = 300.0, arch_size: int = 4):
    """Build the stream-of-farms soak program, fully mapped.

    Returns ``(program, table, mapping)``.  ``work_us`` of busy-wait per
    piece is the offered-load knob: raise it (or shrink the budget's
    frame period) to push the pipeline past saturation.
    """
    _counter["i"] = 0  # fresh stream per run (fork inherits, spawn reimports)
    table = FunctionTable()
    table.register("grab", ins=["unit"], outs=["frame"], cost=10.0)(grab)
    table.register("shatter", ins=["frame"], outs=["piece list"],
                   cost=10.0)(shatter)
    table.register("crunch", ins=["piece"], outs=["int"],
                   cost=lambda p: 20.0 + p[2])(crunch)
    table.register(
        "gather", ins=["int", "int"], outs=["int"], cost=5.0,
        properties=["commutative", "associative"],
    )(gather)
    table.register("pack", ins=["int", "frame", "int"],
                   outs=["int", "pair"], cost=10.0)(pack)
    table.register("emit", ins=["pair"], cost=5.0)(emit)
    b = ProgramBuilder("realtime_soak", table)
    state, frame = b.params("state", "frame")
    xs = b.apply("shatter", frame)
    total = b.df(nproc, comp="crunch", acc="gather", z=b.const(0), xs=xs)
    s2, y = b.apply("pack", state, frame, total)
    prog = b.stream(
        s2, y, inp="grab", out="emit", init_value=0,
        source=(frames, pieces, work_us),
    )
    mapping = distribute(expand_program(prog, table), ring(arch_size))
    return prog, table, mapping


def limplock_plan(mapping, *, worker: int = 0,
                  factor: float = 10.0) -> FaultPlan:
    """One persistent gray failure: the n-th farm worker limps forever.

    The canonical chaos-proof scenario — every computation by the chosen
    worker takes ``factor`` times longer from its first firing on, while
    its heartbeat stays perfectly fresh — used by the limplock soak leg
    and the hedging A/B comparisons (``--limplock`` vs ``--no-hedge``).
    """
    workers = worker_pids(mapping)
    target = workers[worker % len(workers)]
    return FaultPlan([FaultSpec(
        kind="limplock", process=target, occurrence=0, factor=factor,
    )])


def soak_plan(seed: int, mapping, *, n_faults: int = 6,
              slow_us: float = 2_000.0) -> FaultPlan:
    """A seeded mixed crash+overload plan for one soak run.

    Half the events target farm workers (``crash`` / ``slow-worker``),
    half the stream source (``burst`` / ``input-surge``) — the same
    ``(seed, mapping)`` always yields the same plan.
    """
    import random

    rng = random.Random(seed)
    workers = worker_pids(mapping)
    stream = StreamTopology.from_mapping(mapping)
    if stream is None:
        raise PlanError("soak_plan needs a stream mapping")
    events: List[FaultSpec] = []
    for i in range(n_faults):
        if i % 2 == 0:
            kind = rng.choice(("crash", "slow-worker"))
            events.append(FaultSpec(
                kind=kind,
                process=rng.choice(workers),
                occurrence=rng.randint(0, 20),
                delay_us=slow_us if kind == "slow-worker" else 0.0,
                count=rng.randint(2, 6) if kind == "slow-worker" else 1,
            ))
        else:
            kind = rng.choice(("burst", "input-surge"))
            events.append(FaultSpec(
                kind=kind,
                process=stream.input_pid,
                occurrence=rng.randint(0, 40),
                count=rng.randint(2, 8),
                factor=rng.choice((2.0, 3.0, 4.0)),
            ))
    return FaultPlan(events=events, seed=seed)


# -- the soak run -------------------------------------------------------------

@dataclass
class SoakResult:
    """Everything one soak run produced, plus its verdict."""

    report: object
    plan: FaultPlan
    budget: LatencyBudget
    pieces: int
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def ledger_payload(self) -> dict:
        """The frame ledger as one JSON document (the CI artifact)."""
        rt = self.report.realtime
        return {
            "plan": self.plan.to_dict(),
            "budget": self.budget.to_dict(),
            "realtime": rt.to_payload() if rt is not None else None,
            "violations": self.violations,
            "ok": self.ok,
        }


def _check_values(report, pieces: int) -> List[str]:
    """Every delivered (index, checksum) must match the pure oracle."""
    violations = []
    for k, value in report.outputs:
        want = frame_value(k, pieces)
        if value != want:
            violations.append(
                f"value correctness: frame {k} delivered {value}, the "
                f"sequential semantics says {want}"
            )
    rt = report.realtime
    if rt is not None:
        delivered = [f.frame for f in rt.ledger.delivered]
        produced = [k for k, _ in report.outputs]
        if delivered != produced:
            violations.append(
                f"value correctness: ledger delivered frames {delivered} "
                f"but the output stream carried {produced}"
            )
    return violations


def run_soak(
    backend: str = "threads",
    *,
    seed: int = 0,
    frames: int = 100,
    nproc: int = 3,
    pieces: int = 6,
    work_us: float = 300.0,
    deadline_ms: float = 50.0,
    policy: str = "shed-oldest",
    max_in_flight: int = 3,
    frame_period_ms: float = 2.0,
    n_faults: int = 6,
    chaos: bool = True,
    plan: Optional[FaultPlan] = None,
    health: Optional[HealthPolicy] = None,
    remap: Optional[RemapPolicy] = None,
    timeout: float = 120.0,
    **options,
) -> SoakResult:
    """One chaos-soak run; the returned result carries its verdict.

    ``plan`` overrides the seeded chaos mix with an explicit fault plan
    (e.g. :func:`limplock_plan`); ``health`` overrides the gray-failure
    defense knobs — pass ``HealthPolicy(hedge_enabled=False)`` for the
    unhedged arm of an A/B comparison, ``HealthPolicy(enabled=False)``
    to switch the whole defense layer off.  ``remap`` arms the online
    re-mapper (count-based migration off confirmed-limping workers);
    ``None`` leaves it off, matching the pre-re-mapping behaviour.
    """
    prog, table, mapping = make_soak(
        nproc=nproc, frames=frames, pieces=pieces, work_us=work_us,
    )
    if plan is None:
        plan = soak_plan(seed, mapping, n_faults=n_faults) if chaos \
            else FaultPlan(seed=seed)
    budget = LatencyBudget(
        deadline_ms=deadline_ms, policy=policy,
        max_in_flight=max_in_flight, frame_period_ms=frame_period_ms,
    )
    fault_policy = FaultPolicy(
        packet_timeout_s=0.3, heartbeat_timeout_s=0.15, poll_s=0.002,
        probe_after_s=0.2, health=health, remap=remap,
    )
    report = get_backend(backend).run(
        mapping, table, program=prog, costs=FAST_TEST,
        timeout=timeout, budget=budget,
        fault_plan=plan if plan else None,
        fault_policy=fault_policy if plan else None,
        **options,
    )
    violations = (
        check_frame_conservation(report)
        + check_deadline_accounting(report)
        + _check_values(report, pieces)
    )
    return SoakResult(report=report, plan=plan, budget=budget,
                      pieces=pieces, violations=violations)


# -- CLI ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro soak",
        description="chaos-soak a stream of farm frames under a latency "
                    "budget and prove frame conservation",
    )
    parser.add_argument("--backend", default="threads",
                        choices=("threads", "processes", "tcp"),
                        help="execution backend (default: threads)")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos seed (default: 0)")
    parser.add_argument("--frames", type=int, default=100,
                        help="frames to stream (default: 100)")
    parser.add_argument("--nproc", type=int, default=3,
                        help="farm degree (default: 3)")
    parser.add_argument("--pieces", type=int, default=6,
                        help="packets per frame (default: 6)")
    parser.add_argument("--work-us", type=float, default=300.0,
                        help="busy-work per packet in us (default: 300)")
    parser.add_argument("--deadline-ms", type=float, default=50.0,
                        help="per-frame latency budget (default: 50)")
    parser.add_argument("--overload-policy", default="shed-oldest",
                        choices=OVERLOAD_POLICIES, dest="policy",
                        help="admission overload policy "
                             "(default: shed-oldest)")
    parser.add_argument("--max-in-flight", type=int, default=3,
                        help="frames in flight bound (default: 3)")
    parser.add_argument("--frame-period-ms", type=float, default=2.0,
                        help="source pacing period (default: 2)")
    parser.add_argument("--faults", type=int, default=6, dest="n_faults",
                        help="chaos events in the seeded plan (default: 6)")
    parser.add_argument("--no-chaos", action="store_true",
                        help="run the same load without injected faults")
    parser.add_argument("--limplock", type=float, default=None,
                        metavar="FACTOR",
                        help="replace the chaos mix with one persistent "
                             "limplock: the worker named by --limp-worker "
                             "runs FACTOR times slower for the whole run")
    parser.add_argument("--limp-worker", type=int, default=0, metavar="N",
                        help="worker index the --limplock fault targets "
                             "(default: 0)")
    parser.add_argument("--no-hedge", action="store_true",
                        help="disable hedged re-dispatch (the unhedged arm "
                             "of a limplock A/B comparison)")
    parser.add_argument("--no-health", action="store_true",
                        help="disable the whole gray-failure defense layer "
                             "(scoring, demotion and hedging)")
    parser.add_argument("--remap", action="store_true",
                        help="arm the online re-mapper: migrate the farm "
                             "share of confirmed-limping workers to healthy "
                             "survivors mid-stream")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="write the frame ledger JSON to FILE")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method "
                             "(processes backend)")
    args = parser.parse_args(argv)

    options = {}
    if args.start_method:
        options["start_method"] = args.start_method
    health = None
    if args.no_health:
        health = HealthPolicy(enabled=False)
    elif args.no_hedge:
        health = HealthPolicy(hedge_enabled=False)
    plan = None
    if args.limplock is not None:
        prog, table, mapping = make_soak(
            nproc=args.nproc, frames=args.frames, pieces=args.pieces,
            work_us=args.work_us,
        )
        plan = limplock_plan(mapping, worker=args.limp_worker,
                             factor=args.limplock)
    try:
        result = run_soak(
            args.backend, seed=args.seed, frames=args.frames,
            nproc=args.nproc, pieces=args.pieces, work_us=args.work_us,
            deadline_ms=args.deadline_ms, policy=args.policy,
            max_in_flight=args.max_in_flight,
            frame_period_ms=args.frame_period_ms,
            n_faults=args.n_faults, chaos=not args.no_chaos,
            plan=plan, health=health,
            remap=RemapPolicy() if args.remap else None,
            **options,
        )
    except (BackendError, PlanError, ValueError) as err:
        raise SystemExit(f"error: {err}")

    report = result.report
    print(f"soak    : {args.frames} frames x {args.pieces} pieces on "
          f"{args.backend} (seed {args.seed})")
    for event in result.plan.events:
        extra = ""
        if event.kind in ("delay", "slow-worker"):
            extra = f" (+{event.delay_us:.0f} us x{event.count})"
        elif event.kind == "limplock":
            extra = f" (x{event.factor:g} for the rest of the run)"
        elif event.kind == "input-surge":
            extra = f" (x{event.factor:g} rate for {event.count})"
        elif event.kind == "burst":
            extra = f" ({event.count} back-to-back)"
        print(f"fault   : {event.kind} on {event.target} "
              f"(occurrence {event.occurrence}){extra}")
    print()
    print(report.summary())
    if args.ledger:
        from ..cli import ensure_parent_dir

        ensure_parent_dir(args.ledger)
        with open(args.ledger, "w") as handle:
            json.dump(result.ledger_payload(), handle, indent=2)
            handle.write("\n")
        print(f"ledger written to {args.ledger}")
    print()
    if result.ok:
        print("soak verdict: PASS — every frame accounted for, every "
              "delivered value exact")
        return 0
    print("soak verdict: FAIL")
    for violation in result.violations:
        print(f"  - {violation}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
