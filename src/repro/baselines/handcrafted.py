"""Hand-crafted parallel versions — the baseline of §4.

"These performances are similar to the ones obtained by an existing
hand-crafted parallel version of the algorithm" — and the hand-crafted
version "required at least ten times longer to implement" and "could
not be scaled in a straightforward way".

This module is that counterpart: the same tracking pipeline written the
way a parallel programmer would hand-code it, bypassing the compiler
entirely — the process graph is wired by hand (no router processes: the
programmer inlines routing into the worker loops) and the placement is
a hard-coded assignment rather than the AAA heuristic.  Benchmarks
compare its simulated performance against the skeleton-generated
version (experiment E6), and ``scaling_effort`` quantifies the
programmability claim (E12): rescaling the hand version means editing
the graph, rescaling the SKiPPER version means changing one constant.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..pnt.graph import Process, ProcessGraph, ProcessKind
from ..syndex.arch import Architecture
from ..syndex.distribute import Mapping

__all__ = ["handcrafted_tracking_graph", "handcrafted_mapping"]


def handcrafted_tracking_graph(nproc: int) -> ProcessGraph:
    """The tracking application's process network, written by hand.

    Functionally identical to what the compiler produces from the
    case-study spec, but with the farm's router processes inlined away
    (master talks to workers directly) — the typical shortcut of a
    hand-coded implementation, which saves a little forwarding overhead
    and loses all the structure the tools rely on.
    """
    g = ProcessGraph("handcrafted_tracking")
    g.add_process(
        Process("grab", ProcessKind.INPUT, func="read_img", n_in=0, n_out=1,
                params={"source": (512, 512)})
    )
    g.add_process(
        Process("mem", ProcessKind.MEM, n_in=1, n_out=1,
                params={"init_func": "init_state"})
    )
    g.add_process(
        Process("nproc", ProcessKind.CONST, n_in=0, n_out=1,
                params={"value": nproc})
    )
    g.add_process(
        Process("empty", ProcessKind.CONST, n_in=0, n_out=1,
                params={"value": []})
    )
    g.add_process(
        Process("windows", ProcessKind.APPLY, func="get_windows", n_in=3, n_out=1)
    )
    g.add_process(
        Process(
            "farm",
            ProcessKind.MASTER,
            func="accum_marks",
            n_in=2 + nproc,
            n_out=1 + nproc,
            skeleton="hand_farm",
            params={"degree": nproc, "farm_kind": "df", "comp": "detect_mark"},
        )
    )
    for i in range(nproc):
        g.add_process(
            Process(
                f"det{i}",
                ProcessKind.WORKER,
                func="detect_mark",
                skeleton="hand_farm",
                params={"index": i, "farm_kind": "df"},
            )
        )
    g.add_process(
        Process("predict", ProcessKind.APPLY, func="predict", n_in=2, n_out=2)
    )
    g.add_process(
        Process("show", ProcessKind.OUTPUT, func="display_marks", n_in=1, n_out=0)
    )

    g.add_edge("nproc", "windows", dst_port=0, type="int")
    g.add_edge("mem", "windows", dst_port=1, type="state")
    g.add_edge("grab", "windows", dst_port=2, type="img")
    g.add_edge("empty", "farm", dst_port=0, type="mark list")
    g.add_edge("windows", "farm", dst_port=1, type="window list")
    for i in range(nproc):
        # Hand-inlined routing: master <-> worker direct.
        g.add_edge("farm", f"det{i}", src_port=1 + i, type="window")
        g.add_edge(f"det{i}", "farm", dst_port=2 + i, type="mark list")
    g.add_edge("mem", "predict", dst_port=0, type="state")
    g.add_edge("farm", "predict", src_port=0, dst_port=1, type="mark list")
    g.add_edge("predict", "show", src_port=0, type="mark list")
    g.add_edge("predict", "mem", src_port=1, dst_port=0, type="state", loop=True)
    g.validate()
    return g


def handcrafted_mapping(graph: ProcessGraph, arch: Architecture) -> Mapping:
    """The hand placement: everything central on p0, one worker per
    remaining processor (wrapping when workers outnumber processors) —
    the layout a programmer would write down for the ring."""
    procs = arch.processor_ids()
    assignment: Dict[str, str] = {}
    # Workers fill the non-I/O processors first, then share p0 and wrap.
    worker_slots = (procs[1:] + [procs[0]]) if len(procs) > 1 else procs
    worker_index = 0
    for pid in sorted(graph.processes):
        process = graph[pid]
        if process.kind == ProcessKind.WORKER:
            assignment[pid] = worker_slots[worker_index % len(worker_slots)]
            worker_index += 1
        else:
            assignment[pid] = procs[0]
    mapping = Mapping(graph, arch, assignment)
    mapping.validate()
    return mapping
