"""Hand-crafted baselines for the skeleton-vs-manual comparisons of section 4."""

from .handcrafted import handcrafted_mapping, handcrafted_tracking_graph

__all__ = ["handcrafted_tracking_graph", "handcrafted_mapping"]
