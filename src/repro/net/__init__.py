"""Distributed execution over TCP: the network-of-workstations target.

The paper runs its MIMD-DM executive on two platforms: the Transputer
ring and "networks of workstations".  :mod:`repro.net` is the second
one — a coordinator (the ``tcp`` backend) that deals mapped processors
over connected ``repro worker`` processes, a pickle-free wire codec for
the data plane, a third port of the kernel primitives
(:class:`~repro.net.kernel.NetKernel`), and a localhost
:class:`~repro.net.harness.ClusterHarness` so tests and CI get a real
multi-process cluster with zero configuration.
"""

from .codec import CodecError, decode, encode, encoded_size
from .coordinator import (
    TcpBackend, WorkerLink, assemble_run_report, run_distributed,
)
from .harness import ClusterHarness, shared_cluster
from .kernel import NetHealthBoard, NetKernel, NetStopEvent, NetStreamBoard
from .protocol import ConnectionClosed, Frame, Link
from .worker import WorkerSession, worker_main

__all__ = [
    "CodecError", "decode", "encode", "encoded_size",
    "TcpBackend", "WorkerLink", "assemble_run_report", "run_distributed",
    "ClusterHarness", "shared_cluster",
    "NetHealthBoard", "NetKernel", "NetStopEvent", "NetStreamBoard",
    "ConnectionClosed", "Frame", "Link",
    "WorkerSession", "worker_main",
]
