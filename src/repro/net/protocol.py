"""Length-prefixed binary framing between coordinator and workers.

Every frame is ``!IB`` (body length, kind byte) followed by the body.
The *data plane* (DATA/CREDIT payloads) uses the pickle-free
:mod:`~repro.net.codec`; the *control plane* (ASSIGN/DONE) carries
pickles because it ships mapping-derived topologies and the function
table — coordinator and workers are one trust domain (the operator
starts both), exactly like the processes backend's spawn payloads.

Run-scoped frames lead with a ``u32`` run id so a late frame from a
finished run (a straggler heartbeat, a result racing teardown) is
dropped instead of corrupting the next run on the same connection.

:class:`Link` wraps one connected socket: ``send`` gather-writes a
header plus any number of buffers under a lock (many executive threads
share the worker's single uplink), ``recv`` is single-reader and returns
``(kind, memoryview)`` over a fresh per-frame buffer, so views handed to
inbox queues stay valid without copying.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Any, List, Tuple

__all__ = [
    "ConnectionClosed", "Link", "Frame",
    "pack_run", "split_run", "pack_edge", "split_edge",
]

_HEADER = struct.Struct("!IB")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

#: Refuse absurd frame lengths: a desynchronised stream would otherwise
#: try to allocate gigabytes from four garbage header bytes.
MAX_FRAME = 1 << 30


class Frame:
    """Frame kinds (one byte on the wire)."""

    DEAD = 0      # synthetic, never sent: a reader thread saw EOF
    HELLO = 1     # worker -> coord: codec {host, pid, version}
    ASSIGN = 2    # coord -> worker: run + now + epoch + pickle payload
    DATA = 3      # either way: run + edge + codec value (routed)
    CREDIT = 4    # consumer -> producer via coord: run + edge + u32 n
    BEAT = 5      # worker -> coord -> other workers: run + slot + age
    COUNT = 6     # worker -> coord -> other workers: run + slot + value
    SINKS = 7     # worker -> coord: run + codec [processor, ...]
    DONE = 8      # worker -> coord: run + pickle result payload
    ERROR = 9     # worker -> coord: run + codec {processor, traceback}
    STOPRUN = 10  # coord -> worker: run (raise the run's stop event)
    STOPREQ = 11  # worker -> coord: run (ask for a global stop)
    RUNEND = 12   # coord -> worker: run (forget this run's state)
    BYE = 13      # coord -> worker: exit cleanly

    # -- the serving plane (client <-> `repro serve` daemon) ---------------
    # Requests are multiplexed over one client socket: every frame leads
    # with a client-chosen u32 request id (reusing pack_run/split_run),
    # so many submits can be in flight on one connection at once.
    SUBMIT = 14   # client -> server: req + pickle {tenant, source, ...}
    RESULT = 15   # server -> client: req + pickle {status, report | error}
    QUERY = 16    # client -> server: req + codec {"what": "stats" | "ps"}
    REPLY = 17    # server -> client: req + codec reply document


class ConnectionClosed(ConnectionError):
    """The peer went away (EOF, reset, or a local close)."""


def pack_run(run: int) -> bytes:
    return _U32.pack(run)


def split_run(body: memoryview) -> Tuple[int, memoryview]:
    if len(body) < 4:
        raise ConnectionClosed("truncated run header")
    return _U32.unpack(body[:4])[0], body[4:]


def pack_edge(run: int, edge: str) -> bytes:
    blob = edge.encode("ascii")
    return _U32.pack(run) + _U16.pack(len(blob)) + blob


def split_edge(rest: memoryview) -> Tuple[str, memoryview]:
    """Split the post-run-id part of a DATA/CREDIT body."""
    if len(rest) < 2:
        raise ConnectionClosed("truncated edge header")
    n = _U16.unpack(rest[:2])[0]
    if len(rest) < 2 + n:
        raise ConnectionClosed("truncated edge name")
    return str(rest[2:2 + n], "ascii"), rest[2 + n:]


def _nbytes(buf: Any) -> int:
    return buf.nbytes if isinstance(buf, memoryview) else len(buf)


class Link:
    """One framed, thread-safe-for-send connection."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass

    @property
    def peer(self) -> str:
        try:
            host, port = self._sock.getpeername()[:2]
            return f"{host}:{port}"
        except OSError:
            return "?"

    def send(self, kind: int, *buffers: Any) -> None:
        """Gather-send one frame (zero-copy for memoryview buffers)."""
        total = sum(_nbytes(b) for b in buffers)
        if total > MAX_FRAME:
            raise ValueError(f"frame of {total} bytes exceeds MAX_FRAME")
        parts: List[Any] = [_HEADER.pack(total, kind)]
        parts.extend(buffers)
        with self._send_lock:
            try:
                while parts:
                    sent = self._sock.sendmsg(parts)
                    parts = self._advance(parts, sent)
            except (OSError, ValueError) as err:
                raise ConnectionClosed(str(err) or "send failed") from None

    @staticmethod
    def _advance(parts: List[Any], sent: int) -> List[Any]:
        """Drop/trim buffers covered by a partial ``sendmsg``."""
        out: List[Any] = []
        for i, buf in enumerate(parts):
            n = _nbytes(buf)
            if sent >= n:
                sent -= n
                continue
            if sent:
                view = buf if isinstance(buf, memoryview) else memoryview(buf)
                out.append(view[sent:])
                sent = 0
            else:
                out.append(buf)
            out.extend(parts[i + 1:])
            break
        return out

    def recv(self) -> Tuple[int, memoryview]:
        """Read one frame; the view is over a fresh per-frame buffer."""
        header = self._recv_exact(_HEADER.size)
        length, kind = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ConnectionClosed(f"oversized frame ({length} bytes)")
        body = self._recv_exact(length) if length else bytearray()
        return kind, memoryview(body)

    def _recv_exact(self, n: int) -> bytearray:
        buf = bytearray(n)
        view = memoryview(buf)
        got = 0
        while got < n:
            try:
                chunk = self._sock.recv_into(view[got:])
            except OSError as err:
                raise ConnectionClosed(str(err) or "recv failed") from None
            if chunk == 0:
                raise ConnectionClosed("peer closed the connection")
            got += chunk
        return buf

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass
