"""The coordinator side of the ``tcp`` backend.

The coordinator owns the run: it generates the executive once, deals the
mapped processors round-robin over the connected workers, ships each
worker an ASSIGN (source + its processor slice + the inter-processor
edge table), and then acts as the hub of a star topology — DATA frames
are routed to the worker hosting the destination processor, CREDIT
frames back to the producer, and BEAT/COUNT board updates are
rebroadcast to everyone else.  A hub is one hop slower than a mesh but
keeps the failure model of the paper's supervisor intact: every link the
supervisor watches is a link the coordinator also watches, so "worker
socket died" and "worker heartbeats went stale" are the same event seen
from two layers.

Termination mirrors :func:`~repro.backends.process_backend.run_multiprocess`
exactly: wait until every sink processor reported via SINKS, broadcast
STOPRUN, wait for DONE payloads, merge blackboards/spans/fault
payloads/realtime halves.  A dead worker socket is fatal *unless* the
run is supervised (then the fault layer's quarantine + re-dispatch picks
up its in-flight work, and the dead worker is simply excluded from the
DONE barrier — provided it hosted no unfinished sink).
"""

from __future__ import annotations

import itertools
import pickle
import queue
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..codegen.pygen import generate_python, thread_name
from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..machine.trace import Instant, Trace
from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping
from ..backends.base import Backend, BackendError, report_from_blackboard
from ..backends.registry import register_backend
from . import codec
from .protocol import ConnectionClosed, Frame, Link, pack_run, split_edge, split_run

__all__ = ["WorkerLink", "run_distributed", "assemble_run_report",
           "TcpBackend"]

_U32 = struct.Struct("!I")
_DD = struct.Struct("!dd")

_RUN_IDS = itertools.count(1)
_LINK_IDS = itertools.count(1)


class WorkerLink:
    """A connected worker as the coordinator sees it.

    A dedicated reader thread drains the socket for the link's whole
    life and routes frames *by run id*: every worker→coordinator frame
    after HELLO is run-scoped, so the link keeps a routing table from
    run id to that run's sink (its event queue).  Routing by id — not by
    "whoever registered last" — is what lets a persistent service keep
    several runs' traffic apart on one socket fabric: a straggler from a
    finished run has no route and is dropped by construction, never
    misdelivered to the run that took its place.

    EOF flips ``alive`` and emits one synthetic :data:`Frame.DEAD` to
    *every* routed sink, so each concurrent run learns about the loss
    through the same queue as everything else.
    """

    def __init__(self, link: Link, meta: Dict[str, Any]):
        self.link = link
        self.meta = meta
        self.id = next(_LINK_IDS)
        self.alive = True
        self._routes: Dict[int, Callable] = {}
        self._routes_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._read_loop, name=f"worker-link-{self.id}", daemon=True
        )
        self._thread.start()

    @property
    def host(self) -> str:
        """Stable display identity: hostname/pid from the HELLO."""
        return f"{self.meta.get('host', '?')}/{self.meta.get('pid', '?')}"

    # -- per-run routing ---------------------------------------------------

    def route(self, run: int, sink: Callable) -> None:
        """Deliver frames whose run id is ``run`` to ``sink``."""
        with self._routes_lock:
            self._routes[run] = sink
        if not self.alive:
            # The reader is already gone: deliver the death notice
            # ourselves so a run attached to a corpse still unblocks.
            sink(self, Frame.DEAD, memoryview(b""))

    def unroute(self, run: int) -> None:
        with self._routes_lock:
            self._routes.pop(run, None)

    def clear_routes(self) -> None:
        with self._routes_lock:
            self._routes.clear()

    @property
    def active_runs(self) -> List[int]:
        with self._routes_lock:
            return sorted(self._routes)

    def _read_loop(self) -> None:
        while True:
            try:
                kind, body = self.link.recv()
            except ConnectionClosed:
                self.alive = False
                with self._routes_lock:
                    sinks = list(self._routes.values())
                for sink in sinks:
                    sink(self, Frame.DEAD, memoryview(b""))
                return
            if len(body) < 4:
                continue  # run-scoped frames always lead with the id
            run = _U32.unpack(body[:4])[0]
            with self._routes_lock:
                sink = self._routes.get(run)
            if sink is not None:
                sink(self, kind, body)

    def close(self) -> None:
        self.link.close()


def _module_names(fns: Dict[str, Any]) -> List[str]:
    """Modules the workers must (re-)import before unpickling ``fns``."""
    names = set()
    for fn in fns.values():
        names.add(getattr(fn, "__module__", None))
    names.discard(None)
    return sorted(names)


def run_distributed(
    mapping: Mapping,
    table: FunctionTable,
    workers: List[WorkerLink],
    *,
    max_iterations: Optional[int] = None,
    args: Optional[Tuple] = None,
    timeout: float = 120.0,
    queue_size: int = 4,
    poll_s: float = 0.02,
    record_spans: bool = True,
    fault_plan: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    budget: Optional[Any] = None,
    on_assign: Optional[Callable[[Dict[str, WorkerLink]], None]] = None,
    source: Optional[str] = None,
    scheduler: Optional[str] = None,
    durations: Optional[Dict[str, float]] = None,
) -> Tuple[Dict[str, Any], List, List, float, Any, Any, Dict[str, str]]:
    """Run the mapped program across ``workers``.

    Returns the ``run_multiprocess`` tuple plus a ``hosts`` map
    (processor id -> worker host identity, with a ``"stream"`` entry for
    the realtime row when the run had a latency budget).  ``on_assign``
    is a test hook called with the processor->link assignment right
    after ASSIGN is sent — chaos tests use it to pick a victim socket.

    ``scheduler`` names the registered policy whose ``assign`` half
    deals mapped processors over the live workers (default: the
    registry's default — cost-aware LPT; ``"round-robin"`` restores the
    historical dealing).  ``durations`` optionally feeds measured
    per-process costs into that decision.

    ``source`` supplies a pre-generated executive (it must come from
    ``generate_python(mapping, max_iterations=...)`` with the same
    arguments); the serving layer passes the cached artefact here so a
    warm run performs zero codegen.
    """
    graph = mapping.graph
    fns = {spec.name: spec.fn for spec in table}
    if source is None:
        source = generate_python(mapping, max_iterations=max_iterations)
    placement = {
        thread_name(pid): proc for pid, proc in mapping.assignment.items()
    }

    seed: Dict[str, Any] = {}
    inputs = [
        p for p in graph.by_kind(ProcessKind.INPUT) if p.func is None
    ]
    if len(args or ()) != len(inputs):
        raise ValueError(
            f"program takes {len(inputs)} argument(s), got {len(args or ())}"
        )
    for process, value in zip(inputs, args or ()):
        seed[f"arg_{process.params.get('param')}"] = value

    # Every inter-processor edge, with its endpoints: workers classify
    # locally (co-located endpoints -> plain queue, one local endpoint ->
    # network channel) and the coordinator routes by destination.
    edges: Dict[str, Tuple[str, str]] = {}
    for idx, edge in enumerate(graph.edges):
        src_proc = mapping.processor_of(edge.src)
        dst_proc = mapping.processor_of(edge.dst)
        if src_proc != dst_proc:
            edges[f"e{idx}"] = (src_proc, dst_proc)

    participating = [
        p for p in mapping.arch.processor_ids() if mapping.processes_on(p)
    ]
    live = [w for w in workers if w.alive]
    if not live:
        raise BackendError(
            "the tcp backend has no live workers (start some with "
            "`repro worker --connect HOST:PORT`)"
        )
    from ..sched.registry import resolve_scheduler

    assignment = resolve_scheduler(scheduler).assign(
        mapping, participating, live, durations=durations,
    )
    used: List[WorkerLink] = []
    for w in assignment.values():
        if w not in used:
            used.append(w)
    procs_of = {
        w: [p for p in participating if assignment[p] is w] for w in used
    }

    faults: Optional[Dict[str, Any]] = None
    if fault_plan is not None:
        from ..faults.policy import FaultPolicy
        from ..faults.topology import FaultTopology

        faults = {
            "plan": fault_plan,
            "policy": fault_policy or FaultPolicy(),
            "topology": FaultTopology.from_mapping(mapping),
        }
    realtime: Optional[Dict[str, Any]] = None
    stream = None
    if budget is not None:
        from ..realtime.topology import StreamTopology

        stream = StreamTopology.from_mapping(mapping)
        if stream is None:
            raise BackendError(
                "a latency budget needs a stream program (no stream "
                "input/output in this mapping)"
            )
        realtime = {"budget": budget, "topology": stream}

    sink_procs = {
        mapping.processor_of(p.id)
        for p in graph.processes.values()
        if p.kind == ProcessKind.MEM
        or (p.kind == ProcessKind.OUTPUT and not p.params.get("discard"))
    }

    run = next(_RUN_IDS)
    inbox: "queue.Queue" = queue.Queue()

    def sink(w: WorkerLink, kind: int, body: memoryview) -> None:
        inbox.put((w, kind, body))

    for w in used:
        w.route(run, sink)

    try:
        modules = b"".join(
            bytes(b) if isinstance(b, memoryview) else b
            for b in codec.encode(_module_names(fns))
        )
        epoch = time.perf_counter()
        for w in used:
            try:
                blob = pickle.dumps({
                    "source": source,
                    "processors": procs_of[w],
                    "placement": placement,
                    "edges": edges,
                    "fns": fns,
                    "seed": seed,
                    "queue_size": queue_size,
                    "poll_s": poll_s,
                    "record_spans": record_spans,
                    "faults": faults,
                    "realtime": realtime,
                    "sink_procs": sorted(sink_procs),
                })
            except Exception as err:
                raise BackendError(
                    "the tcp backend ships the function table by pickle; "
                    f"this table is not picklable: {err}"
                ) from err
            header = (
                pack_run(run)
                + _DD.pack(time.perf_counter(), epoch)
                + _U32.pack(len(modules))
            )
            w.link.send(Frame.ASSIGN, header, modules, blob)
        if on_assign is not None:
            on_assign(dict(assignment))

        route_dst = {e: assignment[dst] for e, (_src, dst) in edges.items()}
        route_src = {e: assignment[src] for e, (src, _dst) in edges.items()}
        deadline = time.monotonic() + timeout
        waiting_sinks = set(sink_procs)
        done: Dict[int, Dict[str, Any]] = {}
        dead: set = set()
        error: Optional[Tuple[str, str]] = None
        stop_sent = False

        def broadcast_stop() -> None:
            for w in used:
                if w.alive:
                    try:
                        w.link.send(Frame.STOPRUN, pack_run(run))
                    except ConnectionClosed:
                        pass

        def forward(target: WorkerLink, kind: int, body: memoryview) -> None:
            if target.alive and target.id not in dead:
                try:
                    target.link.send(kind, body)
                except ConnectionClosed:
                    pass  # its DEAD event is already on its way

        def handle(w: WorkerLink, kind: int, body: memoryview) -> None:
            nonlocal error
            if kind == Frame.DEAD:
                if w.id in dead:
                    return
                dead.add(w.id)
                lost = procs_of.get(w, [])
                if faults is None:
                    error = (
                        w.host,
                        "worker connection lost (hosted: "
                        + ", ".join(lost) + "); enable fault supervision "
                        "(a FaultPlan) to survive worker loss",
                    )
                elif set(lost) & waiting_sinks:
                    error = (
                        w.host,
                        "worker hosting unfinished sink processor(s) "
                        + ", ".join(sorted(set(lost) & waiting_sinks))
                        + " died; sinks cannot be re-dispatched",
                    )
                return
            run_got, rest = split_run(body)
            if run_got != run:
                return
            if kind == Frame.DATA:
                edge, _payload = split_edge(rest)
                target = route_dst.get(edge)
                if target is not None:
                    forward(target, kind, body)
            elif kind == Frame.CREDIT:
                edge, _counter = split_edge(rest)
                target = route_src.get(edge)
                if target is not None:
                    forward(target, kind, body)
            elif kind in (Frame.BEAT, Frame.COUNT):
                for other in used:
                    if other is not w:
                        forward(other, kind, body)
            elif kind == Frame.SINKS:
                waiting_sinks.difference_update(codec.decode(rest))
            elif kind == Frame.DONE:
                done[w.id] = pickle.loads(bytes(rest))
            elif kind == Frame.ERROR:
                info = codec.decode(rest)
                error = (
                    str(info.get("processor", "?")),
                    str(info.get("traceback", "")),
                )
            elif kind == Frame.STOPREQ:
                broadcast_stop()

        def pump() -> Tuple[WorkerLink, int, memoryview]:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise BackendError(
                        "distributed run exceeded its timeout (deadlocked "
                        "executive or partitioned cluster?)"
                    )
                try:
                    return inbox.get(timeout=min(0.2, remaining))
                except queue.Empty:
                    continue

        try:
            while waiting_sinks and error is None:
                handle(*pump())
            broadcast_stop()
            stop_sent = True
            while error is None and any(
                w.id not in done and w.id not in dead for w in used
            ):
                handle(*pump())
        finally:
            if not stop_sent:
                broadcast_stop()
            for w in used:
                if w.alive:
                    try:
                        w.link.send(Frame.RUNEND, pack_run(run))
                    except ConnectionClosed:
                        pass
        wall_us = (time.perf_counter() - epoch) * 1e6

        if error is not None:
            where, detail = error
            raise BackendError(
                f"executive failed on {where!r}:\n{detail}"
            )

        blackboard: Dict[str, Any] = {}
        compute: List = []
        transfer: List = []
        fault_payloads: List = []
        rt_halves: Dict[str, Any] = {"admission": None, "delivery": None}
        for w in used:
            payload = done.get(w.id)
            if payload is None:
                continue  # dead, supervised: survivors hold its results
            blackboard.update(payload["blackboard"])
            compute.extend(payload["compute"])
            transfer.extend(payload["transfer"])
            fault_payloads.extend(payload["faults"])
            rt = payload["realtime"]
            if rt is not None:
                for half in ("admission", "delivery"):
                    if rt.get(half) is not None:
                        rt_halves[half] = rt[half]
        compute.sort(key=lambda s: s.start)
        transfer.sort(key=lambda s: s.start)
        fault_report = None
        if faults is not None:
            from ..faults.report import FaultReport

            fault_report = FaultReport.from_payload(fault_payloads).sorted()
        realtime_report = None
        if realtime is not None:
            from ..realtime.ledger import assemble_report

            realtime_report = assemble_report(
                budget, rt_halves["admission"], rt_halves["delivery"]
            )
        hosts = {proc: assignment[proc].host for proc in participating}
        if stream is not None:
            hosts["stream"] = assignment[stream.input_processor].host
        return (blackboard, compute, transfer, wall_us,
                fault_report, realtime_report, hosts)
    finally:
        for w in used:
            w.unroute(run)


def assemble_run_report(
    result: Tuple[Dict[str, Any], List, List, float, Any, Any, Dict[str, str]],
    *,
    backend: str = "tcp",
) -> RunReport:
    """Turn a :func:`run_distributed` result tuple into a RunReport.

    Shared by :class:`TcpBackend` and the serving scheduler (which calls
    :func:`run_distributed` directly on checked-out pool workers).
    """
    (blackboard, compute, transfer, wall_us, fault_report,
     realtime_report, hosts) = result
    trace = Trace()
    trace.compute = compute
    trace.transfer = transfer
    if fault_report is not None:
        fault_report.annotate_trace(trace)
    if realtime_report is not None:
        realtime_report.annotate_trace(trace)
    _tag_hosts(trace, hosts)
    report = report_from_blackboard(
        blackboard, makespan=wall_us, backend=backend, trace=trace
    )
    report.faults = fault_report
    report.realtime = realtime_report
    return report


def _tag_hosts(trace: Trace, hosts: Dict[str, str]) -> None:
    """Stamp each fault/rt instant with the host that owned its row."""
    tagged: List[Instant] = []
    for inst in trace.instants:
        host = hosts.get(inst.resource)
        if host:
            detail = f"{inst.detail} [host {host}]" if inst.detail else f"[host {host}]"
            inst = Instant(inst.name, inst.resource, inst.time, detail)
        tagged.append(inst)
    trace.instants = tagged
    # Health counter series get the owning host in the series name, so a
    # multi-host trace shows which machine a limping score belongs to.
    from ..machine.trace import CounterSample

    stamped: List[CounterSample] = []
    for sample in trace.counters:
        host = hosts.get(sample.resource)
        if host:
            sample = CounterSample(
                f"{sample.name}@{host}", sample.resource,
                sample.time, dict(sample.values),
            )
        stamped.append(sample)
    trace.counters = stamped


@register_backend
class TcpBackend(Backend):
    """Run the generated executive on a TCP cluster of workers.

    The paper's second MIMD-DM target: a network of workstations.  By
    default the backend lazily starts (and reuses) a shared localhost
    :class:`~repro.net.harness.ClusterHarness` of 4 workers, so
    ``--backend tcp`` works out of the box; options select a real
    cluster instead: ``cluster`` (an existing harness), ``cluster_size``
    (spawn a private localhost cluster of N), or ``listen``
    (``HOST:PORT`` — bind there and wait for externally started
    ``repro worker --connect`` processes, with ``cluster_size`` as the
    worker count to wait for).
    """

    name = "tcp"
    description = "generated executive on a TCP worker cluster (distributed)"
    real = True
    supports_faults = True
    supports_realtime = True
    distributed = True

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        queue_size: int = 4,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        budget: Optional[Any] = None,
        cluster: Optional[Any] = None,
        cluster_size: Optional[int] = None,
        listen: Optional[str] = None,
        on_assign: Optional[Callable] = None,
        scheduler: Optional[str] = None,
        **options: Any,
    ) -> RunReport:
        if mapping is None:
            raise BackendError("the tcp backend needs a mapping")
        from .harness import ClusterHarness, shared_cluster
        from .worker import parse_hostport

        own: Optional[ClusterHarness] = None
        if cluster is not None:
            harness = cluster
        elif listen is not None:
            host, port = parse_hostport(listen, default_host="")
            own = harness = ClusterHarness(
                size=cluster_size or 2, spawn=False,
                host=host or "0.0.0.0", port=port,
            )
        elif cluster_size is not None:
            own = harness = ClusterHarness(size=cluster_size)
        else:
            harness = shared_cluster()
        try:
            links = harness.checkout(timeout=60.0 if listen else 30.0)
            try:
                result = run_distributed(
                    mapping, table, links,
                    max_iterations=max_iterations,
                    args=args,
                    timeout=timeout,
                    queue_size=queue_size,
                    fault_plan=fault_plan,
                    fault_policy=fault_policy,
                    budget=budget,
                    on_assign=on_assign,
                    scheduler=scheduler,
                )
            finally:
                harness.release(links)
        finally:
            if own is not None:
                own.shutdown()
        return assemble_run_report(result, backend=self.name)
