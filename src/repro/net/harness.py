"""Localhost worker cluster for tests, CI, and the out-of-the-box path.

``ClusterHarness`` binds a listening socket, optionally spawns N
``repro worker --connect`` subprocesses pointed at it, and pools the
resulting :class:`~repro.net.coordinator.WorkerLink` objects so many
runs (a whole conformance fuzz campaign, a soak) reuse one cluster.
Spawned workers inherit the parent's ``sys.path`` as ``PYTHONPATH`` so
they can unpickle function tables defined in test modules.

The pool self-heals: ``checkout`` prunes links whose sockets died and
respawns subprocesses up to a bounded budget — chaos tests kill worker
sockets on purpose, and the worker side's reconnect loop usually beats
the respawn anyway (a killed *socket* leaves the process alive, and it
dials right back in).

``shared_cluster`` keeps one process-wide 4-worker harness alive (torn
down atexit): it is what ``--backend tcp`` uses when given no cluster
options, which also makes the conformance runner's zero-option
``get_backend("tcp").run(...)`` calls work unchanged.
"""

from __future__ import annotations

import atexit
import os
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from ..backends.base import BackendError
from . import codec
from .coordinator import WorkerLink
from .protocol import ConnectionClosed, Frame, Link

__all__ = ["ClusterHarness", "shared_cluster"]


class ClusterHarness:
    """Accepts worker connections; optionally owns worker subprocesses."""

    def __init__(
        self,
        size: int = 4,
        *,
        spawn: bool = True,
        host: str = "127.0.0.1",
        port: int = 0,
        respawn_limit: Optional[int] = None,
    ):
        self.size = size
        self._spawn = spawn
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._cond = threading.Condition()
        self._idle: List[WorkerLink] = []
        self._out: List[WorkerLink] = []
        self._procs: List[subprocess.Popen] = []
        self._respawns_left = (
            respawn_limit if respawn_limit is not None else 2 * size
        )
        self._closing = False
        self._closed = threading.Event()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        self._acceptor.start()
        if spawn:
            for _ in range(size):
                self._spawn_worker()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return not self._closing

    # -- accepting -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handshake, args=(sock,),
                name="cluster-handshake", daemon=True,
            ).start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(5.0)
            link = Link(sock)
            kind, body = link.recv()
            if kind != Frame.HELLO:
                link.close()
                return
            meta = codec.decode(body)
            sock.settimeout(None)
        except (ConnectionClosed, codec.CodecError, OSError):
            try:
                sock.close()
            except OSError:
                pass
            return
        worker = WorkerLink(link, meta if isinstance(meta, dict) else {})
        with self._cond:
            if self._closing:
                worker.close()
                return
            self._idle.append(worker)
            self._cond.notify_all()

    # -- spawning --------------------------------------------------------------

    def _spawn_worker(self) -> None:
        env = os.environ.copy()
        # The worker must import repro *and* the modules that define the
        # application's sequential functions (often test modules): hand
        # it our whole import path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        self._procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", self.address],
            env=env,
        ))

    def _heal_locked(self) -> None:
        self._idle = [w for w in self._idle if w.alive]
        if not self._spawn:
            return
        live = []
        for proc in self._procs:
            if proc.poll() is None:
                live.append(proc)
        self._procs = live
        while len(self._procs) < self.size and self._respawns_left > 0:
            self._respawns_left -= 1
            self._spawn_worker()

    def scale_to(self, n: int) -> int:
        """Grow the pool to ``n`` workers (elastic scale-up; up-only).

        Spawns the extra subprocesses immediately (when the harness owns
        its workers) and extends the respawn budget proportionally, so a
        scaled-up cluster self-heals at its new size.  Shrinking is
        deliberately unsupported — see
        :class:`repro.sched.elastic.ElasticController` — so a target at
        or below the current size is a no-op.  Returns the (new) size.
        """
        with self._cond:
            if self._closing:
                raise BackendError(
                    f"cluster at {self.address} is shut down"
                )
            grown = n - self.size
            if grown <= 0:
                return self.size
            self.size = n
            self._respawns_left += 2 * grown
            if self._spawn:
                for _ in range(grown):
                    self._spawn_worker()
            self._cond.notify_all()
            return self.size

    # -- the pool --------------------------------------------------------------

    def checkout(
        self, n: Optional[int] = None, timeout: float = 30.0
    ) -> List[WorkerLink]:
        """Take ``n`` (default: all) live workers out of the pool.

        Raises :class:`BackendError` when the request cannot be
        satisfied — immediately when the cluster is shut down or has
        provably no way to produce ``want`` workers (every subprocess
        dead and the respawn budget exhausted), and after ``timeout``
        otherwise, so a caller can never block forever on a cluster
        that died underneath it.
        """
        want = n if n is not None else self.size
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closing:
                    raise BackendError(
                        f"cluster at {self.address} is shut down"
                    )
                self._heal_locked()
                if len(self._idle) >= want:
                    taken, self._idle = self._idle[:want], self._idle[want:]
                    self._out.extend(taken)
                    return taken
                if self._hopeless_locked(want):
                    raise BackendError(
                        f"cluster at {self.address} cannot supply {want} "
                        f"worker(s): {len(self._idle)} idle, "
                        f"{len(self._out)} checked out, every worker "
                        "subprocess dead and the respawn budget exhausted"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise BackendError(
                        f"cluster at {self.address}: only "
                        f"{len(self._idle)}/{want} worker(s) connected "
                        f"after {timeout:.0f}s"
                    )
                self._cond.wait(min(0.2, remaining))

    def _hopeless_locked(self, want: int) -> bool:
        """No future event can ever satisfy a checkout of ``want``.

        Only a spawning harness can be hopeless: with externally started
        workers (``spawn=False``) a new connection may always arrive.
        ``_heal_locked`` ran just before, so ``_procs`` holds only live
        subprocesses and the idle list only live links; checked-out
        links may still be released back, so they count as potential.
        """
        if not self._spawn or self._respawns_left > 0:
            return False
        live_out = sum(1 for w in self._out if w.alive)
        return len(self._idle) + live_out + len(self._procs) < want

    def release(self, links: List[WorkerLink]) -> None:
        with self._cond:
            for worker in links:
                if worker in self._out:
                    self._out.remove(worker)
                worker.clear_routes()
                if worker.alive:
                    self._idle.append(worker)
            self._cond.notify_all()

    # -- teardown --------------------------------------------------------------

    def shutdown(self) -> None:
        """Tear the cluster down.  Idempotent and concurrency-safe: the
        first caller does the work, every other caller (including one
        racing the first) blocks until teardown is complete and then
        returns — nobody ever observes a half-closed cluster."""
        with self._cond:
            if self._closing:
                self._cond.notify_all()
                already = True
            else:
                self._closing = True
                already = False
            everyone = self._idle + self._out
            self._idle = []
            self._out = []
            self._cond.notify_all()
        if already:
            self._closed.wait()
            return
        for worker in everyone:
            try:
                worker.link.send(Frame.BYE)
            except ConnectionClosed:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        for proc in self._procs:
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
        for worker in everyone:
            worker.close()
        self._closed.set()

    def __enter__(self) -> "ClusterHarness":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


_shared: Optional[ClusterHarness] = None
_shared_lock = threading.Lock()


def _shutdown_shared() -> None:
    """Tear down the process-wide cluster.  Safe to call repeatedly and
    from concurrent threads: the reference is swapped out under the lock
    (so a racing ``shared_cluster`` never hands out a dying harness) and
    ``ClusterHarness.shutdown`` itself is idempotent."""
    global _shared
    with _shared_lock:
        harness, _shared = _shared, None
    if harness is not None:
        harness.shutdown()


def shared_cluster(size: int = 4) -> ClusterHarness:
    """The process-wide localhost cluster ``--backend tcp`` defaults to."""
    global _shared
    with _shared_lock:
        if _shared is None or not _shared.alive:
            _shared = ClusterHarness(size=size)
            atexit.register(_shutdown_shared)
        return _shared
