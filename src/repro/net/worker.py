"""The ``repro worker`` entrypoint: one node of a distributed cluster.

A worker dials the coordinator (``repro worker --connect host:port``),
announces itself with HELLO, and then serves runs for the life of the
connection: each ASSIGN carries the generated executive source, this
worker's slice of the processor set, and the wire plumbing parameters;
the worker builds a :class:`~repro.net.kernel.NetKernel` (wrapped by the
fault supervisor and the realtime layer exactly as on the processes
backend), runs its executive threads, and reports SINKS/DONE/ERROR back
up the same socket.

Workers are *persistent* — they serve many runs — so two things keep
state from leaking between runs: every run-scoped frame carries the run
id (stragglers from a finished run are dropped), and ASSIGN names the
modules that define the application's sequential functions, which the
worker re-imports before unpickling the table.  That reproduces the
``spawn`` start method's fresh-interpreter semantics: module-level
stream state (frame counters and the like) starts from scratch each run.

A lost connection aborts the active run locally (the coordinator saw the
same dead socket and is already re-dispatching in-flight work to
survivors) and the worker re-dials with bounded exponential backoff, so
a restarted coordinator picks its cluster back up without operator help.
"""

from __future__ import annotations

import importlib
import os
import pickle
import socket
import struct
import sys
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..codegen.pygen import load_executive
from . import codec
from .kernel import NetHealthBoard, NetKernel, NetStopEvent, NetStreamBoard
from .protocol import ConnectionClosed, Frame, Link, pack_run, split_edge, split_run

__all__ = ["WorkerSession", "worker_main", "parse_hostport"]

_U32 = struct.Struct("!I")
_DD = struct.Struct("!dd")

#: Modules never re-imported between runs (no stable import name).
_NO_REFRESH = ("builtins", "__main__", "__mp_main__")


def parse_hostport(text: str, *, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host or default_host, int(port)


def _refresh_modules(names: List[str]) -> None:
    """Re-import the modules whose functions the next run will unpickle.

    Unpickling a function resolves it by module + name at load time, so
    re-importing *first* means the run binds to fresh module globals —
    the persistent-worker equivalent of spawn's clean interpreter.
    """
    for name in names:
        if name in _NO_REFRESH:
            continue
        module = sys.modules.get(name)
        if module is None:
            importlib.import_module(name)
        else:
            importlib.reload(module)


class _Run:
    """Everything one ASSIGN set up (the active run of a session)."""

    def __init__(self, run_id: int, base: NetKernel, top: Any,
                 stop: NetStopEvent):
        self.run_id = run_id
        self.base = base
        self.top = top           # base, possibly wrapped (faults/realtime)
        self.stop = stop
        self.health: Optional[NetHealthBoard] = None
        self.stream_board: Optional[NetStreamBoard] = None
        self.rt_kernel: Optional[Any] = None
        self.wrapped = False     # True when top != base (needs shutdown())
        self.source = ""
        self.fns: Dict[str, Any] = {}
        self.seed: Dict[str, Any] = {}
        self.my_sinks: List[str] = []
        self.thread: Optional[threading.Thread] = None


class WorkerSession:
    """One connection's lifetime: HELLO, then serve runs until BYE/EOF."""

    def __init__(self, link: Link):
        self.link = link
        self.ctx: Optional[_Run] = None

    def serve(self) -> str:
        """Returns ``"bye"`` on a clean BYE; raises ConnectionClosed."""
        self.link.send(Frame.HELLO, *codec.encode({
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "version": 1,
        }))
        try:
            while True:
                kind, body = self.link.recv()
                if kind == Frame.BYE:
                    return "bye"
                self._dispatch(kind, body)
        finally:
            # Whatever ended the session, unwind the active run locally.
            ctx = self.ctx
            if ctx is not None:
                ctx.stop.set_local()

    # -- frame dispatch (the single reader thread) -------------------------

    def _dispatch(self, kind: int, body: memoryview) -> None:
        if kind == Frame.ASSIGN:
            return self._assign(body)
        ctx = self.ctx
        if ctx is None:
            return
        run, rest = split_run(body)
        if run != ctx.run_id:
            return  # straggler from a finished run
        if kind == Frame.DATA:
            edge, payload = split_edge(rest)
            inbox = ctx.base.inboxes.get(edge)
            if inbox is not None:
                inbox.push(payload)
        elif kind == Frame.CREDIT:
            edge, counter = split_edge(rest)
            ctx.base.add_credit(edge, _U32.unpack(counter)[0])
        elif kind == Frame.BEAT:
            if ctx.health is not None:
                ctx.health.apply(rest)
        elif kind == Frame.COUNT:
            if ctx.stream_board is not None:
                ctx.stream_board.apply(rest)
        elif kind == Frame.STOPRUN:
            ctx.stop.set_local()
        elif kind == Frame.RUNEND:
            ctx.stop.set_local()
            self.ctx = None

    # -- run setup (synchronous: later DATA needs the inboxes) -------------

    def _assign(self, body: memoryview) -> None:
        run, rest = split_run(body)
        try:
            ctx = self._build_run(run, rest)
        except Exception:
            try:
                self.link.send(Frame.ERROR, pack_run(run), *codec.encode({
                    "processor": "?",
                    "traceback": traceback.format_exc(),
                }))
            except ConnectionClosed:
                pass
            return
        old, self.ctx = self.ctx, ctx
        if old is not None:
            old.stop.set_local()
            if old.thread is not None:
                old.thread.join(1.0)
        ctx.thread = threading.Thread(
            target=self._execute, args=(ctx,),
            name=f"net-run-{run}", daemon=True,
        )
        ctx.thread.start()

    def _build_run(self, run: int, rest: memoryview) -> _Run:
        coord_now, coord_epoch = _DD.unpack(rest[:16])
        mlen = _U32.unpack(rest[16:20])[0]
        modules = codec.decode(rest[20:20 + mlen])
        local_now = time.perf_counter()
        # perf_counter is CLOCK_MONOTONIC (system-wide on Linux), so on
        # one host this offset is near-exact; across hosts it absorbs
        # only the ASSIGN's flight time — well inside the span-bound
        # slack the conformance invariants allow wall-clock backends.
        epoch = local_now - (coord_now - coord_epoch)
        _refresh_modules(modules)
        payload = pickle.loads(rest[20 + mlen:])

        stop = NetStopEvent(self.link, run)
        base = NetKernel(
            payload["processors"],
            placement=payload["placement"],
            edges=payload["edges"],
            link=self.link,
            run_id=run,
            stop_event=stop,
            queue_size=payload["queue_size"],
            poll_s=payload["poll_s"],
            epoch=epoch,
            record_spans=payload["record_spans"],
        )
        ctx = _Run(run, base, base, stop)
        kernel: Any = base
        faults = payload.get("faults")
        if faults is not None:
            from ..faults.report import FaultReport
            from ..faults.supervisor import SupervisedKernel

            ctx.health = NetHealthBoard(
                faults["topology"].n_slots, self.link, run
            )
            kernel = SupervisedKernel(
                base,
                faults["topology"],
                plan=faults["plan"],
                policy=faults["policy"],
                report=FaultReport(),
                board=ctx.health,
                processor=base.processors,
            )
            ctx.wrapped = True
        realtime = payload.get("realtime")
        if realtime is not None:
            from ..realtime.kernel import RealtimeKernel

            ctx.stream_board = NetStreamBoard(self.link, run)
            kernel = ctx.rt_kernel = RealtimeKernel(
                kernel,
                realtime["topology"],
                realtime["budget"],
                board=ctx.stream_board,
                processor=base.processors,
            )
            ctx.wrapped = True
        ctx.top = kernel
        ctx.source = payload["source"]
        ctx.fns = payload["fns"]
        ctx.seed = payload["seed"]
        ctx.my_sinks = sorted(
            p for p in payload["sink_procs"] if p in base.processors
        )
        return ctx

    # -- the run thread ----------------------------------------------------

    def _execute(self, ctx: _Run) -> None:
        link = self.link
        try:
            module = load_executive(ctx.source)
            ctx.top.blackboard.update(ctx.seed)
            _threads, sinks = module["build_executive"](ctx.top, ctx.fns)
            local_sinks = [t for t in sinks if isinstance(t, threading.Thread)]
            for thread in local_sinks:
                while thread.is_alive() and not ctx.stop.is_set():
                    thread.join(0.1)
            if local_sinks and not ctx.stop.is_set():
                link.send(
                    Frame.SINKS, pack_run(ctx.run_id),
                    *codec.encode(ctx.my_sinks),
                )
            ctx.stop.wait()
            for thread in ctx.base.local_threads():
                thread.join(0.5)
            if ctx.wrapped:
                # Stop the service threads (heartbeat, realtime watchdog)
                # before reporting: a beat sent after DONE would be a
                # straggler the next run must not see.
                ctx.top.shutdown()
            fault_payload: List = []
            if ctx.wrapped and hasattr(ctx.top, "fault_report"):
                fault_payload = ctx.top.fault_report.to_payload()
            rt_payload = None
            if ctx.rt_kernel is not None:
                rt_payload = {
                    "admission": ctx.rt_kernel.admission_payload(),
                    "delivery": ctx.rt_kernel.delivery_payload(),
                }
            blob = pickle.dumps({
                "blackboard": ctx.base.blackboard,
                "compute": ctx.base.compute_spans,
                "transfer": ctx.base.transfer_spans,
                "faults": fault_payload,
                "realtime": rt_payload,
            })
            link.send(Frame.DONE, pack_run(ctx.run_id), blob)
        except ConnectionClosed:
            ctx.stop.set_local()
        except Exception:
            ctx.stop.set_local()
            try:
                link.send(Frame.ERROR, pack_run(ctx.run_id), *codec.encode({
                    "processor": ctx.base.processor,
                    "traceback": traceback.format_exc(),
                }))
            except ConnectionClosed:
                pass


def worker_main(
    connect: str,
    *,
    retries: int = 8,
    backoff_s: float = 0.05,
    max_backoff_s: float = 2.0,
) -> int:
    """Serve a coordinator until BYE; reconnect on connection loss.

    ``retries`` bounds *consecutive* failed dials; a successful
    connection resets the budget, so a long-lived worker survives any
    number of coordinator restarts but gives up promptly when the
    coordinator is gone for good.
    """
    try:
        host, port = parse_hostport(connect)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as err:
            failures += 1
            if failures > retries:
                print(
                    f"error: cannot reach coordinator at {host}:{port} "
                    f"after {retries} attempts: {err}",
                    file=sys.stderr,
                )
                return 1
            time.sleep(min(backoff_s * (2 ** (failures - 1)), max_backoff_s))
            continue
        failures = 0
        sock.settimeout(None)
        session = WorkerSession(Link(sock))
        try:
            if session.serve() == "bye":
                return 0
        except ConnectionClosed:
            continue  # re-dial with a fresh backoff budget
