"""Pickle-free wire codec for executive payloads.

Values crossing inter-processor edges on the ``tcp`` backend are encoded
with a small tag-based binary format instead of pickle: the *data plane*
of a distributed run must not execute arbitrary code on receipt, and the
dominant payloads (numpy frames, tuples of scalars) deserve a zero-copy
path.  :func:`encode` returns a list of buffers suitable for
``socket.sendmsg`` — a C-contiguous ndarray contributes its own
``memoryview``, so a 10 MB frame is never copied into the frame body —
and :func:`decode` materialises the value from one ``memoryview``,
copying array bytes exactly once (out of the receive buffer).

The encodable universe is deliberately closed: the Python scalars, str/
bytes, tuples/lists/dicts, numpy arrays and scalars, and the executive's
own tokens (``Stop``, ``NoPiece``, the supervisor's ``Packet``/``Result``
envelopes, ``TaskOutcome``).  Anything else raises :class:`CodecError` —
an application that needs an exotic type on a distributed edge should
convert it to arrays/tuples at the edge, exactly as the paper's CFG/DFG
interface demands.  Truncated or trailing-garbage frames also raise
:class:`CodecError`; the property tests in ``tests/net/test_codec.py``
fuzz both directions.
"""

from __future__ import annotations

import struct
from typing import Any, List

from ..codegen.kernel import NoPiece, Stop
from ..core.semantics import TaskOutcome
from ..faults.supervisor import Packet, Result

try:  # numpy is a hard dependency of the repo, but stay import-safe.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["CodecError", "encode", "decode", "encoded_size"]


class CodecError(ValueError):
    """A value cannot be wire-encoded, or a frame cannot be decoded."""


_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

#: int values outside this range take the arbitrary-precision path.
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1

# Tags (one byte each).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"        # fixed 64-bit
_T_BIGINT = b"I"     # length-prefixed two's-complement
_T_FLOAT = b"f"
_T_STR = b"s"
_T_BYTES = b"b"
_T_TUPLE = b"t"
_T_LIST = b"l"
_T_DICT = b"d"
_T_ARRAY = b"a"
_T_NPSCALAR = b"x"
_T_STOP = b"S"
_T_NOPIECE = b"p"
_T_PACKET = b"P"
_T_RESULT = b"R"
_T_OUTCOME = b"O"


class _Writer:
    """Accumulates literal bytes, flushing around zero-copy buffers."""

    __slots__ = ("parts", "_acc")

    def __init__(self) -> None:
        self.parts: List[Any] = []
        self._acc = bytearray()

    def lit(self, data: bytes) -> None:
        self._acc += data

    def raw(self, view: memoryview) -> None:
        """Append a buffer without copying it into the accumulator."""
        if self._acc:
            self.parts.append(bytes(self._acc))
            self._acc = bytearray()
        self.parts.append(view)

    def finish(self) -> List[Any]:
        if self._acc:
            self.parts.append(bytes(self._acc))
            self._acc = bytearray()
        return self.parts


def _encode_into(value: Any, w: _Writer) -> None:
    # Exact type checks where subclassing would change the wire meaning
    # (bool is an int subclass; numpy scalars are not Python floats).
    if value is None:
        w.lit(_T_NONE)
    elif value is True:
        w.lit(_T_TRUE)
    elif value is False:
        w.lit(_T_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            w.lit(_T_INT + _I64.pack(value))
        else:
            blob = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            w.lit(_T_BIGINT + _U32.pack(len(blob)) + blob)
    elif type(value) is float:
        w.lit(_T_FLOAT + _F64.pack(value))
    elif type(value) is str:
        blob = value.encode("utf-8")
        w.lit(_T_STR + _U32.pack(len(blob)) + blob)
    elif type(value) in (bytes, bytearray):
        w.lit(_T_BYTES + _U32.pack(len(value)))
        w.lit(bytes(value))
    elif type(value) is tuple:
        w.lit(_T_TUPLE + _U32.pack(len(value)))
        for item in value:
            _encode_into(item, w)
    elif type(value) is list:
        w.lit(_T_LIST + _U32.pack(len(value)))
        for item in value:
            _encode_into(item, w)
    elif type(value) is dict:
        w.lit(_T_DICT + _U32.pack(len(value)))
        for key, item in value.items():
            _encode_into(key, w)
            _encode_into(item, w)
    elif isinstance(value, Stop):
        w.lit(_T_STOP)
    elif isinstance(value, NoPiece):
        w.lit(_T_NOPIECE)
    elif isinstance(value, Packet):
        w.lit(_T_PACKET + _I64.pack(value.seq))
        _encode_into(value.value, w)
    elif isinstance(value, Result):
        w.lit(_T_RESULT + _I64.pack(value.seq))
        _encode_into(value.value, w)
    elif isinstance(value, TaskOutcome):
        w.lit(_T_OUTCOME)
        _encode_into(list(value.results), w)
        _encode_into(list(value.subtasks), w)
    elif _np is not None and isinstance(value, _np.ndarray):
        if value.dtype.hasobject:
            raise CodecError(
                "object-dtype arrays cannot cross a network edge"
            )
        arr = _np.ascontiguousarray(value)
        if arr.shape != value.shape:
            # ascontiguousarray promotes 0-d arrays to shape (1,).
            arr = arr.reshape(value.shape)
        dtype = arr.dtype.str.encode("ascii")
        w.lit(_T_ARRAY + _U8.pack(len(dtype)) + dtype)
        w.lit(_U8.pack(arr.ndim))
        for dim in arr.shape:
            w.lit(_U32.pack(dim))
        w.lit(_U32.pack(arr.nbytes))
        if arr.nbytes == 0:
            pass  # size-0 arrays ship header-only
        elif arr.ndim == 0:
            w.lit(arr.tobytes())  # 0-d views cannot be cast to "B"
        else:
            # Zero-copy send path: the array's own buffer rides the frame.
            w.raw(memoryview(arr).cast("B"))
    elif _np is not None and isinstance(value, _np.generic):
        if value.dtype.hasobject:  # pragma: no cover - no such scalars
            raise CodecError("object-dtype scalars cannot be encoded")
        dtype = value.dtype.str.encode("ascii")
        blob = value.tobytes()
        w.lit(_T_NPSCALAR + _U8.pack(len(dtype)) + dtype
              + _U32.pack(len(blob)) + blob)
    else:
        raise CodecError(
            f"type {type(value).__name__!r} is not wire-encodable; "
            "distributed edges carry scalars, str/bytes, tuples/lists/"
            "dicts, numpy arrays and executive tokens only"
        )


def encode(value: Any) -> List[Any]:
    """Encode ``value`` as a list of buffers (gather-send ready)."""
    w = _Writer()
    _encode_into(value, w)
    return w.finish()


def encoded_size(buffers: List[Any]) -> int:
    """Total byte length of an :func:`encode` result."""
    return sum(len(b) if isinstance(b, (bytes, bytearray)) else b.nbytes
               for b in buffers)


class _Reader:
    __slots__ = ("view", "pos")

    def __init__(self, view: memoryview):
        self.view = view
        self.pos = 0

    def take(self, n: int) -> memoryview:
        end = self.pos + n
        if end > len(self.view):
            raise CodecError(
                f"truncated frame: wanted {n} byte(s) at offset "
                f"{self.pos}, only {len(self.view) - self.pos} left"
            )
        out = self.view[self.pos:end]
        self.pos = end
        return out

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]


def _decode_from(r: _Reader) -> Any:
    tag = bytes(r.take(1))
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.i64()
    if tag == _T_BIGINT:
        return int.from_bytes(r.take(r.u32()), "big", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        return str(r.take(r.u32()), "utf-8")
    if tag == _T_BYTES:
        return bytes(r.take(r.u32()))
    if tag == _T_TUPLE:
        return tuple(_decode_from(r) for _ in range(r.u32()))
    if tag == _T_LIST:
        return [_decode_from(r) for _ in range(r.u32())]
    if tag == _T_DICT:
        n = r.u32()
        out = {}
        for _ in range(n):
            key = _decode_from(r)
            out[key] = _decode_from(r)
        return out
    if tag == _T_STOP:
        return Stop()
    if tag == _T_NOPIECE:
        return NoPiece()
    if tag == _T_PACKET:
        seq = r.i64()
        return Packet(seq, _decode_from(r))
    if tag == _T_RESULT:
        seq = r.i64()
        return Result(seq, _decode_from(r))
    if tag == _T_OUTCOME:
        results = _decode_from(r)
        subtasks = _decode_from(r)
        return TaskOutcome(results=results, subtasks=subtasks)
    if tag == _T_ARRAY:
        if _np is None:  # pragma: no cover - numpy is baked in
            raise CodecError("numpy unavailable: cannot decode an array")
        dtype = _np.dtype(str(r.take(r.u8()), "ascii"))
        shape = tuple(r.u32() for _ in range(r.u8()))
        nbytes = r.u32()
        expected = dtype.itemsize
        for dim in shape:
            expected *= dim
        if nbytes != expected:
            raise CodecError(
                f"array header inconsistent: {nbytes} payload byte(s) "
                f"for {dtype}{list(shape)}"
            )
        raw = r.take(nbytes)
        # Copy once, out of the receive buffer, so the frame can be freed.
        return _np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == _T_NPSCALAR:
        if _np is None:  # pragma: no cover
            raise CodecError("numpy unavailable: cannot decode a scalar")
        dtype = _np.dtype(str(r.take(r.u8()), "ascii"))
        blob = r.take(r.u32())
        return _np.frombuffer(blob, dtype=dtype)[0]
    raise CodecError(f"unknown wire tag {tag!r} at offset {r.pos - 1}")


def decode(data: Any) -> Any:
    """Decode one value from ``data`` (bytes or memoryview).

    The value must span the buffer exactly: trailing bytes mean a
    framing bug upstream and raise :class:`CodecError`.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    r = _Reader(view)
    value = _decode_from(r)
    if r.pos != len(view):
        raise CodecError(
            f"trailing garbage: {len(view) - r.pos} byte(s) after the "
            "decoded value"
        )
    return value
