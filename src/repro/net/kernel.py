"""The kernel primitives over TCP: SKiPPER's network-of-workstations port.

Third port of the primitive set (after ``ThreadKernel`` and
``ProcessKernel``): the same generated executive runs across machines.
One :class:`NetKernel` lives in each worker process and may host
*several* mapped processors (the coordinator deals processors round-robin
when the program is wider than the cluster); co-located processes use
plain in-process queues, and only edges that actually cross workers
become network channels.

Flow control replaces the bounded ``multiprocessing.Queue``: each
outgoing network edge holds ``queue_size`` credits, a send consumes one,
and the consumer returns a CREDIT frame per dequeued value — so a slow
consumer exerts exactly the same backpressure a full bounded queue
would, and the supervisor's / realtime pump's ``put_nowait`` calls see
``queue.Full`` just like on the other kernels.

The shared stop event and both shared boards (heartbeats, stream
counters) are mirrored over the same connection: local writes update the
local copy and emit a frame; the coordinator relays to the other
workers, which fold the update in monotonically.  A dead socket simply
stops a worker's heartbeats — which is precisely the signal the fault
supervisor's staleness scan is built on.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

import struct

from ..codegen.kernel import Shutdown, Stop
from ..machine.trace import Span
from . import codec
from .protocol import ConnectionClosed, Frame, Link, pack_edge, pack_run

__all__ = [
    "NetKernel", "NetStopEvent", "NetHealthBoard", "NetStreamBoard",
    "RemoteStub",
]

_U32 = struct.Struct("!I")
_SLOT_AGE = struct.Struct("!Id")
_COUNT = struct.Struct("!Bd")


class RemoteStub:
    """Stand-in for an executive thread hosted by another worker."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def join(self, timeout: Optional[float] = None) -> None:
        return None

    def is_alive(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"<remote thread {self.name}>"


class NetStopEvent:
    """The run's stop flag, mirrored through the coordinator.

    ``set()`` (reached through the supervisor's abandon path or an
    executive error) raises the local flag *and* sends one STOPREQ so the
    coordinator broadcasts STOPRUN to every worker — the distributed
    equivalent of setting the shared multiprocessing event.
    ``set_local()`` is the receive side: STOPRUN raises the flag without
    echoing a request back.
    """

    def __init__(self, link: Link, run: int):
        self._event = threading.Event()
        self._link = link
        self._run = run
        self._requested = False

    def is_set(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def set_local(self) -> None:
        self._event.set()

    def set(self) -> None:
        self._event.set()
        if self._requested:
            return
        self._requested = True
        try:
            self._link.send(Frame.STOPREQ, pack_run(self._run))
        except ConnectionClosed:
            pass


class NetHealthBoard:
    """Heartbeat board mirrored as BEAT frames.

    Local beats stamp the local slot and emit ``(slot, age=0)``; relayed
    beats are applied as ``local_now - age`` (ages survive clock-domain
    crossings; absolute stamps would not), folded in with ``max`` so a
    reordered relay can never move a worker backwards in time.  A worker
    whose socket dies goes silent, its slots age out, and the supervisor
    quarantines it — no extra failure detector needed.
    """

    def __init__(self, n: int, link: Link, run: int):
        self._slots = [0.0] * max(1, n)
        self._link = link
        self._run = run

    def beat(self, slot: int) -> None:
        self._slots[slot] = time.monotonic()
        try:
            self._link.send(
                Frame.BEAT, pack_run(self._run), _SLOT_AGE.pack(slot, 0.0)
            )
        except ConnectionClosed:
            pass

    def last(self, slot: int) -> float:
        return self._slots[slot]

    def stale(self, slot: int, now: float, timeout: float) -> bool:
        last = self._slots[slot]
        return last > 0.0 and (now - last) > timeout

    def apply(self, body: memoryview) -> None:
        slot, age = _SLOT_AGE.unpack(body)
        if 0 <= slot < len(self._slots):
            stamp = time.monotonic() - age
            if stamp > self._slots[slot]:
                self._slots[slot] = stamp


class NetStreamBoard:
    """Released/delivered frame counters mirrored as COUNT frames.

    Same single-writer discipline as the shared-memory ``StreamBoard``:
    slot 0 is written only by the admission pump (one worker), slot 1
    only by the delivery thread (one worker); everyone else holds a
    monotonically-folded mirror.  The mirror lags by one relay hop, so
    the pump's in-flight view errs on the *high* side — it can only
    under-admit briefly, never overrun ``max_in_flight``.
    """

    def __init__(self, link: Link, run: int):
        self._slots = [0.0, 0.0]
        self._link = link
        self._run = run

    def _bump(self, slot: int) -> None:
        self._slots[slot] += 1.0
        try:
            self._link.send(
                Frame.COUNT, pack_run(self._run),
                _COUNT.pack(slot, self._slots[slot]),
            )
        except ConnectionClosed:
            pass

    def note_released(self) -> None:
        self._bump(0)

    def note_delivered(self) -> None:
        self._bump(1)

    def released(self) -> int:
        return int(self._slots[0])

    def delivered(self) -> int:
        return int(self._slots[1])

    def in_flight(self) -> int:
        return max(0, self.released() - self.delivered())

    def apply(self, body: memoryview) -> None:
        slot, value = _COUNT.unpack(body)
        if 0 <= slot < 2 and value > self._slots[slot]:
            self._slots[slot] = value


class _NetOutChannel:
    """Producer end of a network edge: credits + encoded DATA frames."""

    __slots__ = ("_kernel", "edge", "_header", "_credits", "_cond")

    def __init__(self, kernel: "NetKernel", edge: str, credits: int):
        self._kernel = kernel
        self.edge = edge
        self._header = pack_edge(kernel.run_id, edge)
        self._credits = credits
        self._cond = threading.Condition()

    def add_credit(self, n: int) -> None:
        with self._cond:
            self._credits += n
            self._cond.notify_all()

    def _take_credit(self, timeout: Optional[float]) -> None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._credits <= 0:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise queue.Full
                    self._cond.wait(remaining)
            self._credits -= 1

    def put(self, value: Any, timeout: Optional[float] = None) -> None:
        self._take_credit(timeout)
        self._transmit(value)

    def put_nowait(self, value: Any) -> None:
        with self._cond:
            if self._credits <= 0:
                raise queue.Full
            self._credits -= 1
        self._transmit(value)

    def _transmit(self, value: Any) -> None:
        buffers = codec.encode(value)
        try:
            self._kernel.link.send(Frame.DATA, self._header, *buffers)
        except ConnectionClosed:
            # Our uplink is gone: this run cannot finish here.  Unwind
            # the executive thread quietly; the coordinator has already
            # seen the dead socket and is driving recovery or teardown.
            raise Shutdown


class _NetInChannel:
    """Consumer end of a network edge: raw inbox + credit grants.

    The inbox itself is unbounded — boundedness lives on the producer
    side as credits, granted back one per dequeue — so the link reader
    thread never blocks on a slow consumer.
    """

    __slots__ = ("_kernel", "edge", "q")

    def __init__(self, kernel: "NetKernel", edge: str):
        self._kernel = kernel
        self.edge = edge
        self.q: "queue.Queue" = queue.Queue()

    def push(self, payload: memoryview) -> None:
        """Called by the link reader with the raw encoded value."""
        self.q.put(payload)

    def _settle(self, payload: memoryview) -> Any:
        value = codec.decode(payload)
        self._kernel.grant_credit(self.edge)
        return value

    def get(self, timeout: Optional[float] = None) -> Any:
        return self._settle(self.q.get(timeout=timeout))

    def get_nowait(self) -> Any:
        return self._settle(self.q.get_nowait())


class NetKernel:
    """Kernel primitives for one worker process hosting N processors."""

    def __init__(
        self,
        processors: Iterable[str],
        *,
        placement: Dict[str, str],
        edges: Dict[str, Tuple[str, str]],
        link: Link,
        run_id: int,
        stop_event: NetStopEvent,
        queue_size: int = 4,
        poll_s: float = 0.02,
        epoch: float = 0.0,
        record_spans: bool = True,
    ):
        self.processors: FrozenSet[str] = frozenset(processors)
        #: Compatibility with code that prints/labels ``kernel.processor``.
        self.processor = "+".join(sorted(self.processors))
        self.placement = placement
        self.link = link
        self.run_id = run_id
        self._stop_event = stop_event
        self._queue_size = queue_size
        self._poll_s = poll_s
        self._epoch = epoch
        self._record_spans = record_spans
        self._local: Dict[str, "queue.Queue"] = {}
        self._local_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self.stop_token = Stop()
        self.blackboard: Dict[str, Any] = {}
        self.compute_spans: List[Span] = []
        self.transfer_spans: List[Span] = []
        # Classify the program's inter-processor edges relative to this
        # worker's processor set; edges fully inside or fully outside the
        # set stay ordinary local queues / nothing at all.
        self._out: Dict[str, _NetOutChannel] = {}
        self.inboxes: Dict[str, _NetInChannel] = {}
        for edge, (src_proc, dst_proc) in edges.items():
            src_local = src_proc in self.processors
            dst_local = dst_proc in self.processors
            if src_local and not dst_local:
                self._out[edge] = _NetOutChannel(self, edge, queue_size)
            elif dst_local and not src_local:
                self.inboxes[edge] = _NetInChannel(self, edge)

    # -- uplink helpers --------------------------------------------------------

    def grant_credit(self, edge: str, n: int = 1) -> None:
        try:
            self.link.send(
                Frame.CREDIT, pack_edge(self.run_id, edge), _U32.pack(n)
            )
        except ConnectionClosed:
            pass  # the run is dying; recv loops unwind via the stop flag

    def add_credit(self, edge: str, n: int) -> None:
        """A CREDIT frame arrived for one of our outgoing edges."""
        channel = self._out.get(edge)
        if channel is not None:
            channel.add_credit(n)

    # -- primitives ------------------------------------------------------------

    def channel(self, edge: str):
        out = self._out.get(edge)
        if out is not None:
            return out
        inbox = self.inboxes.get(edge)
        if inbox is not None:
            return inbox
        with self._local_lock:
            q = self._local.get(edge)
            if q is None:
                q = self._local[edge] = queue.Queue(maxsize=self._queue_size)
            return q

    def spawn_(self, name: str, body: Callable[[], None]):
        home = self.placement.get(name)
        if home is not None and home not in self.processors:
            return RemoteStub(name)

        def runner() -> None:
            try:
                body()
            except Shutdown:
                pass

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()
        return thread

    def send_(self, edge: str, value: Any) -> None:
        channel = self.channel(edge)
        remote = isinstance(channel, _NetOutChannel)
        if remote:
            start = time.perf_counter()
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                channel.put(value, timeout=self._poll_s)
                break
            except queue.Full:
                continue
        if remote and self._record_spans:
            end = time.perf_counter()
            self.transfer_spans.append(
                Span(
                    edge,
                    threading.current_thread().name,
                    (start - self._epoch) * 1e6,
                    (end - self._epoch) * 1e6,
                )
            )

    def recv_(self, edge: str) -> Any:
        channel = self.channel(edge)
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                return channel.get(timeout=self._poll_s)
            except queue.Empty:
                continue

    def try_recv_(self, edge: str) -> Any:
        if self._stop_event.is_set():
            raise Shutdown
        return self.channel(edge).get_nowait()

    def stop_(self, edge: str) -> None:
        self.send_(edge, self.stop_token)

    def alt_(self, edges: List[str]) -> Tuple[str, Any]:
        channels = [(edge, self.channel(edge)) for edge in edges]
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            for edge, channel in channels:
                try:
                    return edge, channel.get_nowait()
                except queue.Empty:
                    continue
            # Sub-millisecond poll, as on the other kernels: ALT latency
            # directly gates farm throughput.
            time.sleep(0.0002)

    def call_(self, func: Callable, *args: Any) -> Any:
        if not self._record_spans:
            return func(*args)
        name = threading.current_thread().name
        resource = self.placement.get(name, self.processor)
        start = time.perf_counter()
        try:
            return func(*args)
        finally:
            end = time.perf_counter()
            self.compute_spans.append(
                Span(
                    resource,
                    name,
                    (start - self._epoch) * 1e6,
                    (end - self._epoch) * 1e6,
                )
            )

    def is_stop(self, value: Any) -> bool:
        return isinstance(value, Stop)

    # -- worker-side helpers ---------------------------------------------------

    def local_threads(self) -> List[threading.Thread]:
        return list(self._threads)
