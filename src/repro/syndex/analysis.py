"""Static performance analysis of a mapped process network.

SynDEx produces "an optimized (but still portable) distributed executive
with optional real-time performance measurement".  This module is the
static half of that measurement: critical-path latency estimation,
communication volume, and processor load balance, computed from the
mapping and routing tables *before* running anything.  The dynamic half
(actual latencies under contention) comes from :mod:`repro.machine`.

Farm skeletons are estimated under the balanced-farm approximation:
one round of work = ``ceil(items / degree)`` item costs plus per-item
dispatch/collect transfers — a deliberately simple model whose accuracy
the benchmarks compare against the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pnt.graph import ProcessGraph, ProcessKind
from .distribute import Mapping
from .route import RoutingTable

__all__ = ["StaticEstimate", "estimate_latency", "comm_volume", "load_balance"]


@dataclass
class StaticEstimate:
    """Result of the static latency analysis (all times in µs)."""

    latency: float
    path: List[str]  # condensed group keys along the critical path
    group_costs: Dict[str, float]

    def __repr__(self) -> str:
        return f"StaticEstimate(latency={self.latency:.1f}us, path={self.path})"


def _group_cost(
    graph: ProcessGraph,
    group: List[str],
    durations: Dict[str, float],
    items_hint: int,
) -> float:
    """Estimated time for one condensed group.

    A plain process group is its duration.  A farm (master + workers +
    routers) is estimated as ceil(items/degree) rounds of the worker
    duration, plus the master's per-item accumulate cost.
    """
    members = [graph[pid] for pid in group]
    masters = [p for p in members if p.kind == ProcessKind.MASTER]
    splits = [p for p in members if p.kind == ProcessKind.SPLIT]
    if masters:
        master = masters[0]
        degree = master.params["degree"]
        workers = [p for p in members if p.kind == ProcessKind.WORKER]
        worker_cost = max(
            (durations.get(w.id, 0.0) for w in workers), default=0.0
        )
        rounds = max(1, -(-items_hint // max(degree, 1)))
        master_cost = durations.get(master.id, 0.0) * items_hint
        return rounds * worker_cost + master_cost
    if splits:
        degree = splits[0].params["degree"]
        workers = [p for p in members if p.kind == ProcessKind.WORKER]
        worker_cost = max(
            (durations.get(w.id, 0.0) for w in workers), default=0.0
        )
        merge_cost = sum(
            durations.get(p.id, 0.0)
            for p in members
            if p.kind in (ProcessKind.SPLIT, ProcessKind.MERGE)
        )
        return worker_cost + merge_cost
    return sum(durations.get(p.id, 0.0) for p in members)


def estimate_latency(
    mapping: Mapping,
    routing: RoutingTable,
    durations: Optional[Dict[str, float]] = None,
    edge_bytes: Optional[Dict[int, int]] = None,
    *,
    items_hint: int = 8,
) -> StaticEstimate:
    """Critical-path latency of one iteration (µs).

    ``durations`` maps process ids to their per-firing compute time;
    ``edge_bytes`` maps edge indices (position in ``graph.edges``) to
    payload sizes.  Missing entries default to 0 (pure-structure
    analysis).  ``items_hint`` is the expected farm workload (number of
    packets per iteration).
    """
    graph = mapping.graph
    durations = durations or {}
    edge_bytes = edge_bytes or {}

    groups = graph.group_topological_order()
    group_key: Dict[str, str] = {}
    for group in groups:
        key = graph._group_of(group[0])
        for pid in group:
            group_key[pid] = key
    costs = {
        graph._group_of(g[0]): _group_cost(graph, g, durations, items_hint)
        for g in groups
    }

    # Edge transfer times, attributed to the condensed graph.
    arch = mapping.arch
    finish: Dict[str, float] = {}
    pred: Dict[str, Optional[str]] = {}
    for group in groups:
        key = group_key[group[0]]
        start = 0.0
        best_pred: Optional[str] = None
        for idx, edge in enumerate(graph.edges):
            if edge.loop or edge.dst not in group:
                continue
            src_key = group_key[edge.src]
            if src_key == key:
                continue
            route = routing.routes[idx]
            transfer = sum(
                arch.channels[c].transfer_time(edge_bytes.get(idx, 0))
                for c in route.channels
            )
            candidate = finish.get(src_key, 0.0) + transfer
            if candidate > start:
                start = candidate
                best_pred = src_key
        finish[key] = start + costs[key]
        pred[key] = best_pred

    if not finish:
        return StaticEstimate(0.0, [], {})
    end_key = max(finish, key=lambda k: finish[k])
    path = []
    node: Optional[str] = end_key
    while node is not None:
        path.append(node)
        node = pred[node]
    path.reverse()
    return StaticEstimate(finish[end_key], path, costs)


def comm_volume(
    routing: RoutingTable, edge_bytes: Optional[Dict[int, int]] = None
) -> Dict[str, float]:
    """Bytes x hops crossing each channel in one iteration."""
    edge_bytes = edge_bytes or {}
    graph = routing.mapping.graph
    volume: Dict[str, float] = {c: 0.0 for c in routing.mapping.arch.channels}
    for idx, route in enumerate(routing.routes):
        nbytes = edge_bytes.get(idx, 0)
        for c in route.channels:
            volume[c] += nbytes
    return volume


def load_balance(
    mapping: Mapping, durations: Optional[Dict[str, float]] = None
) -> Tuple[Dict[str, float], float]:
    """Per-processor load and the imbalance ratio max/mean.

    Uses ``durations`` when given, else the distribution weights.
    """
    loads: Dict[str, float] = {}
    for proc in mapping.arch.processor_ids():
        if durations:
            loads[proc] = sum(
                durations.get(pid, 0.0) for pid in mapping.processes_on(proc)
            )
        else:
            loads[proc] = mapping.load(proc)
    values = list(loads.values())
    mean = sum(values) / len(values) if values else 0.0
    imbalance = (max(values) / mean) if mean > 0 else 1.0
    return loads, imbalance
