"""Static distribution of processes onto processors (the AAA heuristic).

SynDEx "performs a static distribution of processes onto processors"
(section 3) following the Algorithm-Architecture Adequation methodology
[Sorel '94]: a greedy list-scheduling heuristic that weighs compute load
against the communication penalty of separating communicating processes.

Constraints honoured, in order:

1. pinned processes (stream INPUT/OUTPUT/MEM go to the I/O processor,
   like Transvision's video root transputer — Fig. 1 places the Master
   on P0 for the same reason);
2. ``colocate_with`` hints (routers ride with their worker);
3. greedy minimisation of ``load(p) + comm_penalty(process, p)`` with
   deterministic tie-breaking, workers of one skeleton spreading over
   distinct processors first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pnt.graph import ProcessGraph, ProcessKind
from .arch import Architecture

__all__ = ["Mapping", "distribute", "round_robin"]

#: Default relative compute weights per process kind (used when no
#: explicit weight is given): workers carry the real work; routers and
#: constants are nearly free.
_DEFAULT_WEIGHTS = {
    ProcessKind.APPLY: 4.0,
    ProcessKind.WORKER: 8.0,
    ProcessKind.MASTER: 2.0,
    ProcessKind.SPLIT: 2.0,
    ProcessKind.MERGE: 2.0,
    ProcessKind.INPUT: 1.0,
    ProcessKind.OUTPUT: 1.0,
    ProcessKind.MEM: 0.5,
    ProcessKind.CONST: 0.1,
    ProcessKind.ROUTER_MW: 0.2,
    ProcessKind.ROUTER_WM: 0.2,
}


@dataclass
class Mapping:
    """A placement of every process on a processor."""

    graph: ProcessGraph
    arch: Architecture
    assignment: Dict[str, str]

    def processor_of(self, pid: str) -> str:
        return self.assignment[pid]

    def processes_on(self, proc: str) -> List[str]:
        return sorted(p for p, a in self.assignment.items() if a == proc)

    def load(self, proc: str, weights: Optional[Dict[str, float]] = None) -> float:
        total = 0.0
        for pid in self.processes_on(proc):
            process = self.graph[pid]
            if weights and pid in weights:
                total += weights[pid]
            else:
                total += _DEFAULT_WEIGHTS[process.kind]
        return total

    def remote_edges(self) -> List:
        """Edges whose endpoints sit on different processors."""
        return [
            e
            for e in self.graph.edges
            if self.assignment[e.src] != self.assignment[e.dst]
        ]

    def validate(self) -> None:
        for pid in self.graph.processes:
            if pid not in self.assignment:
                raise ValueError(f"process {pid!r} is not placed")
            if self.assignment[pid] not in self.arch.processors:
                raise ValueError(
                    f"process {pid!r} placed on unknown processor "
                    f"{self.assignment[pid]!r}"
                )
        for pid, process in self.graph.processes.items():
            if process.colocate_with is not None:
                if self.assignment[pid] != self.assignment[process.colocate_with]:
                    raise ValueError(
                        f"{pid!r} must share a processor with "
                        f"{process.colocate_with!r}"
                    )

    def summary(self) -> str:
        lines = [f"mapping of {self.graph.name!r} onto {self.arch.name!r}:"]
        for proc in self.arch.processor_ids():
            members = self.processes_on(proc)
            lines.append(f"  {proc}: {', '.join(members) if members else '(idle)'}")
        return "\n".join(lines)


_PINNED_KINDS = (ProcessKind.INPUT, ProcessKind.OUTPUT, ProcessKind.MEM)


def _placement_order(graph: ProcessGraph) -> List[str]:
    """Deterministic order: heavy kinds first, then id."""
    return sorted(
        graph.processes,
        key=lambda pid: (-_DEFAULT_WEIGHTS[graph[pid].kind], pid),
    )


def distribute(
    graph: ProcessGraph,
    arch: Architecture,
    *,
    weights: Optional[Dict[str, float]] = None,
    comm_factor: float = 1.0,
    edge_bytes: Optional[Dict[int, int]] = None,
    durations: Optional[Dict[str, float]] = None,
) -> Mapping:
    """Place the process graph on the architecture (AAA-style greedy).

    ``weights`` optionally overrides per-process compute weights;
    ``comm_factor`` scales the communication penalty (0 = pure load
    balancing).

    When a measured profile is available (``edge_bytes`` per edge index
    and ``durations`` per process, e.g. from
    :class:`repro.machine.executive.Profile`), the heuristic works in
    real microseconds: load is measured compute time and the separation
    penalty is the actual transfer time of the bytes observed on each
    edge — the measured-cost "adequation" loop of SynDEx.
    """
    if not arch.is_connected():
        raise ValueError(f"architecture {arch.name!r} is not connected")
    io_proc = arch.io_processor()
    assignment: Dict[str, str] = {}
    load: Dict[str, float] = {p: 0.0 for p in arch.processors}

    # Representative per-hop cost for the profiled comm penalty.
    if arch.channels:
        channels = list(arch.channels.values())
        avg_bandwidth = sum(c.bandwidth for c in channels) / len(channels)
        avg_latency = sum(c.latency for c in channels) / len(channels)
    else:
        avg_bandwidth, avg_latency = 10.0, 5.0

    def weight_of(pid: str) -> float:
        if weights and pid in weights:
            return weights[pid]
        if durations and pid in durations:
            return durations[pid]
        return _DEFAULT_WEIGHTS[graph[pid].kind]

    def place(pid: str, proc: str) -> None:
        assignment[pid] = proc
        load[proc] += weight_of(pid) / arch.processors[proc].speed

    # 1. Pin stream endpoints (and farm masters) to the I/O processor.
    for pid in sorted(graph.processes):
        process = graph[pid]
        if process.kind in _PINNED_KINDS and not process.params.get("discard"):
            place(pid, io_proc)
        elif process.kind == ProcessKind.MASTER:
            place(pid, io_proc)

    # 2. Greedy placement of the rest (colocated processes deferred).
    deferred: List[str] = []
    neighbours_of: Dict[str, List[Tuple[str, int]]] = {
        pid: [] for pid in graph.processes
    }
    for idx, e in enumerate(graph.edges):
        neighbours_of[e.src].append((e.dst, idx))
        neighbours_of[e.dst].append((e.src, idx))

    def edge_penalty(idx: int, hops: int) -> float:
        """Separation cost of one edge crossing ``hops`` channels."""
        if hops == 0:
            return 0.0
        if edge_bytes is not None and idx in edge_bytes:
            return hops * (avg_latency + edge_bytes[idx] / avg_bandwidth)
        return float(hops)

    # Track how many same-skeleton workers each processor already holds so
    # a farm's workers spread across distinct processors first.
    skel_count: Dict[Tuple[str, str], int] = {}

    for pid in _placement_order(graph):
        if pid in assignment:
            continue
        process = graph[pid]
        if process.colocate_with is not None:
            deferred.append(pid)
            continue
        best_proc, best_score = None, None
        for proc in arch.processor_ids():
            comm = 0.0
            for other, idx in neighbours_of[pid]:
                if other in assignment:
                    comm += edge_penalty(
                        idx, arch.hop_count(proc, assignment[other])
                    )
            spread = 0.0
            if process.skeleton is not None:
                # Keep one farm's workers apart: a same-skeleton colocation
                # costs roughly one more round of that process's work.
                spread = max(10.0, weight_of(pid)) * skel_count.get(
                    (process.skeleton, proc), 0
                )
            score = (
                load[proc]
                + weight_of(pid) / arch.processors[proc].speed
                + comm_factor * comm
                + spread
            )
            if best_score is None or score < best_score - 1e-12:
                best_proc, best_score = proc, score
        assert best_proc is not None
        place(pid, best_proc)
        if process.skeleton is not None:
            key = (process.skeleton, best_proc)
            skel_count[key] = skel_count.get(key, 0) + 1

    # 3. Colocated processes follow their anchor.  Anchors may
    # themselves be deferred (colocate-with chains: a router riding a
    # worker riding something else), so each chain is walked to its
    # first *placed* ancestor — every member of the chain resolves to
    # the same processor whatever order the deferred list visits them.
    for pid in deferred:
        place(pid, assignment[_resolve_anchor(graph, pid)])

    mapping = Mapping(graph, arch, assignment)
    mapping.validate()
    return mapping


def _resolve_anchor(graph: ProcessGraph, pid: str) -> str:
    """First placed-able ancestor of a colocation chain (cycle-checked).

    The chain terminates at a process with no ``colocate_with`` of its
    own — which steps 1/2 always place — so walking it is total unless
    the graph declares a colocation cycle, which is a real error.
    """
    seen = [pid]
    anchor = graph[pid].colocate_with
    while anchor is not None and graph[anchor].colocate_with is not None:
        if anchor in seen:
            raise ValueError(
                "colocation cycle: " + " -> ".join(seen + [anchor])
            )
        seen.append(anchor)
        anchor = graph[anchor].colocate_with
    if anchor is None:
        raise ValueError(f"{pid!r} colocated with nothing placeable")
    return anchor


def round_robin(graph: ProcessGraph, arch: Architecture) -> Mapping:
    """A naive baseline mapping: pin endpoints, round-robin the rest.

    Used by benchmarks to show what the AAA heuristic buys.
    """
    io_proc = arch.io_processor()
    assignment: Dict[str, str] = {}
    procs = arch.processor_ids()
    i = 0
    deferred = []
    for pid in sorted(graph.processes):
        process = graph[pid]
        if process.kind in _PINNED_KINDS or process.kind == ProcessKind.MASTER:
            assignment[pid] = io_proc
        elif process.colocate_with is not None:
            deferred.append(pid)
        else:
            assignment[pid] = procs[i % len(procs)]
            i += 1
    for pid in deferred:
        assignment[pid] = assignment[_resolve_anchor(graph, pid)]
    mapping = Mapping(graph, arch, assignment)
    mapping.validate()
    return mapping
