"""Architecture graphs: the MIMD-DM targets SKiPPER maps onto.

"This process graph ... is then mapped onto the target architecture,
which is also described as a graph, with nodes associated to processors
and edges representing communication channels" (section 3).

Topology builders cover the platforms the paper mentions: the
ring-configured Transvision Transputer machine, chains, stars, 2-D
meshes, fully-connected fabrics, and a network of workstations (NOW)
modelled as processors on one shared bus.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Processor",
    "Channel",
    "Architecture",
    "ring",
    "chain",
    "star",
    "mesh",
    "torus",
    "hypercube",
    "fully_connected",
    "now",
]


@dataclass(frozen=True)
class Processor:
    """A processing element.

    ``speed`` scales compute costs (1.0 = the reference T9000-class
    processor); ``io`` marks the processor wired to the video I/O
    hardware (frame grabber / display), where stream endpoints must live.
    """

    id: str
    speed: float = 1.0
    io: bool = False


@dataclass(frozen=True)
class Channel:
    """A bidirectional point-to-point link (or shared bus segment).

    ``bandwidth`` is in bytes/µs (= MB/s), ``latency`` in µs per message.
    ``shared`` marks bus-like channels where all attached processors
    contend for the same medium.
    """

    id: str
    ends: Tuple[str, ...]
    bandwidth: float = 10.0
    latency: float = 5.0
    shared: bool = False

    def connects(self, a: str, b: str) -> bool:
        return a in self.ends and b in self.ends and a != b

    def transfer_time(self, nbytes: int) -> float:
        """Time (µs) to push ``nbytes`` through this channel."""
        return self.latency + nbytes / self.bandwidth


class Architecture:
    """A machine description: processors + channels + routing tables."""

    def __init__(self, name: str):
        self.name = name
        self.processors: Dict[str, Processor] = {}
        self.channels: Dict[str, Channel] = {}
        self._routes: Optional[Dict[Tuple[str, str], List[str]]] = None

    # -- construction -------------------------------------------------------

    def add_processor(self, proc: Processor) -> Processor:
        if proc.id in self.processors:
            raise ValueError(f"duplicate processor {proc.id!r}")
        self.processors[proc.id] = proc
        self._routes = None
        return proc

    def add_channel(self, channel: Channel) -> Channel:
        if channel.id in self.channels:
            raise ValueError(f"duplicate channel {channel.id!r}")
        for end in channel.ends:
            if end not in self.processors:
                raise ValueError(f"channel end {end!r} is not a processor")
        if len(set(channel.ends)) < 2:
            raise ValueError(f"channel {channel.id!r} needs at least two ends")
        self.channels[channel.id] = channel
        self._routes = None
        return channel

    # -- queries --------------------------------------------------------------

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    def processor_ids(self) -> List[str]:
        return sorted(self.processors)

    def io_processor(self) -> str:
        """The processor with video I/O (falls back to the first one)."""
        for pid in self.processor_ids():
            if self.processors[pid].io:
                return pid
        return self.processor_ids()[0]

    def channels_at(self, proc: str) -> List[Channel]:
        return [c for c in self.channels.values() if proc in c.ends]

    def neighbours(self, proc: str) -> List[str]:
        out = set()
        for c in self.channels_at(proc):
            out.update(e for e in c.ends if e != proc)
        return sorted(out)

    def is_connected(self) -> bool:
        if not self.processors:
            return False
        start = self.processor_ids()[0]
        seen = {start}
        frontier = [start]
        while frontier:
            p = frontier.pop()
            for n in self.neighbours(p):
                if n not in seen:
                    seen.add(n)
                    frontier.append(n)
        return len(seen) == len(self.processors)

    # -- routing ------------------------------------------------------------

    def route(self, src: str, dst: str) -> List[str]:
        """Shortest channel path from ``src`` to ``dst``.

        Uses Dijkstra with per-hop latency as the edge weight (ties broken
        by channel id for determinism).  Returns the channel-id sequence;
        empty when ``src == dst``.
        """
        if src == dst:
            return []
        if self._routes is None:
            self._routes = {}
        key = (src, dst)
        if key not in self._routes:
            self._routes[key] = self._dijkstra(src, dst)
        return self._routes[key]

    def _dijkstra(self, src: str, dst: str) -> List[str]:
        dist: Dict[str, float] = {src: 0.0}
        back: Dict[str, Tuple[str, str]] = {}  # node -> (prev node, channel)
        heap: List[Tuple[float, str]] = [(0.0, src)]
        done = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            if node == dst:
                break
            for channel in sorted(self.channels_at(node), key=lambda c: c.id):
                for other in channel.ends:
                    if other == node or other in done:
                        continue
                    nd = d + channel.latency
                    if nd < dist.get(other, float("inf")):
                        dist[other] = nd
                        back[other] = (node, channel.id)
                        heapq.heappush(heap, (nd, other))
        if dst not in back and dst != src:
            raise ValueError(f"no route from {src!r} to {dst!r} in {self.name!r}")
        path: List[str] = []
        node = dst
        while node != src:
            prev, channel = back[node]
            path.append(channel)
            node = prev
        path.reverse()
        return path

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.route(src, dst))

    def __repr__(self) -> str:
        return (
            f"Architecture({self.name!r}, {len(self.processors)} processors, "
            f"{len(self.channels)} channels)"
        )


# -- topology builders ----------------------------------------------------


def _make(name: str, n: int, **proc_kw) -> Architecture:
    if n <= 0:
        raise ValueError(f"processor count must be positive, got {n}")
    arch = Architecture(name)
    for i in range(n):
        arch.add_processor(Processor(f"p{i}", io=(i == 0), **proc_kw))
    return arch


def ring(n: int, *, bandwidth: float = 10.0, latency: float = 5.0) -> Architecture:
    """A ring of ``n`` processors — the Transvision configuration of §4."""
    arch = _make(f"ring{n}", n)
    if n == 1:
        return arch
    for i in range(n if n > 2 else 1):
        a, b = f"p{i}", f"p{(i + 1) % n}"
        arch.add_channel(
            Channel(f"c{i}", (a, b), bandwidth=bandwidth, latency=latency)
        )
    return arch


def chain(n: int, *, bandwidth: float = 10.0, latency: float = 5.0) -> Architecture:
    """A linear array of ``n`` processors."""
    arch = _make(f"chain{n}", n)
    for i in range(n - 1):
        arch.add_channel(
            Channel(f"c{i}", (f"p{i}", f"p{i+1}"), bandwidth=bandwidth,
                    latency=latency)
        )
    return arch


def star(n: int, *, bandwidth: float = 10.0, latency: float = 5.0) -> Architecture:
    """A hub (p0) with ``n - 1`` leaves."""
    arch = _make(f"star{n}", n)
    for i in range(1, n):
        arch.add_channel(
            Channel(f"c{i-1}", ("p0", f"p{i}"), bandwidth=bandwidth,
                    latency=latency)
        )
    return arch


def mesh(rows: int, cols: int, *, bandwidth: float = 10.0,
         latency: float = 5.0) -> Architecture:
    """A ``rows`` x ``cols`` 2-D mesh (processors named row-major p0..)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("mesh dimensions must be positive")
    arch = _make(f"mesh{rows}x{cols}", rows * cols)
    cid = 0
    for r in range(rows):
        for c in range(cols):
            here = f"p{r * cols + c}"
            if c + 1 < cols:
                arch.add_channel(
                    Channel(f"c{cid}", (here, f"p{r * cols + c + 1}"),
                            bandwidth=bandwidth, latency=latency)
                )
                cid += 1
            if r + 1 < rows:
                arch.add_channel(
                    Channel(f"c{cid}", (here, f"p{(r + 1) * cols + c}"),
                            bandwidth=bandwidth, latency=latency)
                )
                cid += 1
    return arch


def torus(rows: int, cols: int, *, bandwidth: float = 10.0,
          latency: float = 5.0) -> Architecture:
    """A 2-D torus: a mesh with wrap-around links in both dimensions.

    Transputer networks were frequently configured as tori; the wrap
    links halve the worst-case hop count of the equivalent mesh.
    Degenerate dimensions (<3) skip the redundant wrap link.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("torus dimensions must be positive")
    arch = _make(f"torus{rows}x{cols}", rows * cols)
    cid = 0
    for r in range(rows):
        for c in range(cols):
            here = f"p{r * cols + c}"
            if cols > 1 and (c + 1 < cols or cols > 2):
                right = f"p{r * cols + (c + 1) % cols}"
                arch.add_channel(
                    Channel(f"c{cid}", (here, right), bandwidth=bandwidth,
                            latency=latency)
                )
                cid += 1
            if rows > 1 and (r + 1 < rows or rows > 2):
                down = f"p{((r + 1) % rows) * cols + c}"
                arch.add_channel(
                    Channel(f"c{cid}", (here, down), bandwidth=bandwidth,
                            latency=latency)
                )
                cid += 1
    return arch


def hypercube(dimension: int, *, bandwidth: float = 10.0,
              latency: float = 5.0) -> Architecture:
    """A binary hypercube of 2^dimension processors.

    Each processor links to the ``dimension`` neighbours whose index
    differs in exactly one bit; diameter = ``dimension`` hops.
    """
    if dimension < 0:
        raise ValueError("hypercube dimension must be non-negative")
    n = 1 << dimension
    arch = _make(f"hypercube{dimension}", n)
    cid = 0
    for i in range(n):
        for bit in range(dimension):
            j = i ^ (1 << bit)
            if j > i:
                arch.add_channel(
                    Channel(f"c{cid}", (f"p{i}", f"p{j}"),
                            bandwidth=bandwidth, latency=latency)
                )
                cid += 1
    return arch


def fully_connected(n: int, *, bandwidth: float = 10.0,
                    latency: float = 5.0) -> Architecture:
    """All-pairs point-to-point links."""
    arch = _make(f"full{n}", n)
    cid = 0
    for i in range(n):
        for j in range(i + 1, n):
            arch.add_channel(
                Channel(f"c{cid}", (f"p{i}", f"p{j}"), bandwidth=bandwidth,
                        latency=latency)
            )
            cid += 1
    return arch


def now(n: int, *, bandwidth: float = 1.25, latency: float = 100.0) -> Architecture:
    """A network of workstations: ``n`` hosts on one shared bus.

    Default figures approximate 10 Mb/s shared Ethernet of the era
    (1.25 bytes/µs, 100 µs software latency per message).
    """
    arch = _make(f"now{n}", n)
    if n > 1:
        arch.add_channel(
            Channel(
                "bus",
                tuple(f"p{i}" for i in range(n)),
                bandwidth=bandwidth,
                latency=latency,
                shared=True,
            )
        )
    return arch
