"""SynDEx substitute: AAA distribution, routing, scheduling analysis.

The paper delegates mapping to the third-party CAD tool SynDEx; this
package implements the published Algorithm-Architecture Adequation
methodology it is built on: architecture graphs, static distribution of
processes onto processors, static routing of communications onto
channels, latency analysis and deadlock-freedom verification.
"""

from .arch import (
    Architecture,
    Channel,
    Processor,
    chain,
    fully_connected,
    mesh,
    now,
    ring,
    star,
    torus,
    hypercube,
)
from .distribute import Mapping, distribute, round_robin
from .route import RoutedEdge, RoutingTable, route_mapping
from .analysis import StaticEstimate, comm_volume, estimate_latency, load_balance
from .deadlock import DeadlockReport, check_deadlock_freedom

__all__ = [
    "Architecture",
    "Channel",
    "Processor",
    "ring",
    "chain",
    "star",
    "mesh",
    "torus",
    "hypercube",
    "fully_connected",
    "now",
    "Mapping",
    "distribute",
    "round_robin",
    "RoutedEdge",
    "RoutingTable",
    "route_mapping",
    "StaticEstimate",
    "estimate_latency",
    "comm_volume",
    "load_balance",
    "DeadlockReport",
    "check_deadlock_freedom",
]
