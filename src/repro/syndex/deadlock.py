"""Deadlock-freedom verification for generated executives.

SynDEx guarantees a "dead-lock free distributed executive" (section 3).
Our executive satisfies the same property by construction, and this
module *checks* the construction on every mapped program:

1. **Condensed acyclicity** — with each skeleton instance condensed to a
   supernode and the ``itermem`` feedback edge removed, the process
   graph must be a DAG, so intra-iteration dataflow always makes
   progress.
2. **Terminating farm protocols** — each farm master dispatches a finite
   packet list and counts exactly one response per packet (plus spawned
   subtasks for ``tf``), so the intra-skeleton cycles terminate: this is
   checked structurally (master in/out port symmetry, router pairing).
3. **Routability** — every remote edge has a static route, so no message
   waits forever for a path.
4. **Single feedback** — the memory process is the only target of loop
   edges, and only one loop edge exists per MEM (state for iteration
   ``i+1`` is produced exactly once by iteration ``i``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..pnt.graph import GraphError, ProcessGraph, ProcessKind
from .distribute import Mapping
from .route import route_mapping

__all__ = ["DeadlockReport", "check_deadlock_freedom"]


@dataclass
class DeadlockReport:
    """Outcome of the deadlock-freedom analysis."""

    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def render(self) -> str:
        if self.ok:
            return "deadlock-free: all checks passed"
        return "DEADLOCK RISK:\n" + "\n".join(f"  - {v}" for v in self.violations)


def check_deadlock_freedom(mapping: Mapping) -> DeadlockReport:
    """Run all four checks; returns a report (never raises)."""
    graph = mapping.graph
    violations: List[str] = []

    # 1. Condensed acyclicity.
    try:
        graph.group_topological_order()
    except GraphError as err:
        violations.append(f"condensed dataflow is cyclic: {err}")

    # 2. Farm protocol structure.
    for master in graph.by_kind(ProcessKind.MASTER):
        degree = master.params.get("degree")
        dispatch = [e for e in graph.out_edges(master.id) if e.src_port >= 1]
        collect = [e for e in graph.in_edges(master.id) if e.dst_port >= 2]
        if len(dispatch) != degree:
            violations.append(
                f"{master.id}: {len(dispatch)} dispatch edges for degree {degree}"
            )
        if len(collect) != degree:
            violations.append(
                f"{master.id}: {len(collect)} collect edges for degree {degree}"
            )
        workers = [
            p for p in graph.skeleton_processes(master.skeleton or "")
            if p.kind == ProcessKind.WORKER
        ]
        if len(workers) != degree:
            violations.append(
                f"{master.id}: {len(workers)} workers for degree {degree}"
            )

    # 3. Routability of every remote edge.
    try:
        routing = route_mapping(mapping)
    except ValueError as err:
        violations.append(f"unroutable edge: {err}")
    else:
        for route in routing.routes:
            if route.src_proc != route.dst_proc and not route.channels:
                violations.append(
                    f"edge {route.edge} crosses processors without a route"
                )

    # 4. Loop edges target MEM processes only, one each.
    loop_targets = {}
    for e in graph.edges:
        if e.loop:
            loop_targets[e.dst] = loop_targets.get(e.dst, 0) + 1
            if graph[e.dst].kind != ProcessKind.MEM:
                violations.append(
                    f"loop edge targets non-memory process {e.dst!r}"
                )
    for mem in graph.by_kind(ProcessKind.MEM):
        count = loop_targets.get(mem.id, 0)
        if count != 1:
            violations.append(
                f"memory process {mem.id!r} has {count} feedback edge(s), "
                "expected exactly 1"
            )

    return DeadlockReport(ok=not violations, violations=violations)
