"""Communication routing: mapped edges → channel paths.

After distribution, every inter-processor edge of the process graph is
assigned a static route — the sequence of channels its messages traverse
(store-and-forward through intermediate processors, as on the
ring-connected Transputer machine).  SynDEx's "mixed static/dynamic
scheduling of communications onto channels" starts from these routes;
the dynamic part (contention) is resolved by the machine simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..pnt.graph import Edge
from .arch import Architecture
from .distribute import Mapping

__all__ = ["RoutedEdge", "RoutingTable", "route_mapping"]


@dataclass(frozen=True)
class RoutedEdge:
    """A process-graph edge with its physical route.

    ``channels`` is empty for processor-local edges (delivered through
    memory, costing nothing on the network).
    """

    edge: Edge
    src_proc: str
    dst_proc: str
    channels: Tuple[str, ...]

    @property
    def is_local(self) -> bool:
        return not self.channels

    @property
    def hops(self) -> int:
        return len(self.channels)


class RoutingTable:
    """All routed edges of one mapping, with aggregate statistics."""

    def __init__(self, mapping: Mapping, routes: List[RoutedEdge]):
        self.mapping = mapping
        self.routes = routes

    def remote(self) -> List[RoutedEdge]:
        return [r for r in self.routes if not r.is_local]

    def local(self) -> List[RoutedEdge]:
        return [r for r in self.routes if r.is_local]

    def channel_load(self) -> Dict[str, int]:
        """Number of routed edges crossing each channel."""
        load: Dict[str, int] = {c: 0 for c in self.mapping.arch.channels}
        for r in self.remote():
            for c in r.channels:
                load[c] += 1
        return load

    def max_hops(self) -> int:
        return max((r.hops for r in self.routes), default=0)

    def route_for(self, edge: Edge) -> RoutedEdge:
        for r in self.routes:
            if r.edge is edge:
                return r
        raise KeyError(f"edge {edge!r} is not routed")

    def summary(self) -> str:
        remote = self.remote()
        return (
            f"{len(self.routes)} edges: {len(self.local())} local, "
            f"{len(remote)} remote (max {self.max_hops()} hops)"
        )


def route_mapping(mapping: Mapping) -> RoutingTable:
    """Compute the static route of every process-graph edge."""
    arch = mapping.arch
    routes: List[RoutedEdge] = []
    for edge in mapping.graph.edges:
        src_proc = mapping.processor_of(edge.src)
        dst_proc = mapping.processor_of(edge.dst)
        channels = tuple(arch.route(src_proc, dst_proc))
        routes.append(RoutedEdge(edge, src_proc, dst_proc, channels))
    return RoutingTable(mapping, routes)
