"""Discrete-event simulation backend (the modelled MIMD-DM machine)."""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import Executive, RunReport
from ..pnt.graph import ProcessKind
from ..syndex.distribute import Mapping
from .base import Backend, BackendError
from .registry import register_backend

__all__ = ["SimulateBackend"]


@register_backend
class SimulateBackend(Backend):
    """Interpret the mapped network on the simulated machine.

    Computes with real data while simulated time advances per the cost
    models — the repo's stand-in for the ring-connected Transputer
    machine of §4.  Reported times are simulated microseconds.
    """

    name = "simulate"
    description = "discrete-event simulation on the modelled machine"
    real = False
    supports_faults = True
    supports_realtime = True

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        budget: Optional[Any] = None,
        **options: Any,
    ) -> RunReport:
        if mapping is None:
            raise BackendError("the simulate backend needs a mapping")
        executive = Executive(
            mapping, table, costs,
            real_time=real_time, record_trace=record_trace,
            fault_plan=fault_plan, fault_policy=fault_policy,
            budget=budget,
        )
        if mapping.graph.by_kind(ProcessKind.MEM):
            report = executive.run(max_iterations)
        else:
            report = executive.run_once(*(args or ()))
        report.backend = self.name
        return report
