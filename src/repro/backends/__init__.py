"""Pluggable execution backends: one process-graph IR, many targets.

The seven built-in targets mirror the paper's Fig. 2 branches and
extend them to real hardware:

* ``emulate``    — sequential emulation of the program IR (the oracle);
* ``simulate``   — discrete-event simulation on the modelled machine;
* ``threads``    — generated executive on Python threads (GIL-bound);
* ``asyncio``    — generated coroutine executive on one event loop
  (cheap massive concurrency for I/O-bound graphs);
* ``processes``  — generated executive on OS processes (true parallelism);
* ``tcp``        — generated executive on a TCP worker cluster
  (the paper's network-of-workstations target);
* ``standalone`` — emitted self-contained program (``repro emit``) run
  in a clean subprocess with no repro import.

Use :func:`get_backend`/:func:`list_backends` to resolve targets at run
time, or go through :func:`repro.pipeline.run` / the ``repro run`` CLI.
"""

from .base import Backend, BackendError, report_from_blackboard
from .registry import (
    backend_capabilities,
    backend_names,
    get_backend,
    list_backends,
    register_backend,
)

# Importing the modules registers the built-in backends.
from .emulate_backend import EmulateBackend
from .simulate_backend import SimulateBackend
from .thread_backend import ThreadBackend
from .asyncio_backend import AsyncioBackend
from .process_backend import ProcessBackend, default_start_method, run_multiprocess
from .process_kernel import SHM_MIN_BYTES, ProcessKernel
from .standalone_backend import StandaloneBackend, run_emitted

# A plain ``import`` (not ``from ... import``) registers the tcp backend
# without requiring the class name to exist yet: when the import cycle
# starts from ``repro.net`` itself, this module is reached while
# ``repro.net.coordinator`` is still half-executed, and the statement is
# then a sys.modules no-op — registration completes when the outer
# import does.  Resolve the class via ``get_backend("tcp")``.
import repro.net.coordinator  # noqa: E402,F401

__all__ = [
    "Backend",
    "BackendError",
    "register_backend",
    "get_backend",
    "list_backends",
    "backend_names",
    "backend_capabilities",
    "report_from_blackboard",
    "EmulateBackend",
    "SimulateBackend",
    "ThreadBackend",
    "AsyncioBackend",
    "ProcessBackend",
    "ProcessKernel",
    "StandaloneBackend",
    "run_emitted",
    "run_multiprocess",
    "default_start_method",
    "SHM_MIN_BYTES",
]
