"""Asyncio-executive backend (generated coroutines on one event loop).

The sixth registered execution backend: the ``asyncio`` codegen target
emits the same skeleton bodies as ``async def`` coroutines, and this
backend runs them on an :class:`~repro.codegen.async_kernel.AsyncioKernel`
inside a private event loop.  Every mapped process is a Task and every
channel a bounded :class:`asyncio.Queue`, so concurrency costs one
object per process instead of one OS thread — the regime where
I/O-bound graphs sustain thousands of concurrent streams in a single
process.

Realtime admission composes the way ``threads`` does, through
:class:`~repro.realtime.async_kernel.AsyncRealtimeKernel` (the watchdog
is a loop task).  Fault supervision does not: the supervisor's
heartbeat thread and synchronous primitive hooks assume a thread
kernel, so a fault plan is rejected rather than half-honoured (the
capability matrix and the conformance oracle both read
``supports_faults``).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional, Tuple

from ..codegen.async_kernel import AsyncioKernel, run_generated_async
from ..codegen.pygen import thread_name
from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..machine.trace import Trace
from ..syndex.distribute import Mapping
from .base import Backend, BackendError, report_from_blackboard
from .registry import register_backend

__all__ = ["AsyncioBackend"]


@register_backend
class AsyncioBackend(Backend):
    """Run the generated coroutine executive on one event loop.

    Cooperative concurrency: sequential functions run on the loop
    thread, so a long CPU-bound function stalls every process — use
    ``threads`` or ``processes`` for compute-heavy tables.  For graphs
    dominated by waiting (sockets, sleeps, devices) this is the
    cheapest concurrency the environment offers.
    """

    name = "asyncio"
    description = "generated coroutine executive on one event loop"
    real = True
    supports_faults = False
    supports_realtime = True

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        budget: Optional[Any] = None,
        **options: Any,
    ) -> RunReport:
        if mapping is None:
            raise BackendError("the asyncio backend needs a mapping")
        if fault_plan is not None:
            raise BackendError(
                "the asyncio backend does not support fault injection "
                "(the supervisor's primitives are thread-blocking); use "
                "the threads or processes backend"
            )
        trace = Trace() if record_trace else None
        placement = {
            thread_name(pid): proc
            for pid, proc in mapping.assignment.items()
        }

        async def drive() -> Any:
            kernel: Any = AsyncioKernel(trace=trace, placement=placement)
            realtime_kernel = None
            if budget is not None:
                from ..realtime.async_kernel import AsyncRealtimeKernel
                from ..realtime.topology import StreamTopology

                stream = StreamTopology.from_mapping(mapping)
                if stream is None:
                    raise BackendError(
                        "a latency budget needs a stream program (no "
                        "stream input/output in this mapping)"
                    )
                kernel = realtime_kernel = AsyncRealtimeKernel(
                    kernel, stream, budget
                )
                kernel.start()
            try:
                blackboard = await run_generated_async(
                    mapping, table,
                    kernel=kernel,
                    max_iterations=max_iterations,
                    args=args,
                    timeout=timeout,
                )
            finally:
                if realtime_kernel is not None:
                    await realtime_kernel.ashutdown()
            return blackboard, realtime_kernel

        start = time.perf_counter()
        blackboard, realtime_kernel = asyncio.run(drive())
        wall_us = (time.perf_counter() - start) * 1e6
        realtime_report = None
        if realtime_kernel is not None:
            realtime_report = realtime_kernel.build_report()
            if trace is not None:
                realtime_report.annotate_trace(trace)
        report = report_from_blackboard(
            blackboard, makespan=wall_us, backend=self.name, trace=trace
        )
        report.realtime = realtime_report
        return report
