"""The kernel primitives on OS processes: SKiPPER's port story, realised.

"The code of these primitives ... is the only platform-dependent part of
the programming environment, making it highly portable" (§3).  This
module is the second port of the primitive set (after the reference
:class:`~repro.codegen.kernel.ThreadKernel`): the same generated
executive, unchanged, runs with *true* parallelism — one OS process per
mapped processor, so CPU-bound sequential functions escape the GIL.

Topology: the parent creates one bounded :class:`multiprocessing.Queue`
per inter-processor edge and a shared stop event; every worker process
loads the full generated executive, but :meth:`ProcessKernel.spawn_`
only starts the threads of the logical processes mapped onto *its*
processor (co-located processes communicate through plain in-process
queues, exactly like the thread kernel).  Large numpy payloads cross
processor boundaries through POSIX shared memory instead of pickle.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..codegen.kernel import Shutdown, Stop
from ..machine.trace import Span
from ..shm.channel import RingChannel

try:  # numpy is a hard dependency of the repo, but stay import-safe.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["SHM_MIN_BYTES", "ProcessKernel"]

#: Below this payload size the pickle path is cheaper than a shared
#: memory segment (creation + two mappings); measured crossover is in
#: the tens of kilobytes on Linux.
SHM_MIN_BYTES = 1 << 16


class _ShmRef:
    """Wire descriptor of a numpy payload parked in shared memory."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state

    def __repr__(self) -> str:
        return f"<shm {self.name} {self.dtype}{list(self.shape)}>"


def _shm_pack(value: Any, threshold: int, owned: Optional[set] = None) -> Any:
    """Park large numpy arrays in shared memory; pass anything else through.

    ``owned`` collects the segment names this sender has created but not
    yet seen claimed: ownership normally transfers to the receiver (it
    unlinks after attaching), but a receiver that dies — or a run torn
    down — before attaching would leak the segment forever.  The kernel
    unlinks everything still in ``owned`` at shutdown; double unlinks
    are harmless (``FileNotFoundError`` is swallowed on both sides).
    """
    if (
        _np is None
        or _shared_memory is None
        or not isinstance(value, _np.ndarray)
        or value.dtype.hasobject
        or value.nbytes < threshold
    ):
        return value
    segment = _shared_memory.SharedMemory(create=True, size=value.nbytes)
    view = _np.ndarray(value.shape, dtype=value.dtype, buffer=segment.buf)
    view[...] = value
    ref = _ShmRef(segment.name, value.shape, value.dtype.str)
    # Ownership transfers to the receiver (it unlinks after attaching);
    # unregister here so this process's resource tracker does not warn
    # about — or double-unlink — a segment it no longer owns.
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    segment.close()
    if owned is not None:
        owned.add(ref.name)
    return ref


def _shm_unpack(value: Any) -> Any:
    """Materialise a shared-memory payload; pass anything else through."""
    if not isinstance(value, _ShmRef):
        return value
    try:
        segment = _shared_memory.SharedMemory(name=value.name)
    except FileNotFoundError:
        # The sender reclaimed the segment at shutdown before we could
        # attach: the run is being torn down, unwind this thread.
        raise Shutdown
    try:
        arr = _np.ndarray(
            value.shape, dtype=_np.dtype(value.dtype), buffer=segment.buf
        ).copy()
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
    return arr


class _RemoteStub:
    """Stand-in for an executive thread hosted by another OS process."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def join(self, timeout: Optional[float] = None) -> None:
        return None

    def is_alive(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"<remote thread {self.name}>"


class ProcessKernel:
    """Kernel primitives for one worker process (one mapped processor).

    Instantiated *inside* each worker by the processes backend; the
    shared plumbing (``remote_channels``, ``stop_event``) is created by
    the parent and inherited/pickled across.  ``placement`` maps
    generated thread names to processor ids so :meth:`spawn_` can skip
    processes that belong elsewhere.
    """

    def __init__(
        self,
        processor: str,
        *,
        placement: Dict[str, str],
        remote_channels: Dict[str, Any],
        stop_event: Any,
        queue_size: int = 4,
        poll_s: float = 0.05,
        epoch: float = 0.0,
        shm_threshold: int = SHM_MIN_BYTES,
        record_spans: bool = True,
    ):
        self.processor = processor
        self.placement = placement
        self._remote = remote_channels
        self._local: Dict[str, "queue.Queue"] = {}
        self._local_lock = threading.Lock()
        self._stop_event = stop_event
        self._queue_size = queue_size
        self._poll_s = poll_s
        self._epoch = epoch
        self._shm_threshold = shm_threshold
        self._record_spans = record_spans
        self._threads: List[threading.Thread] = []
        #: Names of shm segments created here and possibly never claimed.
        self._owned_shm: set = set()
        self.stop_token = Stop()
        self.blackboard: Dict[str, Any] = {}
        #: Wall-clock compute spans (µs since the shared epoch).
        self.compute_spans: List[Span] = []
        #: Wall-clock occupancy of the outgoing inter-processor channels.
        self.transfer_spans: List[Span] = []

    # -- primitives ------------------------------------------------------------

    def channel(self, edge: str):
        if edge in self._remote:
            return self._remote[edge]
        with self._local_lock:
            q = self._local.get(edge)
            if q is None:
                q = self._local[edge] = queue.Queue(maxsize=self._queue_size)
            return q

    def spawn_(self, name: str, body: Callable[[], None]):
        if self.placement.get(name, self.processor) != self.processor:
            return _RemoteStub(name)

        def runner() -> None:
            try:
                body()
            except Shutdown:
                pass
            finally:
                # A one-shot thread may exit right after a send that the
                # ring channel merely *accepted into its pending batch*;
                # drain it now or the packet would be stranded forever.
                self._drain_thread_pending()

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()
        return thread

    def send_(self, edge: str, value: Any) -> None:
        channel = self.channel(edge)
        remote = edge in self._remote
        if remote:
            if not isinstance(channel, RingChannel):
                # Ring channels skip the _ShmRef detour: the tag codec
                # writes arrays straight into the slot (or the overflow
                # side-channel), so packing here would only add a copy.
                value = _shm_pack(value, self._shm_threshold, self._owned_shm)
            start = time.perf_counter()
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                channel.put(value, timeout=self._poll_s)
                break
            except queue.Full:
                self._flush_thread_pending()
                continue
        if remote and self._record_spans:
            end = time.perf_counter()
            self.transfer_spans.append(
                Span(
                    edge,
                    threading.current_thread().name,
                    (start - self._epoch) * 1e6,
                    (end - self._epoch) * 1e6,
                )
            )

    def recv_(self, edge: str) -> Any:
        channel = self.channel(edge)
        # About to wait: whatever this thread still holds in pending
        # batches (a router receives on one edge and sends on others)
        # must go out *before* blocking — flushing only after the first
        # timeout would hold every reply hostage for a full poll tick.
        self._flush_thread_pending()
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            try:
                return _shm_unpack(channel.get(timeout=self._poll_s))
            except queue.Empty:
                self._flush_thread_pending()
                continue

    def try_recv_(self, edge: str) -> Any:
        """Non-blocking receive: raises ``queue.Empty`` when idle.

        Not used by generated executives; the fault supervisor polls
        with it so one thread can watch several channels *and* run
        timeout scans between polls.
        """
        if self._stop_event.is_set():
            raise Shutdown
        self._flush_thread_pending()
        return _shm_unpack(self.channel(edge).get_nowait())

    def stop_(self, edge: str) -> None:
        self.send_(edge, self.stop_token)

    def alt_(self, edges: List[str]) -> Tuple[str, Any]:
        """Wait for a message on any of ``edges`` (the Transputer ALT)."""
        self._flush_thread_pending()  # publish before polling, as in recv_
        while True:
            if self._stop_event.is_set():
                raise Shutdown
            for edge in edges:
                try:
                    return edge, _shm_unpack(self.channel(edge).get_nowait())
                except queue.Empty:
                    continue
            self._flush_thread_pending()
            # Sub-millisecond poll, as in ThreadKernel: ALT latency
            # directly gates farm throughput.
            time.sleep(0.0002)

    def call_(self, func: Callable, *args: Any) -> Any:
        if not self._record_spans:
            return func(*args)
        start = time.perf_counter()
        try:
            return func(*args)
        finally:
            end = time.perf_counter()
            self.compute_spans.append(
                Span(
                    self.processor,
                    threading.current_thread().name,
                    (start - self._epoch) * 1e6,
                    (end - self._epoch) * 1e6,
                )
            )

    def is_stop(self, value: Any) -> bool:
        return isinstance(value, Stop)

    # -- batching back-stops ---------------------------------------------------
    #
    # A ring channel may *accept* a small packet into a process-local
    # pending batch instead of writing it through (Nagle-flavoured
    # coalescing).  These sweeps are the residency bound: every blocking
    # point flushes what the current thread still holds, and a thread
    # drains completely before it exits.  Only the owning thread ever
    # touches a channel's pending batch — the rings are strictly SPSC.

    def _thread_ring_channels(self) -> List[RingChannel]:
        ident = threading.get_ident()
        return [
            channel for channel in self._remote.values()
            if isinstance(channel, RingChannel)
            and channel.pending_owner == ident
        ]

    def _flush_thread_pending(self) -> None:
        """Best-effort flush of this thread's pending batches."""
        for channel in self._thread_ring_channels():
            if channel.has_pending:
                channel.try_flush()

    def _drain_thread_pending(self) -> None:
        """Blocking flush at thread exit; bails only on a raised stop."""
        for channel in self._thread_ring_channels():
            while channel.has_pending:
                if channel.try_flush():
                    break
                if self._stop_event.is_set():
                    return
                time.sleep(0.0002)

    # -- worker-side helpers ---------------------------------------------------

    def local_threads(self) -> List[threading.Thread]:
        """The executive threads actually started in this process."""
        return list(self._threads)

    def release_shm(self) -> None:
        """Unlink every shm segment this kernel created and still owns.

        Called at worker shutdown: segments whose receiver attached are
        already gone (``FileNotFoundError`` swallowed); segments whose
        receiver never attached — it crashed, or the run stopped first —
        would otherwise outlive the interpreter in ``/dev/shm``.
        """
        # Ring channels park oversized payloads in one-shot segments
        # with the same transfer-of-ownership contract: reclaim the
        # unclaimed ones too.
        for channel in self._remote.values():
            if isinstance(channel, RingChannel):
                channel.release()
        if _shared_memory is None:
            return
        names, self._owned_shm = self._owned_shm, set()
        for name in names:
            try:
                segment = _shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue  # claimed by its receiver: the common case
            except Exception:  # pragma: no cover - platform oddities
                continue
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - lost race
                pass
