"""Multiprocess backend: the generated executive on real OS processes.

The parent generates the executive once, creates the inter-processor
channels (one bounded multiprocessing queue per remote edge) and the
shared stop event, then launches one worker process per mapped
processor.  Each worker builds the executive against a
:class:`~repro.backends.process_kernel.ProcessKernel` that only starts
the threads placed on its processor.  Termination mirrors the thread
kernel's ``join_``: the parent waits until every sink-owning worker has
reported its sinks complete, then raises the stop event so blocked
threads unwind, and finally merges per-worker blackboards and wall-clock
spans into one :class:`~repro.machine.executive.RunReport`.

A hard ``timeout`` bounds the whole run: a deadlocked executive raises
:class:`~repro.backends.base.BackendError` (after terminating the
workers) instead of hanging the caller — or the CI job.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..codegen.pygen import generate_python, load_executive, thread_name
from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..machine.trace import Trace
from ..pnt.graph import ProcessKind
from ..shm.batch import BatchPolicy
from ..shm.flag import StopFlag
from ..shm.registry import (
    DEFAULT_TRANSPORT,
    TRANSPORT_ENV,
    EdgeSpec,
    build_channels,
)
from ..syndex.distribute import Mapping
from .base import Backend, BackendError, report_from_blackboard
from .process_kernel import SHM_MIN_BYTES, ProcessKernel
from .registry import register_backend

__all__ = ["ProcessBackend", "run_multiprocess", "default_start_method"]

#: Environment override for the multiprocessing start method (used by CI
#: to force ``spawn``, the only method portable to every platform).
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def default_start_method() -> str:
    """``fork`` where available (inherits closures — any table works),
    else ``spawn`` (requires a picklable table)."""
    env = os.environ.get(START_METHOD_ENV)
    if env:
        return env
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def _worker_main(payload: Dict[str, Any]) -> None:
    """Entry point of one worker process (module-level: spawn-safe)."""
    results = payload["results"]
    stop = payload["stop"]
    processor = payload["processor"]
    base: Optional[ProcessKernel] = None
    try:
        module = load_executive(payload["source"])
        base = ProcessKernel(
            processor,
            placement=payload["placement"],
            remote_channels=payload["remote"],
            stop_event=stop,
            queue_size=payload["queue_size"],
            poll_s=payload["poll_s"],
            epoch=payload["epoch"],
            shm_threshold=payload["shm_threshold"],
            record_spans=payload["record_spans"],
        )
        kernel: Any = base
        faults = payload.get("faults")
        if faults is not None:
            from ..faults.report import FaultReport
            from ..faults.supervisor import HealthBoard, SupervisedKernel

            kernel = SupervisedKernel(
                base,
                faults["topology"],
                plan=faults["plan"],
                policy=faults["policy"],
                report=FaultReport(),
                board=HealthBoard(faults["board"]),
                processor=processor,
            )
        realtime = payload.get("realtime")
        rt_kernel = None
        if realtime is not None:
            from ..realtime.kernel import RealtimeKernel, StreamBoard

            kernel = rt_kernel = RealtimeKernel(
                kernel,
                realtime["topology"],
                realtime["budget"],
                board=StreamBoard(realtime["board"]),
                processor=processor,
            )
        kernel.blackboard.update(payload["seed"])
        _threads, sinks = module["build_executive"](kernel, payload["fns"])
        local_sinks = [t for t in sinks if isinstance(t, threading.Thread)]
        for thread in local_sinks:
            while thread.is_alive() and not stop.is_set():
                thread.join(0.1)
        if local_sinks and not stop.is_set():
            results.put(("sinks", processor))
        stop.wait()
        for thread in base.local_threads():
            thread.join(0.5)
        if faults is not None or realtime is not None:
            # Stop the service threads (heartbeat, realtime watchdog)
            # before this process exits: dying with a daemon thread
            # inside a shared semaphore would poison it for the other
            # processes.
            kernel.shutdown()
        fault_payload = (
            kernel.fault_report.to_payload() if faults is not None else []
        )
        rt_payload = None
        if rt_kernel is not None:
            rt_payload = {
                "admission": rt_kernel.admission_payload(),
                "delivery": rt_kernel.delivery_payload(),
            }
        results.put(
            ("done", processor, base.blackboard,
             base.compute_spans, base.transfer_spans, fault_payload,
             rt_payload)
        )
    except Exception:
        stop.set()
        results.put(("error", processor, traceback.format_exc()))
    finally:
        if base is not None:
            # Reclaim shm segments whose receiver never attached: without
            # this, a crashed receiver (or an early stop) leaks the
            # segment in /dev/shm for the life of the machine.
            base.release_shm()
        # Unflushed data queues must not block interpreter exit.
        for q in payload["remote"].values():
            try:
                q.cancel_join_thread()
            except Exception:
                pass


def _collect(results, deadline: float, workers, *,
             lost: Optional[set] = None, expendable=frozenset()) -> Tuple:
    """Next control message, or raise on timeout / silently-dead worker.

    Under fault supervision a dead *non-sink* worker is survivable: the
    supervisor quarantines it on heartbeat staleness and the master
    re-dispatches its outstanding work, so the run completes without a
    control message from the corpse.  Such processors are recorded in
    ``lost`` instead of raising; a dead sink owner still aborts the run
    (nobody else can complete its sinks).
    """
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise BackendError(
                "multiprocess run exceeded its timeout (deadlocked "
                "executive?); workers will be terminated"
            )
        try:
            return results.get(timeout=min(0.2, remaining))
        except queue.Empty:
            for worker in workers:
                if worker.exitcode in (None, 0):
                    continue
                processor = worker.name[len("repro-"):]
                if lost is not None and processor in expendable:
                    lost.add(processor)
                    continue
                raise BackendError(
                    f"worker {worker.name!r} died with exit code "
                    f"{worker.exitcode}"
                )


def run_multiprocess(
    mapping: Mapping,
    table: FunctionTable,
    *,
    max_iterations: Optional[int] = None,
    args: Optional[Tuple] = None,
    timeout: float = 120.0,
    start_method: Optional[str] = None,
    queue_size: int = 4,
    poll_s: float = 0.02,
    shm_threshold: int = SHM_MIN_BYTES,
    record_spans: bool = True,
    fault_plan: Optional[Any] = None,
    fault_policy: Optional[Any] = None,
    budget: Optional[Any] = None,
    transport: Optional[str] = None,
    transport_options: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], List, List, float, Any, Any]:
    """Run the mapped program on OS processes.

    Returns ``(blackboard, compute_spans, transfer_spans, wall_us,
    fault_report, realtime_report)``: the merged kernel blackboards, the
    wall-clock spans of every worker (µs since the run epoch), the total
    wall time, and — when ``fault_plan`` enabled supervision / a
    ``budget`` enabled the realtime layer — the merged
    :class:`~repro.faults.report.FaultReport` /
    :class:`~repro.realtime.ledger.RealtimeReport` (else ``None``).
    """
    graph = mapping.graph
    fns = {spec.name: spec.fn for spec in table}
    source = generate_python(mapping, max_iterations=max_iterations)
    placement = {
        thread_name(pid): proc for pid, proc in mapping.assignment.items()
    }
    method = start_method or default_start_method()
    ctx = multiprocessing.get_context(method)

    seed: Dict[str, Any] = {}
    inputs = [
        p for p in graph.by_kind(ProcessKind.INPUT) if p.func is None
    ]
    if len(args or ()) != len(inputs):
        # Validate even when args is omitted: a one-shot executive with
        # unseeded parameters would hang until the deadline.
        raise ValueError(
            f"program takes {len(inputs)} argument(s), got {len(args or ())}"
        )
    for process, value in zip(inputs, args or ()):
        seed[f"arg_{process.params.get('param')}"] = value

    # One channel per inter-processor edge, built by the requested
    # transport (``queue`` is the historical path; ``ring`` moves the
    # data plane onto preallocated shared-memory rings with batching).
    transport_name = (
        transport or os.environ.get(TRANSPORT_ENV) or DEFAULT_TRANSPORT
    )
    edge_specs = [
        EdgeSpec(
            f"e{idx}", edge.src, edge.dst,
            mapping.processor_of(edge.src), mapping.processor_of(edge.dst),
        )
        for idx, edge in enumerate(graph.edges)
        if mapping.processor_of(edge.src) != mapping.processor_of(edge.dst)
    ]
    topts = dict(transport_options or {})
    if budget is not None and "batch_policy" not in topts:
        # A latency budget forbids Nagle-style holds: flush on every
        # append, coalesce only under backpressure.
        topts["batch_policy"] = BatchPolicy(eager=True)
    channel_set = build_channels(
        transport_name, edge_specs, ctx,
        queue_size=queue_size, options=topts,
    )
    remote = channel_set.channels

    # A shared-memory byte, not ctx.Event(): a worker SIGKILLed while
    # inside the Event's semaphore would poison it and wedge the
    # parent's own set() — the chaos suite kills workers exactly there.
    stop_event = StopFlag()
    participating = [
        p for p in mapping.arch.processor_ids() if mapping.processes_on(p)
    ]
    # Each worker posts at most two control messages ("sinks" + "done" or
    # "error"); bound the queue so a runaway producer cannot grow memory
    # without limit against a stalled parent.
    results = ctx.Queue(maxsize=2 * len(participating) + 4)

    faults: Optional[Dict[str, Any]] = None
    if fault_plan is not None:
        from ..faults.policy import FaultPolicy
        from ..faults.topology import FaultTopology

        topology = FaultTopology.from_mapping(mapping)
        faults = {
            "plan": fault_plan,
            "policy": fault_policy or FaultPolicy(),
            "topology": topology,
            # Lock-free: single-writer slots, aligned 8-byte stores.
            "board": ctx.Array("d", max(1, topology.n_slots), lock=False),
        }
    realtime: Optional[Dict[str, Any]] = None
    if budget is not None:
        from ..realtime.topology import StreamTopology

        stream = StreamTopology.from_mapping(mapping)
        if stream is None:
            raise BackendError(
                "a latency budget needs a stream program (no stream "
                "input/output in this mapping)"
            )
        realtime = {
            "budget": budget,
            "topology": stream,
            # released / delivered counters: single-writer slots.
            "board": ctx.Array("d", 2, lock=False),
        }
    sink_procs = {
        mapping.processor_of(p.id)
        for p in graph.processes.values()
        if p.kind == ProcessKind.MEM
        or (p.kind == ProcessKind.OUTPUT and not p.params.get("discard"))
    }

    epoch = time.perf_counter()
    workers = []
    for proc_id in participating:
        payload = {
            "source": source,
            "processor": proc_id,
            "placement": placement,
            "remote": remote,
            "stop": stop_event,
            "results": results,
            # Only the implementations cross the process boundary: cost
            # models may be closures, which spawn could not pickle.
            "fns": fns,
            "seed": seed,
            "epoch": epoch,
            "queue_size": queue_size,
            "poll_s": poll_s,
            "shm_threshold": shm_threshold,
            "record_spans": record_spans,
            "faults": faults,
            "realtime": realtime,
        }
        worker = ctx.Process(
            target=_worker_main, args=(payload,),
            name=f"repro-{proc_id}", daemon=True,
        )
        worker.start()
        workers.append(worker)

    deadline = time.monotonic() + timeout
    waiting_sinks = set(sink_procs)
    done: Dict[str, Dict[str, Any]] = {}
    compute_spans: List = []
    transfer_spans: List = []
    fault_payloads: List = []
    rt_halves: Dict[str, Any] = {"admission": None, "delivery": None}
    error: Optional[Tuple[str, str]] = None

    def absorb(message: Tuple) -> None:
        nonlocal error
        tag = message[0]
        if tag == "sinks":
            waiting_sinks.discard(message[1])
        elif tag == "done":
            done[message[1]] = message[2]
            compute_spans.extend(message[3])
            transfer_spans.extend(message[4])
            if len(message) > 5:
                fault_payloads.extend(message[5])
            if len(message) > 6 and message[6] is not None:
                for half in ("admission", "delivery"):
                    if message[6].get(half) is not None:
                        rt_halves[half] = message[6][half]
        elif tag == "error":
            error = (message[1], message[2])

    # Under supervision a dead non-sink worker is survivable (the
    # supervisor re-dispatches its work); a dead sink owner is not.
    lost: set = set()
    expendable = (
        frozenset(p for p in participating if p not in sink_procs)
        if faults is not None else frozenset()
    )

    stop_raised = False
    try:
        while waiting_sinks and error is None:
            absorb(_collect(results, deadline, workers,
                            lost=lost, expendable=expendable))
        stop_event.set()
        stop_raised = True
        while (len(set(done) | lost) < len(participating)
               and error is None):
            absorb(_collect(results, deadline, workers,
                            lost=lost, expendable=expendable))
    finally:
        if not stop_raised:
            stop_event.set()
        for worker in workers:
            worker.join(2.0)
        for worker in workers:
            if worker.is_alive():  # pragma: no cover - deadlock path
                worker.terminate()
                worker.join(1.0)
        # The parent created the channels, the parent unlinks them —
        # only after every worker is gone (rings are mapped memory).
        channel_set.destroy()
        stop_event.unlink()
    wall_us = (time.perf_counter() - epoch) * 1e6

    if error is not None:
        processor, tb = error
        raise BackendError(
            f"executive failed on processor {processor!r}:\n{tb}"
        )

    blackboard: Dict[str, Any] = {}
    for proc_id in participating:
        blackboard.update(done.get(proc_id, {}))
    compute_spans.sort(key=lambda s: s.start)
    transfer_spans.sort(key=lambda s: s.start)
    fault_report = None
    if faults is not None:
        from ..faults.report import FaultReport

        fault_report = FaultReport.from_payload(fault_payloads).sorted()
    realtime_report = None
    if realtime is not None:
        from ..realtime.ledger import assemble_report

        realtime_report = assemble_report(
            budget, rt_halves["admission"], rt_halves["delivery"]
        )
    return (blackboard, compute_spans, transfer_spans, wall_us,
            fault_report, realtime_report)


@register_backend
class ProcessBackend(Backend):
    """Run the generated executive with one OS process per processor.

    True parallelism for CPU-bound sequential functions (each worker has
    its own interpreter and GIL); inter-processor edges are built by the
    selected *transport* — ``queue`` (bounded multiprocessing queues,
    with shared-memory transfer for large numpy payloads) or ``ring``
    (preallocated shared-memory rings with packet batching; see
    :mod:`repro.shm`).  Options: ``start_method`` (``fork``/``spawn``/
    ``forkserver``; default from ``REPRO_MP_START_METHOD`` or ``fork``
    where available), ``queue_size``, ``shm_threshold``, ``transport``
    (default from ``REPRO_TRANSPORT`` or ``queue``),
    ``transport_options`` (``ring_slots``, ``ring_slot_bytes``,
    ``batch_policy``).
    """

    name = "processes"
    description = "generated executive on OS processes (true parallelism)"
    real = True
    supports_faults = True
    supports_realtime = True

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        start_method: Optional[str] = None,
        queue_size: int = 4,
        shm_threshold: int = SHM_MIN_BYTES,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        budget: Optional[Any] = None,
        transport: Optional[str] = None,
        transport_options: Optional[Dict[str, Any]] = None,
        **options: Any,
    ) -> RunReport:
        if mapping is None:
            raise BackendError("the processes backend needs a mapping")
        (blackboard, compute, transfer, wall_us, fault_report,
         realtime_report) = run_multiprocess(
            mapping, table,
            max_iterations=max_iterations,
            args=args,
            timeout=timeout,
            start_method=start_method,
            queue_size=queue_size,
            shm_threshold=shm_threshold,
            fault_plan=fault_plan,
            fault_policy=fault_policy,
            budget=budget,
            transport=transport,
            transport_options=transport_options,
        )
        trace = Trace()
        trace.compute = compute
        trace.transfer = transfer
        if fault_report is not None:
            fault_report.annotate_trace(trace)
        if realtime_report is not None:
            realtime_report.annotate_trace(trace)
        report = report_from_blackboard(
            blackboard, makespan=wall_us, backend=self.name, trace=trace
        )
        report.faults = fault_report
        report.realtime = realtime_report
        return report
