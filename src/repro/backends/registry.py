"""Backend registry: one process-graph IR, many execution targets.

Modelled on the multi-target code-generation registries of systems like
DaCe: each backend class registers itself under a short name, and the
pipeline/CLI resolve names at run time, so adding an execution substrate
never touches the callers.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import Backend, BackendError

__all__ = [
    "register_backend", "get_backend", "list_backends", "backend_names",
    "backend_capabilities",
]

_REGISTRY: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator adding a :class:`Backend` to the registry."""
    if not cls.name or cls.name == "?":
        raise ValueError(f"backend class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"backend {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_backend(name: str) -> Backend:
    """Instantiate the backend registered under ``name``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(backend_names())}"
        ) from None
    if not cls.available():
        raise BackendError(f"backend {name!r} is not available on this host")
    return cls()


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def list_backends() -> Dict[str, str]:
    """Mapping of backend name -> one-line description."""
    return {name: _REGISTRY[name].description for name in backend_names()}


def backend_capabilities() -> Dict[str, Dict[str, bool]]:
    """Per-backend capability flags, in sorted-name order.

    Keys per backend: ``real``, ``faults``, ``realtime``,
    ``distributed`` — sourced from the registered class attributes, so
    the ``repro backends`` matrix never drifts from the code.
    """
    out: Dict[str, Dict[str, bool]] = {}
    for name in backend_names():
        cls = _REGISTRY[name]
        out[name] = {
            "real": bool(cls.real),
            "faults": bool(cls.supports_faults),
            "realtime": bool(cls.supports_realtime),
            "distributed": bool(cls.distributed),
        }
    return out
