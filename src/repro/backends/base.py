"""The common execution-backend interface.

The paper isolates "thread creation, communication and synchronisation"
behind the kernel primitives precisely so the rest of the environment is
retargetable (§3).  This module is the corresponding seam one level up:
a :class:`Backend` takes a mapped program (or, for pure emulation, the
program IR) plus the sequential-function table and produces a
:class:`~repro.machine.executive.RunReport` — whatever substrate it runs
on.  Registering a new execution target means implementing exactly this
interface (see :mod:`repro.backends.registry`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..machine.trace import Trace
from ..syndex.distribute import Mapping

__all__ = ["Backend", "BackendError", "report_from_blackboard"]


class BackendError(RuntimeError):
    """A backend could not execute the mapped program."""


class Backend:
    """One execution target for mapped skeletal programs.

    Class attributes:
        name: registry key (``emulate``, ``simulate``, ``threads``, ...).
        description: one-line summary shown by ``list_backends``.
        real: True when the backend actually executes concurrently and
            reports wall-clock time; False for the simulated/sequential
            paths whose times are model-derived (or absent).
        needs_mapping: False for backends (sequential emulation) that run
            the program IR directly and ignore the placement.
        supports_faults: honours ``fault_plan``/``fault_policy`` (runs
            the fault supervisor).
        supports_realtime: honours ``budget`` (runs the realtime
            admission/delivery layer).
        distributed: executes across more than one host boundary (the
            tcp backend); the capability matrix in ``repro backends``
            renders these three flags.
    """

    name: str = "?"
    description: str = ""
    real: bool = False
    needs_mapping: bool = True
    supports_faults: bool = False
    supports_realtime: bool = False
    distributed: bool = False

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        **options: Any,
    ) -> RunReport:
        """Execute the program and report outputs (and timing when real).

        Stream programs honour ``max_iterations``; one-shot programs take
        their input values from ``args``.  ``record_trace`` asks for span
        recording (``report.trace``); ``timeout`` bounds real runs so a
        deadlocked executive raises instead of hanging.
        """
        raise NotImplementedError

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run on the current host."""
        return True


def report_from_blackboard(
    blackboard: Dict[str, Any],
    *,
    makespan: float,
    backend: str,
    trace: Optional[Trace] = None,
) -> RunReport:
    """Convert an executive kernel blackboard into a :class:`RunReport`.

    The generated executive leaves ``outputs``/``final_state`` entries
    for stream programs and ``result_<i>`` entries for one-shot ones;
    ``makespan`` is the measured wall-clock duration in µs.  Busy totals
    are aggregated from the trace when one was recorded.
    """
    n_results = sum(1 for k in blackboard if k.startswith("result_"))
    one_shot: Optional[Tuple[Any, ...]] = None
    outputs = list(blackboard.get("outputs", []))
    if n_results:
        one_shot = tuple(blackboard[f"result_{i}"] for i in range(n_results))
        outputs = list(one_shot)
    proc_busy: Dict[str, float] = {}
    chan_busy: Dict[str, float] = {}
    if trace is not None:
        for span in trace.compute:
            proc_busy[span.resource] = (
                proc_busy.get(span.resource, 0.0) + span.duration
            )
        for span in trace.transfer:
            chan_busy[span.resource] = (
                chan_busy.get(span.resource, 0.0) + span.duration
            )
    return RunReport(
        iterations=[],
        outputs=outputs,
        final_state=blackboard.get("final_state"),
        makespan=makespan,
        proc_busy=proc_busy,
        chan_busy=chan_busy,
        one_shot_results=one_shot,
        trace=trace,
        backend=backend,
        wall_clock=True,
    )
