"""Threaded-executive backend (generated code on :class:`ThreadKernel`)."""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from ..codegen.kernel import ThreadKernel
from ..codegen.pygen import run_generated, thread_name
from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..machine.trace import Trace
from ..syndex.distribute import Mapping
from .base import Backend, BackendError, report_from_blackboard
from .registry import register_backend

__all__ = ["ThreadBackend"]


@register_backend
class ThreadBackend(Backend):
    """Run the generated executive concurrently on Python threads.

    Real concurrency, shared memory, no serialisation — but the CPython
    GIL serialises pure-Python compute, so this backend overlaps I/O and
    models the executive faithfully without multi-core speedup.  Use the
    ``processes`` backend for CPU-bound kernels.
    """

    name = "threads"
    description = "generated executive on Python threads (GIL-bound)"
    real = True
    supports_faults = True
    supports_realtime = True

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        budget: Optional[Any] = None,
        **options: Any,
    ) -> RunReport:
        if mapping is None:
            raise BackendError("the threads backend needs a mapping")
        trace = Trace() if record_trace else None
        placement = {
            thread_name(pid): proc
            for pid, proc in mapping.assignment.items()
        }
        kernel: Any = ThreadKernel(trace=trace, placement=placement)
        fault_report = None
        if fault_plan is not None:
            from ..faults.supervisor import SupervisedKernel
            from ..faults.topology import FaultTopology

            kernel = SupervisedKernel(
                kernel,
                FaultTopology.from_mapping(mapping),
                plan=fault_plan,
                policy=fault_policy,
            )
            fault_report = kernel.fault_report
        realtime_kernel = None
        if budget is not None:
            from ..realtime.kernel import RealtimeKernel
            from ..realtime.topology import StreamTopology

            stream = StreamTopology.from_mapping(mapping)
            if stream is None:
                raise BackendError(
                    "a latency budget needs a stream program (no stream "
                    "input/output in this mapping)"
                )
            kernel = realtime_kernel = RealtimeKernel(
                kernel, stream, budget
            )
        start = time.perf_counter()
        try:
            blackboard = run_generated(
                mapping, table,
                kernel=kernel,
                max_iterations=max_iterations,
                args=args,
                timeout=timeout,
            )
        finally:
            shutdown = getattr(kernel, "shutdown", None)
            if shutdown is not None and (fault_plan is not None
                                         or budget is not None):
                shutdown()
        wall_us = (time.perf_counter() - start) * 1e6
        if fault_report is not None:
            fault_report.sorted()
            if trace is not None:
                fault_report.annotate_trace(trace)
        realtime_report = None
        if realtime_kernel is not None:
            realtime_report = realtime_kernel.build_report()
            if trace is not None:
                realtime_report.annotate_trace(trace)
        report = report_from_blackboard(
            blackboard, makespan=wall_us, backend=self.name, trace=trace
        )
        report.faults = fault_report
        report.realtime = realtime_report
        return report
