"""Sequential-emulation backend (the paper's correctness oracle)."""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..core.emulate import emulate, emulate_once
from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..syndex.distribute import Mapping
from .base import Backend, BackendError
from .registry import register_backend

__all__ = ["EmulateBackend"]


@register_backend
class EmulateBackend(Backend):
    """Run the program IR directly with the declarative semantics.

    No process graph, no mapping, no timing — just function application.
    This is the left branch of the paper's Fig. 2 and the reference
    output every parallel backend must reproduce.
    """

    name = "emulate"
    description = "sequential emulation of the program IR (reference output)"
    real = False
    needs_mapping = False

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        **options: Any,
    ) -> RunReport:
        if program is None:
            raise BackendError(
                "the emulate backend runs the program IR; pass program="
            )
        if program.stream is not None:
            result = emulate(program, table, max_iterations=max_iterations)
            return RunReport(
                iterations=[],
                outputs=result.outputs,
                final_state=result.final_state,
                makespan=0.0,
                proc_busy={},
                chan_busy={},
                backend=self.name,
            )
        results = emulate_once(program, table, *(args or ()))
        return RunReport(
            iterations=[],
            outputs=list(results),
            final_state=None,
            makespan=0.0,
            proc_busy={},
            chan_busy={},
            one_shot_results=results,
            backend=self.name,
        )
