"""Standalone-executive backend: emit, then run with no repro import.

The differential-oracle leg for ``repro emit``: the mapped program is
emitted as a self-contained directory (``standalone`` codegen target),
executed as ``python main.py`` in a subprocess whose ``PYTHONPATH`` is
scrubbed — so the run proves the emitted artifact needs nothing from
the toolchain — and the canonical ``key=repr(value)`` result lines are
parsed back into a blackboard.  Anything the oracle would compare
(outputs, final state, one-shot results) therefore round-trips through
the exact bytes a deployed program would print.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
import tempfile
from typing import Any, Optional, Tuple

from ..core.functions import FunctionTable
from ..core.ir import Program
from ..machine.costs import T9000, CostModel
from ..machine.executive import RunReport
from ..syndex.distribute import Mapping
from .base import Backend, BackendError, report_from_blackboard
from .registry import register_backend

__all__ = ["StandaloneBackend", "run_emitted"]


def run_emitted(
    out_dir: str,
    *,
    args: Optional[Tuple] = None,
    max_iterations: Optional[int] = None,
    timeout: float = 120.0,
    start_method: str = "inline",
    python: Optional[str] = None,
) -> dict:
    """Run an emitted program directory; returns the parsed blackboard.

    The child's ``PYTHONPATH`` is emptied so an emitted program that
    silently depended on the repro source tree fails loudly here rather
    than on the deployment box.
    """
    from ..codegen.targets.standalone_target import parse_blackboard

    argv = [python or sys.executable, "main.py",
            "--start-method", start_method, "--timeout", str(timeout)]
    if max_iterations is not None:
        argv += ["--max-iterations", str(max_iterations)]
    for value in args or ():
        text = repr(value)
        try:
            ast.literal_eval(text)
        except (ValueError, SyntaxError):
            raise BackendError(
                f"standalone argument {value!r} is not a Python literal"
            ) from None
        argv += ["--arg", text]
    env = dict(os.environ, PYTHONPATH="")
    proc = subprocess.run(
        argv, cwd=out_dir, env=env, timeout=timeout + 30.0,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    if proc.returncode != 0:
        raise BackendError(
            f"emitted program failed (exit {proc.returncode}):\n"
            f"{proc.stderr}"
        )
    return parse_blackboard(proc.stdout)


@register_backend
class StandaloneBackend(Backend):
    """Emit the program to a scratch directory and run it out-of-tree.

    Options: ``start_method`` (``inline``/``fork``/``spawn``) selects
    how ``main.py`` hosts the executive; ``keep_dir`` preserves the
    emitted directory (its path lands on the report as
    ``report.emitted_dir``) instead of deleting it.
    """

    name = "standalone"
    description = "emitted self-contained program in a clean subprocess"
    real = True
    supports_faults = False
    supports_realtime = False

    def run(
        self,
        mapping: Optional[Mapping],
        table: FunctionTable,
        *,
        program: Optional[Program] = None,
        costs: CostModel = T9000,
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        real_time: bool = False,
        record_trace: bool = False,
        timeout: float = 120.0,
        start_method: str = "inline",
        keep_dir: Optional[str] = None,
        fault_plan: Optional[Any] = None,
        budget: Optional[Any] = None,
        **options: Any,
    ) -> RunReport:
        from ..codegen.targets import get_target

        if mapping is None:
            raise BackendError("the standalone backend needs a mapping")
        if fault_plan is not None:
            raise BackendError(
                "the standalone backend does not support fault injection"
            )
        if budget is not None:
            raise BackendError(
                "the standalone backend does not support latency budgets"
            )
        target = get_target("standalone")
        import time

        start = time.perf_counter()
        if keep_dir is not None:
            target.emit(mapping, table, keep_dir,
                        max_iterations=max_iterations)
            blackboard = run_emitted(
                keep_dir, args=args, max_iterations=max_iterations,
                timeout=timeout, start_method=start_method,
            )
            emitted_dir: Optional[str] = keep_dir
        else:
            with tempfile.TemporaryDirectory(prefix="repro-emit-") as tmp:
                target.emit(mapping, table, tmp,
                            max_iterations=max_iterations)
                blackboard = run_emitted(
                    tmp, args=args, max_iterations=max_iterations,
                    timeout=timeout, start_method=start_method,
                )
            emitted_dir = None
        wall_us = (time.perf_counter() - start) * 1e6
        report = report_from_blackboard(
            blackboard, makespan=wall_us, backend=self.name, trace=None
        )
        report.emitted_dir = emitted_dir
        return report
