"""The embeddable service object behind ``repro serve``.

``SkipperService`` ties the three serving pieces together — the
:class:`~repro.serve.cache.CompileCache`, the shared persistent
:class:`~repro.net.harness.ClusterHarness`, and the multi-tenant
:class:`~repro.serve.scheduler.RunScheduler` — behind a small API:

* :meth:`submit` — compile (through the cache), admit (through the
  tenant's overload policy) and schedule one run; returns a
  :class:`~repro.serve.scheduler.Ticket` immediately;
* :meth:`run` — the synchronous convenience (submit + wait);
* :meth:`stats` / :meth:`ps` — the JSON-able stats and live-run
  documents the ``repro stats`` / ``repro ps`` endpoints serve.

Tests drive a ``SkipperService`` in-process; the TCP front door is
:class:`~repro.serve.server.ServeServer`.  The supervision, realtime
and conformance stacks compose unchanged underneath: a submitted
request may carry a fault plan and a stream latency budget exactly like
a ``repro run`` invocation, and the resulting RunReport is the same
object the tcp backend returns.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Dict, List, Optional

from ..net.harness import ClusterHarness
from ..realtime.budget import LatencyBudget
from .cache import CompileCache
from .scheduler import RunRequest, RunScheduler, Ticket

__all__ = ["SkipperService"]


class SkipperService:
    """Compile-once / run-many skeleton-graph service."""

    def __init__(
        self,
        *,
        cluster: Optional[ClusterHarness] = None,
        cluster_size: int = 4,
        cache_entries: int = 64,
        workers_per_run: int = 1,
        max_concurrent: Optional[int] = None,
        checkout_timeout: float = 30.0,
        default_tenant_policy: Optional[LatencyBudget] = None,
    ):
        self._own_cluster = cluster is None
        self.harness = cluster or ClusterHarness(size=cluster_size)
        self.cache = CompileCache(max_entries=cache_entries)
        self.scheduler = RunScheduler(
            self.harness, self.cache,
            workers_per_run=workers_per_run,
            max_concurrent=max_concurrent,
            checkout_timeout=checkout_timeout,
            default_tenant_policy=default_tenant_policy,
        )
        self.started_s = time.monotonic()
        self._lock = threading.Lock()
        self._closing = False
        self._compile_errors = 0

    # -- the request path --------------------------------------------------

    def submit(self, request: RunRequest, callback=None) -> Ticket:
        """Compile through the cache, admit, schedule.  Never raises for
        a bad *program* — compile errors come back as a failed ticket so
        one tenant's typo cannot crash another tenant's service."""
        try:
            build = self.cache.build(
                request.source, request.table, request.arch,
                entry=request.entry,
            )
        except Exception:
            with self._lock:
                self._compile_errors += 1
            ticket = Ticket(-1, request, None, callback)
            ticket.finish("failed", error=traceback.format_exc())
            return ticket
        return self.scheduler.submit(request, build, callback)

    def run(self, request: RunRequest, *,
            timeout: Optional[float] = None) -> Ticket:
        """Submit and wait for the terminal ticket."""
        ticket = self.submit(request)
        return ticket.wait(timeout if timeout is not None
                           else request.timeout + 30.0)

    # -- endpoints ---------------------------------------------------------

    def stats(self) -> Dict:
        with self._lock:
            compile_errors = self._compile_errors
        return {
            "uptime_s": round(time.monotonic() - self.started_s, 3),
            "cluster": {
                "address": self.harness.address,
                "size": self.harness.size,
                "alive": self.harness.alive,
            },
            "slots": self.scheduler.n_slots,
            "workers_per_run": self.scheduler.workers_per_run,
            "cache": self.cache.stats(),
            "compile_errors": compile_errors,
            "tenants": self.scheduler.tenant_stats(),
            "health": self.scheduler.health_stats(),
        }

    def ps(self) -> List[Dict]:
        return self.scheduler.ps()

    def health(self) -> Dict[str, List[Dict]]:
        """Per-tenant worker-health rows of the last supervised runs."""
        return self.scheduler.health_stats()

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> bool:
        return self.scheduler.drain(timeout)

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self.scheduler.close()
        if self._own_cluster:
            self.harness.shutdown()

    def __enter__(self) -> "SkipperService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
