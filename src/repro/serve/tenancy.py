"""Per-tenant admission control: LatencyBudget policies over *requests*.

A tenant is one traffic source sharing the service (one camera rig, one
batch job, one test).  Each tenant carries a
:class:`~repro.realtime.budget.LatencyBudget` whose knobs are read at
the request granularity instead of the frame granularity:

* ``deadline_ms`` — the submit→result turnaround budget; a request
  completing later is a recorded deadline miss;
* ``queue_depth`` / ``max_in_flight`` — how many requests may wait for
  dispatch / execute at once;
* ``policy`` — what happens to a submit that finds the queue full:
  ``block`` queues it anyway (backpressure: latency grows, nothing is
  lost), ``shed-newest`` refuses it, ``shed-oldest`` drops the stalest
  queued request to make room, ``degrade`` admits only one request in
  ``degrade_ratio`` until the backlog clears.

Every submitted request lands in the tenant's
:class:`~repro.realtime.ledger.FrameLedger` and reaches a terminal
status, so per-tenant conservation — delivered + shed + failed ==
submitted — holds for the service exactly as it does for a single
stream run.  This is what keeps tenants isolated: an overloaded tenant
sheds against *its own* bounded queue while a quiet tenant's requests
flow past untouched.

All mutating methods must be called under the scheduler's lock; the
Tenant itself carries no locking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..realtime.budget import LatencyBudget
from ..realtime.ledger import FrameLedger, FrameRecord, RealtimeRecord

__all__ = ["DEFAULT_TENANT_POLICY", "Tenant"]

#: Service-side default: never shed, generous per-request turnaround.
DEFAULT_TENANT_POLICY = LatencyBudget(
    deadline_ms=60_000.0, policy="block", max_in_flight=2, queue_depth=8,
)


class Tenant:
    """One tenant's admission queue, in-flight window and ledger."""

    def __init__(self, name: str, budget: Optional[LatencyBudget] = None):
        self.name = name
        self.budget = budget or DEFAULT_TENANT_POLICY
        self.ledger = FrameLedger()
        self.events: List[RealtimeRecord] = []
        self.queue: Deque = deque()       # tickets awaiting dispatch
        self.in_flight = 0                # tickets running on the pool
        self.degraded = False
        self._admit_counter = 0           # degrade-mode modulus counter

    # -- admission ---------------------------------------------------------

    def admit(self, ticket, now_us: float) -> Tuple[bool, List, str]:
        """Admit (or shed) one submitted request.

        Returns ``(admitted, displaced, reason)`` where ``displaced``
        lists tickets shed to make room (``shed-oldest`` / ``degrade``
        overflow) — the caller owes each a shed response — and
        ``reason`` explains a refusal of *this* ticket.
        """
        record = FrameRecord(frame=len(self.ledger.frames),
                             admitted_us=now_us)
        ticket.record = record
        self.ledger.frames.append(record)
        policy = self.budget.policy
        depth = self.budget.admission_depth
        displaced: List = []

        if policy == "degrade":
            if not self.degraded and len(self.queue) >= depth:
                self.degraded = True
                self._admit_counter = 0
                self.events.append(RealtimeRecord(
                    "degraded-enter", record.frame, now_us,
                    detail=f"queue at {len(self.queue)}/{depth}",
                ))
            if self.degraded:
                self._admit_counter += 1
                if self._admit_counter % self.budget.degrade_ratio != 1:
                    return False, displaced, self._shed(
                        record, now_us, "degraded")
            while len(self.queue) >= depth:
                displaced.append(self._displace_oldest(now_us, "degraded"))
        elif policy == "shed-newest":
            if len(self.queue) >= depth:
                return False, displaced, self._shed(
                    record, now_us, "shed-newest")
        elif policy == "shed-oldest":
            while len(self.queue) >= depth:
                displaced.append(self._displace_oldest(now_us, "shed-oldest"))
        # ``block``: the queue is unbounded — latency is the cost.

        self.queue.append(ticket)
        return True, displaced, ""

    def _shed(self, record: FrameRecord, now_us: float, why: str) -> str:
        record.status = "shed"
        record.reason = why
        self.events.append(RealtimeRecord("shed", record.frame, now_us,
                                          detail=why))
        return why

    def _displace_oldest(self, now_us: float, why: str):
        victim = self.queue.popleft()
        self._shed(victim.record, now_us, why)
        return victim

    # -- dispatch ----------------------------------------------------------

    def take(self, now_us: float):
        """The next dispatchable ticket, or None (empty / window full)."""
        if self.in_flight >= self.budget.max_in_flight or not self.queue:
            self._maybe_recover(now_us)
            return None
        ticket = self.queue.popleft()
        ticket.record.released_us = now_us
        self.in_flight += 1
        self._maybe_recover(now_us)
        return ticket

    def _maybe_recover(self, now_us: float) -> None:
        if self.degraded and not self.queue:
            self.degraded = False
            self.events.append(RealtimeRecord(
                "degraded-exit", None, now_us, detail="backlog cleared"))

    # -- completion --------------------------------------------------------

    def complete(self, ticket, now_us: float, *, failed: bool = False,
                 reason: str = "") -> None:
        """Terminal accounting for a dispatched ticket."""
        self.in_flight -= 1
        record = ticket.record
        record.delivered_us = now_us
        record.status = "failed" if failed else "delivered"
        if failed:
            record.reason = reason or "run failed"
        latency = record.latency_us
        if latency is not None and latency > self.budget.deadline_us:
            record.deadline_missed = True
            self.events.append(RealtimeRecord(
                "deadline-miss", record.frame, now_us,
                detail=f"{latency / 1000:.1f} ms > "
                       f"{self.budget.deadline_ms:.0f} ms",
            ))

    def fail_queued(self, ticket, now_us: float, reason: str) -> None:
        """A still-queued ticket that can never run (service shutdown)."""
        record = ticket.record
        record.status = "failed"
        record.delivered_us = now_us
        record.reason = reason

    # -- introspection -----------------------------------------------------

    @property
    def deadline_misses(self) -> int:
        return self.ledger.deadline_misses

    def to_dict(self) -> dict:
        L = self.ledger
        return {
            "tenant": self.name,
            "policy": self.budget.policy,
            "deadline_ms": self.budget.deadline_ms,
            "submitted": L.submitted,
            "delivered": len(L.delivered),
            "shed": len(L.shed),
            "failed": len(L.failed),
            "queued": len(self.queue),
            "in_flight": self.in_flight,
            "deadline_misses": L.deadline_misses,
            "degraded": self.degraded,
            "conserved": L.unaccounted() == len(self.queue) + self.in_flight,
            "p50_ms": round(L.p50_us / 1000, 2),
            "p99_ms": round(L.p99_us / 1000, 2),
        }
