"""Multi-tenant service soak: chaos on one tenant must not leak.

``python -m repro.serve.soak`` stands up an in-process
:class:`~repro.serve.service.SkipperService` over a real localhost
worker pool and drives two tenants against it concurrently:

* **steady** — a well-behaved tenant submitting runs one at a time
  under the default ``block`` policy;
* **surge** — a misbehaving tenant that bursts more submits than its
  ``shed-newest`` admission window allows, every run of which carries
  ``input-surge`` chaos (a seeded :class:`~repro.faults.plan.FaultPlan`
  on the stream source) and a deliberately tight stream latency budget.

The harness then proves tenant isolation the same way ``repro soak``
proves stream robustness:

* **per-tenant conservation** — delivered + shed + failed == submitted
  on *both* tenants' request ledgers;
* **isolation** — the steady tenant's ledger stays clean: nothing shed,
  nothing failed, no deadline misses, every delivered frame of every
  run matching the fault-free sequential oracle;
* **admission** — the surge tenant was actually shed against its own
  bounded queue (the chaos landed somewhere);
* **cache** — every submit after the first did zero compile work.

Every sequential function lives at module level in
:mod:`repro.realtime.soak`, so the table survives the worker plane's
pickle-by-reference transport.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import FunctionTable
from ..faults.plan import FaultPlan, FaultSpec
from ..realtime import soak as _soak
from ..realtime.budget import LatencyBudget
from ..realtime.topology import StreamTopology
from ..syndex import ring
from .scheduler import RunRequest, Ticket
from .service import SkipperService

__all__ = ["soak_source", "soak_table", "surge_plan",
           "ServeSoakResult", "run_serve_soak", "main"]


def soak_source(nproc: int = 3, frames: int = 25, pieces: int = 4,
                work_us: int = 200) -> str:
    """The stream-of-farms soak program as mini-ML source text.

    Functionally the program :func:`repro.realtime.soak.make_soak`
    builds through the IR API, but expressed the way a service client
    ships it — source in, artefacts cached daemon-side.
    """
    return f"""
    let nproc = {nproc};;
    let loop (state, frame) =
      let xs = shatter frame in
      let total = df nproc crunch gather 0 xs in
      pack state frame total;;
    let main = itermem grab loop emit 0 ({frames}, {pieces}, {work_us});;
    """


def soak_table() -> FunctionTable:
    """The soak functions under service-path prototypes.

    Identical implementations to the ``repro soak`` table; only
    ``grab``'s in-type differs (``int * int * int`` — the source tuple
    appears literally in the mini-ML text instead of arriving through
    ``ProgramBuilder.stream(source=...)``).
    """
    table = FunctionTable()
    table.register("grab", ins=["int * int * int"], outs=["frame"],
                   cost=10.0)(_soak.grab)
    table.register("shatter", ins=["frame"], outs=["piece list"],
                   cost=10.0)(_soak.shatter)
    table.register("crunch", ins=["piece"], outs=["int"],
                   cost=20.0)(_soak.crunch)
    table.register(
        "gather", ins=["int", "int"], outs=["int"], cost=5.0,
        properties=["commutative", "associative"],
    )(_soak.gather)
    table.register("pack", ins=["int", "frame", "int"],
                   outs=["int", "pair"], cost=10.0)(_soak.pack)
    table.register("emit", ins=["pair"], cost=5.0)(_soak.emit)
    return table


def surge_plan(mapping, seed: int, *, n_surges: int = 3) -> FaultPlan:
    """A seeded all-``input-surge`` plan against the stream source."""
    import random

    stream = StreamTopology.from_mapping(mapping)
    assert stream is not None, "the soak program is a stream"
    rng = random.Random(seed)
    events = [
        FaultSpec(
            kind="input-surge",
            process=stream.input_pid,
            occurrence=rng.randint(0, 15),
            count=rng.randint(3, 8),
            factor=rng.choice((2.0, 3.0, 4.0)),
        )
        for _ in range(n_surges)
    ]
    return FaultPlan(events=events, seed=seed)


@dataclass
class ServeSoakResult:
    """Everything the soak observed, plus its verdict."""

    stats: Dict
    steady_reports: List
    surge_tickets: List[Ticket]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def payload(self) -> Dict:
        """One JSON document (the CI artifact)."""
        return {
            "ok": self.ok,
            "violations": self.violations,
            "tenants": self.stats["tenants"],
            "cache": self.stats["cache"],
            "surge": [t.to_dict() for t in self.surge_tickets],
        }


def _tenant_row(stats: Dict, name: str) -> Dict:
    for row in stats["tenants"]:
        if row["tenant"] == name:
            return row
    raise KeyError(name)


def run_serve_soak(
    *,
    seed: int = 0,
    frames: int = 25,
    pieces: int = 4,
    work_us: int = 200,
    steady_runs: int = 4,
    surge_submits: int = 8,
    cluster_size: int = 3,
    workers_per_run: int = 1,
    timeout: float = 120.0,
    log=lambda msg: None,
) -> ServeSoakResult:
    """One multi-tenant soak; the result carries its verdict."""
    source = soak_source(frames=frames, pieces=pieces, work_us=work_us)
    table = soak_table()
    arch = ring(3)
    surge_policy = LatencyBudget(
        deadline_ms=60_000.0, policy="shed-newest",
        max_in_flight=1, queue_depth=2,
    )
    stream_budget = LatencyBudget(
        deadline_ms=50.0, policy="shed-oldest", max_in_flight=3,
    )

    with SkipperService(
        cluster_size=cluster_size, workers_per_run=workers_per_run,
    ) as svc:
        # Warm the cache once so the plan can target the stream input
        # pid; every submit below must then be a full cache hit.
        build = svc.cache.build(source, table, arch)
        plan = surge_plan(build.mapping, seed)
        log(f"pool up ({cluster_size} workers, "
            f"{svc.scheduler.n_slots} slots); surge plan: "
            f"{len(plan.events)} input-surge events")

        surge_tickets = [
            svc.submit(RunRequest(
                source=source, table=table, arch=arch,
                tenant="surge", tenant_policy=surge_policy,
                fault_plan=plan, budget=stream_budget,
                timeout=timeout,
            ))
            for _ in range(surge_submits)
        ]
        log(f"surge: burst of {surge_submits} submits in flight")

        steady_reports = []
        steady_failures: List[str] = []
        for i in range(steady_runs):
            ticket = svc.run(RunRequest(
                source=source, table=table, arch=arch,
                tenant="steady", timeout=timeout,
            ), timeout=timeout + 30.0)
            if ticket.status != "ok":
                steady_failures.append(
                    f"steady run {i}: {ticket.status}: "
                    f"{ticket.error.splitlines()[-1] if ticket.error else ''}"
                )
            elif ticket.report is not None:
                steady_reports.append(ticket.report)
            log(f"steady: run {i + 1}/{steady_runs} "
                f"{ticket.status} (cache_hit={ticket.cache_hit})")

        for ticket in surge_tickets:
            try:
                ticket.wait(timeout + 30.0)
            except TimeoutError:
                steady_failures.append(
                    f"surge ticket {ticket.id} never reached a terminal "
                    "state"
                )
        stats = svc.stats()

    violations = list(steady_failures)
    steady = _tenant_row(stats, "steady")
    surge = _tenant_row(stats, "surge")

    for name, row in (("steady", steady), ("surge", surge)):
        if not row["conserved"]:
            violations.append(
                f"conservation: tenant {name} leaked requests "
                f"(delivered {row['delivered']} + shed {row['shed']} + "
                f"failed {row['failed']} != submitted {row['submitted']})"
            )
    for key in ("shed", "failed", "deadline_misses"):
        if steady[key]:
            violations.append(
                f"isolation: steady tenant has {key}={steady[key]} "
                "while the surge tenant was under chaos"
            )
    if not surge["shed"]:
        violations.append(
            "admission: the surge burst was never shed — the bounded "
            "queue did not engage, the soak proved nothing"
        )
    for report in steady_reports:
        for k, value in report.outputs:
            want = _soak.frame_value(k, pieces)
            if value != want:
                violations.append(
                    f"value correctness: steady frame {k} delivered "
                    f"{value}, the sequential semantics says {want}"
                )
    cache = stats["cache"]
    total = steady_runs + surge_submits
    if cache["hits"] < total:
        violations.append(
            f"cache: only {cache['hits']} of {total} submits did zero "
            "compile work (expected every one after the warm-up)"
        )
    return ServeSoakResult(stats, steady_reports, surge_tickets, violations)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.soak",
        description="multi-tenant service soak: chaos on one tenant "
                    "must not leak into another's ledger",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--frames", type=int, default=25)
    parser.add_argument("--steady-runs", type=int, default=4)
    parser.add_argument("--surge-submits", type=int, default=8)
    parser.add_argument("--cluster", type=int, default=3, metavar="N")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the verdict payload as JSON")
    args = parser.parse_args(argv)

    result = run_serve_soak(
        seed=args.seed, frames=args.frames,
        steady_runs=args.steady_runs, surge_submits=args.surge_submits,
        cluster_size=args.cluster, timeout=args.timeout,
        log=print,
    )
    for row in result.stats["tenants"]:
        print(f"  {row['tenant']:>8}: submitted {row['submitted']}, "
              f"delivered {row['delivered']}, shed {row['shed']}, "
              f"failed {row['failed']}, "
              f"deadline misses {row['deadline_misses']}")
    cache = result.stats["cache"]
    print(f"  cache: {cache['hits']} hits / {cache['misses']} misses / "
          f"{cache['evictions']} evictions")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.payload(), handle, indent=2)
        print(f"  payload written to {args.out}")
    if result.ok:
        print("serve soak: PASS")
        return 0
    for violation in result.violations:
        print(f"serve soak: FAIL: {violation}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
