"""The TCP front door of the service: ``repro serve``.

The server reuses the :mod:`repro.net.protocol` framing — the same
``!IB`` length-prefixed frames the worker plane speaks — with four
client-plane kinds (SUBMIT/RESULT/QUERY/REPLY).  Every frame leads with
a client-chosen u32 request id, so one client socket multiplexes any
number of in-flight submits; responses land whenever their run
completes, in completion order, tagged with the id they answer.

SUBMIT bodies are pickles (they carry the function table and optional
fault plans — the client and server are one trust domain, exactly like
the worker plane's ASSIGN); QUERY/REPLY bodies use the restricted tag
codec since they are plain JSON-able documents.

A client connection dying with submits in flight is harmless: the runs
complete server-side (their tenant accounting stands), only the RESULT
frames are dropped on the closed socket.
"""

from __future__ import annotations

import pickle
import socket
import sys
import threading
from typing import Any, Dict, List, Optional

from ..net import codec
from ..net.protocol import ConnectionClosed, Frame, Link, pack_run, split_run
from .scheduler import RunRequest, Ticket
from .service import SkipperService

__all__ = ["ServeServer", "serve_main"]


def request_from_payload(payload: Dict[str, Any]) -> RunRequest:
    """Build a RunRequest from an unpickled SUBMIT body."""
    from ..realtime.budget import LatencyBudget
    from .wire import table_from_rows

    table = payload["table"]
    if isinstance(table, list):
        table = table_from_rows(table)
    budget = payload.get("budget")
    if isinstance(budget, dict):
        budget = LatencyBudget.from_dict(budget)
    tenant_policy = payload.get("tenant_policy")
    if isinstance(tenant_policy, dict):
        tenant_policy = LatencyBudget.from_dict(tenant_policy)
    return RunRequest(
        source=payload["source"],
        table=table,
        arch=payload["arch"],
        tenant=payload.get("tenant", "default"),
        entry=payload.get("entry", "main"),
        max_iterations=payload.get("max_iterations"),
        args=payload.get("args"),
        timeout=payload.get("timeout", 120.0),
        budget=budget,
        fault_plan=payload.get("fault_plan"),
        fault_policy=payload.get("fault_policy"),
        tenant_policy=tenant_policy,
    )


class ServeServer:
    """Accepts client connections and feeds a :class:`SkipperService`."""

    def __init__(self, service: SkipperService, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._closing = False
        self._links: List[Link] = []
        self._lock = threading.Lock()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._acceptor.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            link = Link(sock)
            with self._lock:
                self._links.append(link)
            threading.Thread(
                target=self._serve_client, args=(link,),
                name="serve-client", daemon=True,
            ).start()

    # -- one client connection ---------------------------------------------

    def _serve_client(self, link: Link) -> None:
        try:
            while True:
                kind, body = link.recv()
                if kind == Frame.BYE:
                    return
                req, rest = split_run(body)
                if kind == Frame.SUBMIT:
                    self._submit(link, req, rest)
                elif kind == Frame.QUERY:
                    self._query(link, req, rest)
        except ConnectionClosed:
            return
        finally:
            link.close()
            with self._lock:
                if link in self._links:
                    self._links.remove(link)

    def _submit(self, link: Link, req: int, rest: memoryview) -> None:
        def respond(ticket: Ticket) -> None:
            doc: Dict[str, Any] = {
                "status": ticket.status,
                "cache_hit": ticket.cache_hit,
            }
            if ticket.report is not None:
                doc["report"] = ticket.report
            if ticket.error:
                doc["error"] = ticket.error
            try:
                blob = pickle.dumps(doc)
            except Exception as err:
                blob = pickle.dumps({
                    "status": ticket.status,
                    "cache_hit": ticket.cache_hit,
                    "error": f"report is not picklable: {err}",
                })
            try:
                link.send(Frame.RESULT, pack_run(req), blob)
            except ConnectionClosed:
                pass  # client gone; the run's accounting already stands

        try:
            request = request_from_payload(pickle.loads(bytes(rest)))
        except Exception as err:
            try:
                link.send(Frame.RESULT, pack_run(req), pickle.dumps({
                    "status": "failed",
                    "cache_hit": False,
                    "error": f"bad submit payload: {err}",
                }))
            except ConnectionClosed:
                pass
            return
        self.service.submit(request, callback=respond)

    def _query(self, link: Link, req: int, rest: memoryview) -> None:
        try:
            what = codec.decode(rest).get("what", "stats")
        except codec.CodecError:
            what = "stats"
        if what == "ps":
            doc: Any = {"runs": self.service.ps(),
                        "health": self.service.health()}
        else:
            doc = self.service.stats()
        try:
            link.send(Frame.REPLY, pack_run(req), *codec.encode(doc))
        except ConnectionClosed:
            pass

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            links, self._links = self._links, []
        for link in links:
            link.close()

    def __enter__(self) -> "ServeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_main(
    listen: str,
    *,
    cluster_size: int = 4,
    workers_per_run: int = 1,
    cache_entries: int = 64,
    max_concurrent: Optional[int] = None,
    ready_file: Optional[str] = None,
) -> int:
    """Run the daemon until interrupted (the ``repro serve`` command)."""
    from ..net.worker import parse_hostport

    host, port = parse_hostport(listen, default_host="127.0.0.1")
    service = SkipperService(
        cluster_size=cluster_size,
        workers_per_run=workers_per_run,
        cache_entries=cache_entries,
        max_concurrent=max_concurrent,
    )
    try:
        server = ServeServer(service, host=host, port=port)
    except OSError as err:
        service.close()
        print(f"error: cannot listen on {listen}: {err}", file=sys.stderr)
        return 1
    print(f"repro serve: listening on {server.address} "
          f"({cluster_size}-worker pool, {service.scheduler.n_slots} "
          f"run slot(s), cache budget {cache_entries})")
    if ready_file:
        with open(ready_file, "w") as handle:
            handle.write(server.address + "\n")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.close()
        service.close()
    return 0
