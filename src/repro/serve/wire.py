"""Wire form of a function table for the client<->daemon SUBMIT path.

The worker plane ships only ``{name: fn}`` (see
:func:`repro.net.coordinator.run_distributed`), but a service submit
must carry the *whole* table — prototypes drive type inference, and
properties drive the transformation rules.  A
:class:`~repro.core.functions.FunctionTable` itself is rarely picklable
because numeric costs are stored as ``constant_cost`` closures, so the
client flattens each spec into a row and the daemon rebuilds the table.

Cost models that do not survive pickling are dropped: the service path
never simulates (workers execute the real functions), so costs only
ever feed local tooling, never the daemon.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List

from ..core.functions import FunctionSpec, FunctionTable

__all__ = ["table_payload", "table_from_rows"]


def table_payload(table: FunctionTable) -> List[Dict[str, Any]]:
    """Flatten a table into picklable spec rows (functions by reference)."""
    rows: List[Dict[str, Any]] = []
    for spec in sorted(table, key=lambda s: s.name):
        cost = spec.cost
        if cost is not None:
            try:
                pickle.dumps(cost)
            except Exception:
                cost = None
        rows.append({
            "name": spec.name,
            "fn": spec.fn,
            "ins": tuple(spec.ins),
            "outs": tuple(spec.outs),
            "cost": cost,
            "doc": spec.doc,
            "properties": tuple(sorted(spec.properties)),
        })
    return rows


def table_from_rows(rows: List[Dict[str, Any]]) -> FunctionTable:
    """Rebuild the daemon-side table from :func:`table_payload` rows."""
    table = FunctionTable()
    for row in rows:
        table.add(FunctionSpec(
            row["name"],
            row["fn"],
            tuple(row["ins"]),
            tuple(row["outs"]),
            row.get("cost"),
            row.get("doc", ""),
            frozenset(row.get("properties", ())),
        ))
    return table
