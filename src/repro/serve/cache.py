"""Content-addressed cache of compiled artefacts (compile once, run many).

The compile pipeline has two architecture-independent stages (parse +
type inference → IR, skeleton expansion → process graph) and two
architecture-dependent ones (mapping, executive codegen).  The cache
mirrors that split:

* the **front** cache maps ``(source, table, entry)`` fingerprints to a
  :class:`~repro.minicaml.compile.CompiledProgram` plus its expanded
  :class:`~repro.pnt.graph.ProcessGraph` — shared by every architecture
  the same program is submitted for;
* the **mapped** cache maps ``(source, table, entry, architecture)``
  fingerprints to the deadlock-checked
  :class:`~repro.syndex.distribute.Mapping` and a per-``max_iterations``
  table of generated executive sources, so a warm run performs zero
  parse/typecheck/expand/map/codegen work.

Fingerprints are *content* hashes, not identity hashes: the source is
fingerprinted over its token stream (whitespace and comment changes
still hit), the function table over each function's prototype,
properties and bytecode (swapping an implementation misses), and the
architecture over its processors and channels.

Both caches are LRU with independent budgets; hits, misses and
evictions are counted per stage and surfaced by :meth:`CompileCache.stats`
(the ``repro stats`` endpoint).  All operations are thread-safe — the
service compiles from many client reader threads at once, and holding
the lock across a miss doubles as single-flight: two tenants racing the
same cold program compile it once.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..codegen.targets import get_target
from ..core.functions import FunctionTable
from ..minicaml.compile import CompiledProgram, compile_source
from ..minicaml.errors import LexError
from ..minicaml.lexer import tokenize
from ..pipeline import expand, map_onto
from ..pnt.graph import ProcessGraph
from ..syndex.arch import Architecture
from ..syndex.distribute import Mapping

__all__ = [
    "source_fingerprint",
    "table_fingerprint",
    "arch_fingerprint",
    "CachedBuild",
    "CompileCache",
]


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def source_fingerprint(source: str) -> str:
    """Hash of the token stream: layout and comments don't invalidate.

    An unlexable source hashes its raw text — the compile stage will
    report the real error, the cache just needs a stable key for it.
    """
    try:
        tokens = tokenize(source)
    except LexError:
        return _digest("raw", source)
    return _digest("tokens", *(f"{t.kind}\x1f{t.text}" for t in tokens))


def _code_fingerprint(fn) -> str:
    """Identity of one sequential function's *behaviour*, best effort.

    Plain ``def`` functions hash their bytecode and constants, so editing
    an implementation misses even when the name stays the same.  Objects
    without a code object (builtins, callables) fall back to their
    qualified name — stable, but blind to behaviour changes, which is the
    same trust the pickle-based ASSIGN payload already extends.
    """
    code = getattr(fn, "__code__", None)
    name = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    if code is None:
        return name
    return _digest(
        name,
        code.co_code.hex(),
        repr(code.co_consts),
        repr(code.co_names),
    )


def table_fingerprint(table: FunctionTable) -> str:
    """Hash of every registered function's prototype and implementation."""
    rows = []
    for spec in sorted(table, key=lambda s: s.name):
        rows.append("\x1f".join((
            spec.name,
            ",".join(spec.ins),
            ",".join(spec.outs),
            ",".join(sorted(spec.properties)),
            _code_fingerprint(spec.fn),
        )))
    return _digest("table", *rows)


def arch_fingerprint(arch: Architecture) -> str:
    """Hash of the machine description (processors + channels)."""
    rows = [arch.name]
    for pid in arch.processor_ids():
        proc = arch.processors[pid]
        rows.append(f"p\x1f{proc.id}\x1f{proc.speed!r}\x1f{proc.io}")
    for cid in sorted(arch.channels):
        chan = arch.channels[cid]
        rows.append(
            f"c\x1f{chan.id}\x1f{','.join(chan.ends)}\x1f"
            f"{chan.bandwidth!r}\x1f{chan.latency!r}\x1f{chan.shared}"
        )
    return _digest("arch", *rows)


@dataclass
class _FrontEntry:
    compiled: CompiledProgram
    graph: ProcessGraph


@dataclass
class _MappedEntry:
    front_key: str
    mapping: Mapping
    #: Generated executive source per (target, max_iterations) pair: a
    #: service process can hand the same cached mapping to the threads
    #: backend (``python`` target) and the asyncio backend without
    #: regenerating either.
    sources: Dict[Tuple[str, Optional[int]], str] = field(
        default_factory=dict
    )


@dataclass
class CachedBuild:
    """One cache lookup's result: the artefacts plus provenance."""

    key: str                 # the (source, table, entry, arch) fingerprint
    front_key: str           # the architecture-independent prefix
    compiled: CompiledProgram
    graph: ProcessGraph
    mapping: Mapping
    hit: bool                # True: zero compile work was performed
    front_hit: bool          # True: parse/typecheck/expand were skipped


class _Counters:
    __slots__ = ("hits", "misses", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class CompileCache:
    """LRU cache over the whole compile pipeline.  Thread-safe."""

    def __init__(self, max_entries: int = 64,
                 max_front_entries: Optional[int] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.max_front_entries = max_front_entries or max_entries
        self._front: "OrderedDict[str, _FrontEntry]" = OrderedDict()
        self._mapped: "OrderedDict[str, _MappedEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._mapped_counts = _Counters()
        self._front_counts = _Counters()
        self._codegen_counts = _Counters()

    def __len__(self) -> int:
        with self._lock:
            return len(self._mapped)

    # -- the compile path --------------------------------------------------

    def build(
        self,
        source: str,
        table: FunctionTable,
        arch: Architecture,
        *,
        entry: str = "main",
    ) -> CachedBuild:
        """Compile through the cache (or entirely from it, when warm)."""
        front_key = _digest(
            "front", source_fingerprint(source), table_fingerprint(table),
            entry,
        )
        key = _digest("mapped", front_key, arch_fingerprint(arch))
        with self._lock:
            mapped = self._mapped.get(key)
            if mapped is not None:
                self._mapped.move_to_end(key)
                if front_key in self._front:
                    self._front.move_to_end(front_key)
                self._mapped_counts.hits += 1
                front = self._front.get(front_key)
                compiled = front.compiled if front else None
                graph = front.graph if front else None
                if compiled is None:
                    # The front entry was evicted under its own budget;
                    # the mapped artefacts are still complete for runs.
                    compiled, graph = self._recover_front(
                        source, table, entry, front_key
                    )
                return CachedBuild(
                    key, front_key, compiled, graph, mapped.mapping,
                    hit=True, front_hit=True,
                )

            self._mapped_counts.misses += 1
            front = self._front.get(front_key)
            if front is not None:
                self._front.move_to_end(front_key)
                self._front_counts.hits += 1
                front_hit = True
            else:
                self._front_counts.misses += 1
                compiled = compile_source(source, table, entry=entry)
                graph = expand(compiled.ir, table)
                front = _FrontEntry(compiled, graph)
                self._front[front_key] = front
                self._evict_locked(self._front, self.max_front_entries,
                                   self._front_counts)
                front_hit = False
            mapping = map_onto(front.graph, arch)
            self._mapped[key] = _MappedEntry(front_key, mapping)
            self._evict_locked(self._mapped, self.max_entries,
                               self._mapped_counts)
            return CachedBuild(
                key, front_key, front.compiled, front.graph, mapping,
                hit=False, front_hit=front_hit,
            )

    def _recover_front(self, source, table, entry, front_key):
        """Re-admit an evicted front entry (counts as a front miss)."""
        self._front_counts.misses += 1
        compiled = compile_source(source, table, entry=entry)
        graph = expand(compiled.ir, table)
        self._front[front_key] = _FrontEntry(compiled, graph)
        self._evict_locked(self._front, self.max_front_entries,
                           self._front_counts)
        return compiled, graph

    def executive_source(
        self, key: str, max_iterations: Optional[int] = None,
        target: str = "python",
    ) -> Optional[str]:
        """The generated executive for a cached mapping, cached per
        ``(target, max_iterations)``.  Returns None for an unknown
        (evicted) key — the caller falls back to generating from its own
        mapping."""
        with self._lock:
            entry = self._mapped.get(key)
            if entry is None:
                return None
            self._mapped.move_to_end(key)
            source = entry.sources.get((target, max_iterations))
            if source is not None:
                self._codegen_counts.hits += 1
                return source
            self._codegen_counts.misses += 1
            source = get_target(target).generate(
                entry.mapping, max_iterations=max_iterations
            )
            entry.sources[(target, max_iterations)] = source
            return source

    @staticmethod
    def _evict_locked(store: OrderedDict, budget: int,
                      counts: _Counters) -> None:
        while len(store) > budget:
            store.popitem(last=False)
            counts.evictions += 1

    # -- introspection -----------------------------------------------------

    def keys(self):
        with self._lock:
            return list(self._mapped)

    def clear(self) -> None:
        with self._lock:
            self._front.clear()
            self._mapped.clear()

    def stats(self) -> Dict:
        """Counters for the stats endpoint.  Top-level hits/misses are
        full-pipeline (mapped) lookups: ``hits`` counts submits that did
        zero compile work."""
        with self._lock:
            return {
                "entries": len(self._mapped),
                "front_entries": len(self._front),
                "max_entries": self.max_entries,
                **self._mapped_counts.to_dict(),
                "front": self._front_counts.to_dict(),
                "codegen": self._codegen_counts.to_dict(),
            }
