"""The thin client: ``repro submit`` / ``repro ps`` / ``repro stats``.

A :class:`ServeClient` keeps one socket to the daemon and multiplexes
any number of in-flight requests over it — each submit gets a fresh
request id, a reader thread routes RESULT/REPLY frames back to the
matching :class:`SubmitOutcome` by id.  The heavy artefacts (typed IR,
process graph, mapping, executive source) never cross this socket: the
client ships source text and the pickled function table, the daemon
owns every compiled form.
"""

from __future__ import annotations

import itertools
import pickle
import socket
import threading
from typing import Any, Dict, Optional, Tuple

from ..backends.base import BackendError
from ..core.functions import FunctionTable
from ..machine.executive import RunReport
from ..net import codec
from ..net.protocol import ConnectionClosed, Frame, Link, pack_run, split_run
from ..realtime.budget import LatencyBudget
from ..syndex.arch import Architecture
from .wire import table_payload

__all__ = ["SubmitOutcome", "ServeClient"]


class SubmitOutcome:
    """One in-flight request's future result."""

    def __init__(self, req_id: int):
        self.req_id = req_id
        self._event = threading.Event()
        self._doc: Optional[Dict[str, Any]] = None

    def _resolve(self, doc: Dict[str, Any]) -> None:
        self._doc = doc
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The raw response document: status, cache_hit, report/error."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request {self.req_id} got no response")
        assert self._doc is not None
        return self._doc

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def report(self, timeout: Optional[float] = None) -> RunReport:
        """The RunReport of a successful run; raises on shed/failure."""
        doc = self.wait(timeout)
        if doc["status"] != "ok":
            raise BackendError(
                f"submit {doc['status']}: {doc.get('error', '')}".strip()
            )
        return doc["report"]


class ServeClient:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, address: str, *, tenant: str = "default",
                 tenant_policy: Optional[LatencyBudget] = None,
                 connect_timeout: float = 10.0):
        from ..net.worker import parse_hostport

        host, port = parse_hostport(address)
        try:
            sock = socket.create_connection((host, port),
                                            timeout=connect_timeout)
        except OSError as err:
            raise BackendError(
                f"cannot reach repro serve at {address}: {err}"
            ) from None
        sock.settimeout(None)
        self.tenant = tenant
        self.tenant_policy = tenant_policy
        self._link = Link(sock)
        self._ids = itertools.count(1)
        self._pending: Dict[int, SubmitOutcome] = {}
        self._lock = threading.Lock()
        self._dead: Optional[str] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="serve-client-reader", daemon=True
        )
        self._reader.start()

    # -- the reader --------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                kind, body = self._link.recv()
                req, rest = split_run(body)
                if kind == Frame.RESULT:
                    doc = pickle.loads(bytes(rest))
                elif kind == Frame.REPLY:
                    doc = codec.decode(rest)
                else:
                    continue
                with self._lock:
                    outcome = self._pending.pop(req, None)
                if outcome is not None:
                    outcome._resolve(doc)
        except (ConnectionClosed, codec.CodecError, pickle.PickleError,
                EOFError) as err:
            with self._lock:
                self._dead = str(err) or "connection closed"
                pending, self._pending = self._pending, {}
            for outcome in pending.values():
                outcome._resolve({
                    "status": "failed",
                    "cache_hit": False,
                    "error": f"connection to the service lost: {self._dead}",
                })

    def _issue(self) -> Tuple[int, SubmitOutcome]:
        with self._lock:
            if self._dead is not None:
                raise BackendError(
                    f"connection to the service lost: {self._dead}"
                )
            req = next(self._ids)
            outcome = SubmitOutcome(req)
            self._pending[req] = outcome
            return req, outcome

    # -- requests ----------------------------------------------------------

    def submit(
        self,
        source: str,
        table: FunctionTable,
        arch: Architecture,
        *,
        entry: str = "main",
        max_iterations: Optional[int] = None,
        args: Optional[Tuple] = None,
        timeout: float = 120.0,
        budget: Optional[LatencyBudget] = None,
        fault_plan: Optional[Any] = None,
        fault_policy: Optional[Any] = None,
        tenant: Optional[str] = None,
        tenant_policy: Optional[LatencyBudget] = None,
    ) -> SubmitOutcome:
        """Fire one run request; returns immediately with its future."""
        req, outcome = self._issue()
        payload = {
            "source": source,
            "table": table_payload(table),
            "arch": arch,
            "tenant": tenant or self.tenant,
            "entry": entry,
            "max_iterations": max_iterations,
            "args": args,
            "timeout": timeout,
            "budget": budget,
            "fault_plan": fault_plan,
            "fault_policy": fault_policy,
            "tenant_policy": (tenant_policy if tenant_policy is not None
                              else self.tenant_policy),
        }
        try:
            blob = pickle.dumps(payload)
        except Exception as err:
            with self._lock:
                self._pending.pop(req, None)
            raise BackendError(
                "submit payloads travel by pickle; this one is not "
                f"picklable: {err}"
            ) from err
        self._send(Frame.SUBMIT, req, blob)
        return outcome

    def run(self, source: str, table: FunctionTable, arch: Architecture,
            *, wait_timeout: float = 180.0, **options) -> RunReport:
        """Submit and block for the report."""
        return self.submit(source, table, arch, **options).report(
            wait_timeout
        )

    def _query(self, what: str, timeout: float) -> Dict[str, Any]:
        req, outcome = self._issue()
        self._send(Frame.QUERY, req,
                   *codec.encode({"what": what}))
        return outcome.wait(timeout)

    def stats(self, timeout: float = 10.0) -> Dict[str, Any]:
        return self._query("stats", timeout)

    def ps(self, timeout: float = 10.0):
        return self._query("ps", timeout)["runs"]

    def ps_doc(self, timeout: float = 10.0) -> Dict[str, Any]:
        """The full ps document: live runs plus per-tenant worker health."""
        return self._query("ps", timeout)

    def health(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Per-tenant worker-health rows of the last supervised runs."""
        return self._query("ps", timeout).get("health", {})

    def _send(self, kind: int, req: int, *buffers) -> None:
        try:
            self._link.send(kind, pack_run(req), *buffers)
        except ConnectionClosed as err:
            with self._lock:
                self._pending.pop(req, None)
                self._dead = str(err) or "connection closed"
            raise BackendError(
                f"connection to the service lost: {self._dead}"
            ) from None

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._link.send(Frame.BYE)
        except ConnectionClosed:
            pass
        self._link.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
