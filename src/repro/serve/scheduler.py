"""Multi-tenant run scheduling onto one shared persistent worker pool.

The scheduler owns a fixed set of executor threads (the service's run
slots).  Each slot, when free, picks the next dispatchable ticket by
round-robin *across tenants* — tenant order rotates on every dispatch,
so a tenant with a thousand queued requests gets exactly the same slot
cadence as a tenant with one.  Starvation isolation therefore comes
from two independent mechanisms: bounded per-tenant queues at admission
(see :mod:`repro.serve.tenancy`) and fair slot rotation at dispatch.

A dispatched ticket checks ``workers_per_run`` links out of the shared
:class:`~repro.net.harness.ClusterHarness`, drives
:func:`~repro.net.coordinator.run_distributed` with the *cached*
executive source (zero codegen on a warm run), releases the links, and
completes the ticket's tenant accounting.  A worker dying mid-run fails
only that ticket (supervised runs survive it entirely); the pool heals
itself on the next checkout, so one death never poisons the service.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..backends.base import BackendError
from ..core.functions import FunctionTable
from ..machine.executive import RunReport
from ..net.coordinator import assemble_run_report, run_distributed
from ..net.harness import ClusterHarness
from ..realtime.budget import LatencyBudget
from ..syndex.arch import Architecture
from .cache import CachedBuild, CompileCache
from .tenancy import Tenant

__all__ = ["RunRequest", "Ticket", "RunScheduler"]

_TICKET_IDS = itertools.count(1)


@dataclass
class RunRequest:
    """One tenant's ask: run this program on that architecture."""

    source: str
    table: FunctionTable
    arch: Architecture
    tenant: str = "default"
    entry: str = "main"
    max_iterations: Optional[int] = None
    args: Optional[Tuple] = None
    timeout: float = 120.0
    #: Stream-level latency budget (the run's own realtime layer).
    budget: Optional[LatencyBudget] = None
    fault_plan: Optional[Any] = None
    fault_policy: Optional[Any] = None
    #: Tenant admission policy, applied when the tenant is first seen.
    tenant_policy: Optional[LatencyBudget] = None


@dataclass
class Ticket:
    """One submitted request's life inside the service."""

    id: int
    request: RunRequest
    build: CachedBuild
    callback: Optional[Callable[["Ticket"], None]] = None
    state: str = "queued"            # queued | running | done
    status: str = ""                 # ok | shed | failed (terminal)
    report: Optional[RunReport] = None
    error: str = ""
    record: Any = None               # the tenant ledger's FrameRecord
    cache_hit: bool = False
    submitted_s: float = field(default_factory=time.perf_counter)
    done: threading.Event = field(default_factory=threading.Event)

    def finish(self, status: str, *, report: Optional[RunReport] = None,
               error: str = "") -> None:
        self.state = "done"
        self.status = status
        self.report = report
        self.error = error
        self.done.set()
        if self.callback is not None:
            self.callback(self)

    def wait(self, timeout: Optional[float] = None) -> "Ticket":
        if not self.done.wait(timeout):
            raise TimeoutError(f"ticket {self.id} still {self.state}")
        return self

    def to_dict(self) -> Dict:
        age = time.perf_counter() - self.submitted_s
        return {
            "id": self.id,
            "tenant": self.request.tenant,
            "state": self.state,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "age_s": round(age, 3),
        }


class RunScheduler:
    """Executor slots + tenant registry over one shared cluster."""

    def __init__(
        self,
        harness: ClusterHarness,
        cache: CompileCache,
        *,
        workers_per_run: int = 1,
        max_concurrent: Optional[int] = None,
        checkout_timeout: float = 30.0,
        default_tenant_policy: Optional[LatencyBudget] = None,
    ):
        self.harness = harness
        self.cache = cache
        self.workers_per_run = max(1, workers_per_run)
        self.checkout_timeout = checkout_timeout
        self.default_tenant_policy = default_tenant_policy
        slots = max_concurrent or max(
            1, harness.size // self.workers_per_run
        )
        self.epoch = time.perf_counter()
        self.tenants: Dict[str, Tenant] = {}
        self._rr: List[str] = []          # tenant rotation order
        self._live: Dict[int, Ticket] = {}
        #: Worker-health rows of each tenant's most recent supervised
        #: run (``repro stats`` / ``repro ps`` surface these).
        self._last_health: Dict[str, List[Dict]] = {}
        self._cond = threading.Condition()
        self._closing = False
        self._slots = [
            threading.Thread(target=self._slot_loop, name=f"serve-slot-{i}",
                             daemon=True)
            for i in range(slots)
        ]
        for thread in self._slots:
            thread.start()

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    def _now_us(self) -> float:
        return (time.perf_counter() - self.epoch) * 1e6

    # -- submission --------------------------------------------------------

    def submit(self, request: RunRequest, build: CachedBuild,
               callback: Optional[Callable] = None) -> Ticket:
        """Admit one compiled request; returns its ticket immediately.

        A shed request's ticket is already ``done`` on return (status
        ``shed``); an admitted one completes asynchronously on a slot.
        """
        ticket = Ticket(next(_TICKET_IDS), request, build, callback)
        ticket.cache_hit = build.hit
        with self._cond:
            if self._closing:
                raise BackendError("the service is shut down")
            tenant = self.tenants.get(request.tenant)
            if tenant is None:
                tenant = Tenant(
                    request.tenant,
                    request.tenant_policy or self.default_tenant_policy,
                )
                self.tenants[request.tenant] = tenant
                self._rr.append(request.tenant)
            elif request.tenant_policy is not None:
                tenant.budget = request.tenant_policy
            now = self._now_us()
            admitted, displaced, reason = tenant.admit(ticket, now)
            if admitted:
                self._live[ticket.id] = ticket
                self._cond.notify()
        for victim in displaced:
            self._live.pop(victim.id, None)
            victim.finish("shed", error=victim.record.reason)
        if not admitted:
            ticket.finish("shed", error=reason)
        return ticket

    # -- the slots ---------------------------------------------------------

    def _slot_loop(self) -> None:
        while True:
            with self._cond:
                ticket = self._next_locked()
                while ticket is None:
                    if self._closing:
                        return
                    self._cond.wait(0.2)
                    ticket = self._next_locked()
            self._execute(ticket)

    def _next_locked(self) -> Optional[Ticket]:
        """Fair pick: rotate tenant order on every successful dispatch."""
        now = self._now_us()
        for idx, name in enumerate(self._rr):
            ticket = self.tenants[name].take(now)
            if ticket is not None:
                self._rr = self._rr[idx + 1:] + self._rr[:idx + 1]
                ticket.state = "running"
                return ticket
        return None

    def _execute(self, ticket: Ticket) -> None:
        request = ticket.request
        source = self.cache.executive_source(
            ticket.build.key, request.max_iterations, target="python"
        )
        try:
            links = self.harness.checkout(
                self.workers_per_run, timeout=self.checkout_timeout
            )
        except BackendError as err:
            self._complete(ticket, failed=True, reason=str(err))
            ticket.finish("failed", error=str(err))
            return
        try:
            result = run_distributed(
                ticket.build.mapping, request.table, links,
                max_iterations=request.max_iterations,
                args=request.args,
                timeout=request.timeout,
                fault_plan=request.fault_plan,
                fault_policy=request.fault_policy,
                budget=request.budget,
                source=source,
            )
            report = assemble_run_report(result, backend="serve")
        except BackendError as err:
            self._complete(ticket, failed=True, reason=str(err))
            ticket.finish("failed", error=str(err))
            return
        except Exception:
            detail = traceback.format_exc()
            self._complete(ticket, failed=True, reason="internal error")
            ticket.finish("failed", error=detail)
            return
        finally:
            self.harness.release(links)
        rows = (report.faults.health_rows()
                if getattr(report.faults, "health_rows", None) else [])
        if rows:
            with self._cond:
                self._last_health[request.tenant] = rows
        self._complete(ticket, failed=False)
        ticket.finish("ok", report=report)

    def _complete(self, ticket: Ticket, *, failed: bool,
                  reason: str = "") -> None:
        with self._cond:
            tenant = self.tenants[ticket.request.tenant]
            tenant.complete(ticket, self._now_us(), failed=failed,
                            reason=reason)
            self._live.pop(ticket.id, None)
            self._cond.notify()

    # -- introspection -----------------------------------------------------

    def ps(self) -> List[Dict]:
        with self._cond:
            rows = [t.to_dict() for t in self._live.values()]
        return sorted(rows, key=lambda r: r["id"])

    def tenant_stats(self) -> List[Dict]:
        with self._cond:
            return [self.tenants[name].to_dict()
                    for name in sorted(self.tenants)]

    def health_stats(self) -> Dict[str, List[Dict]]:
        """Per-tenant worker-health rows of the last supervised run."""
        with self._cond:
            return {tenant: list(rows)
                    for tenant, rows in sorted(self._last_health.items())}

    def ledger(self, tenant: str):
        """The tenant's FrameLedger (tests assert conservation on it)."""
        with self._cond:
            return self.tenants[tenant].ledger

    # -- teardown ----------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> bool:
        """Wait until no ticket is queued or running."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._live:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(0.2, remaining))
            return True

    def close(self) -> None:
        with self._cond:
            if self._closing:
                return
            self._closing = True
            now = self._now_us()
            orphans: List[Ticket] = []
            for tenant in self.tenants.values():
                while tenant.queue:
                    ticket = tenant.queue.popleft()
                    tenant.fail_queued(ticket, now, "service shut down")
                    self._live.pop(ticket.id, None)
                    orphans.append(ticket)
            self._cond.notify_all()
        for ticket in orphans:
            ticket.finish("failed", error="service shut down")
        for thread in self._slots:
            thread.join(5.0)
