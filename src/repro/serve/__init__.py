"""The serving layer: compile once, run many, share the cluster.

SKiPPER's pitch is that a skeleton program is compiled *once* into a
mapped process graph and then run repeatedly on live image streams —
yet ``repro run`` re-parses, re-type-checks, re-expands and re-maps the
program on every invocation, and a single run owns the whole cluster.
:mod:`repro.serve` closes that gap with a long-lived daemon:

* :class:`~repro.serve.cache.CompileCache` — content-addressed cache of
  the whole compile pipeline (typed IR → process graph → mapping →
  generated executive), keyed by a fingerprint of (source tokens,
  function table, architecture), with hit/miss/eviction counters;
* :class:`~repro.serve.tenancy.Tenant` — per-tenant admission control
  reusing the :class:`~repro.realtime.budget.LatencyBudget` overload
  policies on *requests* instead of frames, with a per-tenant
  :class:`~repro.realtime.ledger.FrameLedger` proving request
  conservation (delivered + shed + failed == submitted);
* :class:`~repro.serve.scheduler.RunScheduler` — fair round-robin
  dispatch of admitted requests onto a shared persistent
  :class:`~repro.net.harness.ClusterHarness` worker pool;
* :class:`~repro.serve.service.SkipperService` — the embeddable service
  object (``repro serve`` wraps it in a TCP listener, tests drive it
  in-process);
* :class:`~repro.serve.server.ServeServer` /
  :class:`~repro.serve.client.ServeClient` — the wire layer, speaking
  the existing length-prefixed :mod:`repro.net.protocol` framing with
  request-id multiplexing so many tenants share one socket fabric.
"""

from .cache import (
    CompileCache,
    arch_fingerprint,
    source_fingerprint,
    table_fingerprint,
)
from .client import ServeClient, SubmitOutcome
from .scheduler import RunRequest, RunScheduler, Ticket
from .server import ServeServer
from .service import SkipperService
from .tenancy import Tenant

__all__ = [
    "CompileCache",
    "source_fingerprint",
    "table_fingerprint",
    "arch_fingerprint",
    "Tenant",
    "RunRequest",
    "RunScheduler",
    "Ticket",
    "SkipperService",
    "ServeServer",
    "ServeClient",
    "SubmitOutcome",
]
