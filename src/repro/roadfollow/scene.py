"""Synthetic road scenes for the road-following application.

The paper's second demonstration is "road-following by white line
detection" [Ginhac '99].  This scene model renders a road whose lane
markings converge to a vanishing point, with controllable lateral
*drift* (the car wandering in the lane — what the follower must
measure), optional dashed markings and sensor noise.  Ground truth
(the lane-boundary column at any image row, and the lateral offset at
the bottom row) is exact, so the follower's steering signal can be
scored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..core.semantics import EndOfStream
from ..vision.image import Image
from ..vision.ops import add_noise

__all__ = ["RoadScene", "RoadVideo"]


@dataclass
class RoadScene:
    """A road viewed from a (possibly drifting) car.

    Geometry is parameterised in image space: the two lane boundaries
    start ``lane_half_width`` pixels either side of the lane centre at
    the bottom row and converge linearly to the vanishing point at
    ``vanish_row``.  ``drift(t)`` shifts the *camera* laterally: a
    positive drift moves the car right, so the lane (and both markings)
    appears shifted left by the same amount.
    """

    nrows: int = 128
    ncols: int = 128
    lane_half_width: float = 40.0
    vanish_row: float = 50.0
    line_width: float = 3.0
    background: int = 60
    line_intensity: int = 230
    noise_sigma: float = 3.0
    fps: float = 25.0
    #: Amplitude (px) and period (s) of the sinusoidal wander.
    drift_amplitude: float = 10.0
    drift_period: float = 4.0
    #: Dash pattern: (on_rows, off_rows); (0, 0) = solid lines.
    dashes: Tuple[int, int] = (0, 0)
    seed: int = 0

    def drift_at(self, frame: int) -> float:
        """Lateral camera offset (px, positive = right) at ``frame``."""
        if self.drift_amplitude == 0:
            return 0.0
        t = frame / self.fps
        return self.drift_amplitude * math.sin(
            2 * math.pi * t / self.drift_period
        )

    def lane_center_col(self, row: float, frame: int) -> float:
        """Ground truth: the lane centre's column at ``row``."""
        progress = self._progress(row)
        return self.ncols / 2.0 - self.drift_at(frame) * progress

    def boundary_cols(self, row: float, frame: int) -> Tuple[float, float]:
        """Ground truth: (left, right) marking columns at ``row``."""
        progress = self._progress(row)
        center = self.lane_center_col(row, frame)
        half = self.lane_half_width * progress
        return (center - half, center + half)

    def lateral_offset(self, frame: int) -> float:
        """The signal a road follower must estimate: how far the car sits
        from the lane centre at the bottom row (px, positive = right)."""
        return self.ncols / 2.0 - self.lane_center_col(self.nrows - 1, frame)

    def _progress(self, row: float) -> float:
        span = self.nrows - 1 - self.vanish_row
        return max(0.0, min(1.0, (row - self.vanish_row) / span))

    def render(self, frame: int) -> Image:
        """Render one frame (deterministic per frame index and seed)."""
        img = Image.full(self.nrows, self.ncols, self.background)
        rows = np.arange(self.nrows, dtype=np.float64)[:, None]
        cols = np.arange(self.ncols, dtype=np.float64)[None, :]
        on_mask = np.ones((self.nrows, 1), dtype=bool)
        on_rows, off_rows = self.dashes
        if on_rows > 0 and off_rows > 0:
            phase = (np.arange(self.nrows) + 2 * frame) % (on_rows + off_rows)
            on_mask = (phase < on_rows)[:, None]
        visible = rows >= self.vanish_row
        for side in (0, 1):
            boundary = np.array(
                [self.boundary_cols(r, frame)[side] for r in range(self.nrows)]
            )[:, None]
            on_line = (
                (np.abs(cols - boundary) <= self.line_width / 2.0)
                & visible
                & on_mask
            )
            img.pixels[on_line] = self.line_intensity
        if self.noise_sigma > 0:
            rng = np.random.default_rng(self.seed * 99_991 + frame)
            img = add_noise(img, self.noise_sigma, rng)
        return img


class RoadVideo:
    """A bounded stream of road frames (rewindable, like VideoSource)."""

    def __init__(self, scene: RoadScene, n_frames: int):
        self.scene = scene
        self.n_frames = n_frames
        self._next = 0

    def read(self, _shape=None) -> Image:
        if self._next >= self.n_frames:
            raise EndOfStream
        frame = self.scene.render(self._next)
        self._next += 1
        return frame

    def rewind(self) -> None:
        self._next = 0

    @property
    def frames_served(self) -> int:
        return self._next

    def __iter__(self) -> Iterator[Image]:
        while True:
            try:
                yield self.read()
            except EndOfStream:
                return
