"""The road-following application (the paper's second demonstration)."""

from .scene import RoadScene, RoadVideo
from .follower import (
    FollowerConfig,
    LaneEstimate,
    cluster_peaks,
    select_boundaries,
    update_lane,
)
from .app import ROAD_SPEC, RoadFollowApp, build_road_app

__all__ = [
    "RoadScene",
    "RoadVideo",
    "FollowerConfig",
    "LaneEstimate",
    "cluster_peaks",
    "select_boundaries",
    "update_lane",
    "ROAD_SPEC",
    "RoadFollowApp",
    "build_road_app",
]
