"""Lane estimation from Hough peaks — the road follower's brain.

Detection produces (rho, theta) line candidates; the follower selects
the left/right lane boundary pair, intersects them with the bottom row
to get the lane centre, and derives the *steering signal* (lateral
offset of the car from the lane centre).  Like the vehicle tracker,
it is a little predict-then-verify loop: the previous estimate seeds
the candidate selection, and an exponential moving average smooths the
output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..vision.lines import Line

__all__ = [
    "FollowerConfig",
    "LaneEstimate",
    "cluster_peaks",
    "select_boundaries",
    "update_lane",
]


@dataclass(frozen=True)
class FollowerConfig:
    """Static parameters of the lane estimator."""

    nrows: int = 128
    ncols: int = 128
    #: Reject candidates whose bottom-row intersection is further than
    #: this from the previous boundary (px); used once locked on.
    gate_px: float = 25.0
    #: EMA smoothing factor for the steering signal (1 = no smoothing).
    smoothing: float = 0.6
    #: Candidate lines must be this steep (|theta - 90 deg| >= min_tilt)
    #: — lane markings are never horizontal in the image.
    min_tilt_deg: float = 15.0
    #: Expected lane width at the bottom row (px) and relative tolerance:
    #: the unlocked search only accepts boundary pairs of plausible width
    #: (the follower's rigidity criterion).
    lane_width_px: float = 80.0
    width_tolerance: float = 0.35
    #: Candidates weaker than this fraction of the strongest line are
    #: treated as noise.  Kept permissive: the two markings can differ
    #: widely in votes (the more tilted one is longer and better
    #: bin-aligned), and the width rigidity below already rejects noise.
    min_relative_votes: float = 0.05


@dataclass(frozen=True)
class LaneEstimate:
    """The itermem memory of the road follower."""

    left_col: Optional[float] = None  # bottom-row column of each boundary
    right_col: Optional[float] = None
    offset: float = 0.0  # smoothed steering signal (px, + = car right)
    locked: bool = False
    age: int = 0

    @property
    def center(self) -> Optional[float]:
        if self.left_col is None or self.right_col is None:
            return None
        return (self.left_col + self.right_col) / 2.0


def cluster_peaks(
    peaks: Sequence[Line],
    *,
    rho_tol: float = 8.0,
    theta_tol_deg: float = 8.0,
) -> List[Line]:
    """Merge per-band Hough peaks into whole-image lines.

    Each detection band votes locally and ships only its top peaks (the
    full accumulators would swamp the Transputer links); a marking that
    spans several bands therefore appears as near-identical (rho, theta)
    peaks, which this greedy clustering merges, summing votes.  Returns
    the merged lines sorted by total votes, strongest first.
    """
    theta_tol = math.radians(theta_tol_deg)
    clusters: List[List[Line]] = []
    for peak in sorted(peaks, key=lambda l: -l.votes):
        for cluster in clusters:
            seed = cluster[0]
            if (
                abs(peak.rho - seed.rho) <= rho_tol
                and abs(peak.theta - seed.theta) <= theta_tol
            ):
                cluster.append(peak)
                break
        else:
            clusters.append([peak])
    merged = []
    for cluster in clusters:
        votes = sum(l.votes for l in cluster)
        rho = sum(l.rho * l.votes for l in cluster) / votes
        theta = sum(l.theta * l.votes for l in cluster) / votes
        merged.append(Line(rho=rho, theta=theta, votes=votes))
    merged.sort(key=lambda l: -l.votes)
    return merged


def _bottom_intersection(line: Line, nrows: int) -> Optional[float]:
    """Column where the line crosses the bottom image row."""
    sin_t = math.sin(line.theta)
    cos_t = math.cos(line.theta)
    if abs(cos_t) < 1e-6:  # horizontal line: no single column
        return None
    return (line.rho - (nrows - 1) * sin_t) / cos_t


def select_boundaries(
    config: FollowerConfig,
    previous: LaneEstimate,
    lines: Sequence[Line],
) -> Tuple[Optional[float], Optional[float]]:
    """Pick the (left, right) boundary columns from Hough candidates.

    Candidates are filtered to plausibly-tilted lines inside the frame;
    when locked, each boundary keeps the candidate nearest its previous
    position (within the gate), otherwise the pair bracketing the image
    centre most tightly wins.
    """
    strongest = max((l.votes for l in lines), default=0)
    candidates: List[float] = []
    for line in lines:
        if line.votes < config.min_relative_votes * strongest:
            continue
        tilt = abs(math.degrees(line.theta) - 90.0)
        if tilt < config.min_tilt_deg:
            continue
        col = _bottom_intersection(line, config.nrows)
        if col is None or not (-20 <= col <= config.ncols + 20):
            continue
        candidates.append(col)
    if not candidates:
        return (None, None)

    if previous.locked and previous.left_col is not None:
        def nearest(target):
            best = min(candidates, key=lambda c: abs(c - target))
            return best if abs(best - target) <= config.gate_px else None

        return (nearest(previous.left_col), nearest(previous.right_col))

    # Unlocked: accept only a pair of plausible lane width (the
    # follower's rigidity criterion), preferring the best width fit.
    best_pair: Tuple[Optional[float], Optional[float]] = (None, None)
    best_error = config.width_tolerance * config.lane_width_px
    for i, left in enumerate(candidates):
        for right in candidates[i + 1 :]:
            lo, hi = min(left, right), max(left, right)
            error = abs((hi - lo) - config.lane_width_px)
            if error <= best_error:
                best_pair = (lo, hi)
                best_error = error
    return best_pair


def update_lane(
    config: FollowerConfig,
    previous: LaneEstimate,
    lines: Sequence[Line],
) -> LaneEstimate:
    """One follower step: candidates -> new lane estimate.

    Both boundaries found → locked estimate with a smoothed steering
    signal.  A missing boundary unlocks (next frame searches the whole
    candidate set again) but keeps the last signal — the road follower
    equivalent of the tracker's reinitialisation rule.
    """
    left, right = select_boundaries(config, previous, lines)
    if left is None or right is None:
        return replace(previous, locked=False, age=previous.age + 1)
    center = (left + right) / 2.0
    raw_offset = config.ncols / 2.0 - center
    alpha = config.smoothing
    smoothed = (
        raw_offset
        if not previous.locked
        else alpha * raw_offset + (1 - alpha) * previous.offset
    )
    return LaneEstimate(
        left_col=left,
        right_col=right,
        offset=smoothed,
        locked=True,
        age=previous.age + 1,
    )
