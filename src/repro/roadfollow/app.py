"""The road-following application, SKiPPER-style.

The paper's second demonstrated application: "road-following by white
line detection" [6].  Structure, mirroring the vehicle tracker:

* ``itermem`` carries the lane estimate from frame to frame;
* the frame splits into horizontal bands farmed by ``df``: each worker
  detects edges and Hough-votes *locally*, shipping only its top peaks
  (the full accumulators would swamp the serial links — ~3 MB each);
* a sequential ``steer`` function clusters the per-band peaks into
  whole-image lines, selects the lane boundaries, and produces the
  steering signal plus the next lane estimate.

Costs are T9000-calibrated like the tracker's: per-band edge detection
plus voting dominates, sized so four bands keep a 128x128 stream inside
the 25 Hz frame budget on a small ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.functions import FunctionTable
from ..vision.geometry import Domain, split_rows
from ..vision.image import Image
from ..vision.lines import Line, hough_accumulate, hough_peaks
from ..vision.ops import gradient_magnitude, threshold
from .follower import FollowerConfig, LaneEstimate, cluster_peaks, update_lane
from .scene import RoadScene, RoadVideo

__all__ = ["RoadFollowApp", "ROAD_SPEC", "build_road_app"]

ROAD_SPEC = """
let nbands = {nbands};;
let l0 = init_lane ();;
let loop (lane, im) =
  let bands = split_frame nbands lane im in
  let zero = no_peaks () in
  let peaks = df nbands vote_band gather_peaks zero bands in
  let off, lane2 = steer lane peaks in
  (lane2, off);;
let main = itermem read_road loop report_offset l0 ({nrows},{ncols});;
"""

# T9000-class calibration (µs).
READ_COST = 1_200.0
SPLIT_FIXED = 300.0
SPLIT_PER_PIXEL = 0.05
VOTE_FIXED = 800.0
VOTE_PER_PIXEL = 3.5  # gradient + threshold + sparse Hough voting
GATHER_FIXED = 15.0
STEER_COST = 900.0
REPORT_COST = 150.0
EDGE_LEVEL = 60
PEAKS_PER_BAND = 6


@dataclass
class RoadFollowApp:
    """A ready-to-run road-following instance.

    ``offsets`` collects the steering signal per processed frame.
    """

    source: str
    table: FunctionTable
    video: RoadVideo
    scene: RoadScene
    config: FollowerConfig
    nbands: int
    offsets: List[float] = field(default_factory=list)

    def rewind(self) -> None:
        self.video.rewind()
        self.offsets.clear()


def build_road_app(
    *,
    nbands: int = 4,
    n_frames: int = 12,
    scene: Optional[RoadScene] = None,
) -> RoadFollowApp:
    """Assemble the road follower (table + spec + synthetic video)."""
    if scene is None:
        scene = RoadScene()
    video = RoadVideo(scene, n_frames)
    config = FollowerConfig(nrows=scene.nrows, ncols=scene.ncols)
    table = FunctionTable()
    app = RoadFollowApp(
        source=ROAD_SPEC.format(
            nbands=nbands, nrows=scene.nrows, ncols=scene.ncols
        ),
        table=table,
        video=video,
        scene=scene,
        config=config,
        nbands=nbands,
    )

    @table.register("read_road", ins=["int * int"], outs=["img"],
                    cost=READ_COST, doc="grab the next road frame")
    def read_road(shape):
        return video.read(shape)

    @table.register("init_lane", ins=[], outs=["lane"], cost=50.0,
                    doc="initial lane estimate (unlocked)")
    def init_lane():
        return LaneEstimate()

    @table.register(
        "split_frame",
        ins=["int", "lane", "img"],
        outs=["band list"],
        cost=lambda n, lane, im: SPLIT_FIXED
        + SPLIT_PER_PIXEL * im.nrows * im.ncols,
        doc="cut the frame into horizontal detection bands",
    )
    def split_frame(n: int, _lane: LaneEstimate, im: Image) -> List[Domain]:
        return split_rows(im, n)

    @table.register("no_peaks", ins=[], outs=["peak list"], cost=5.0)
    def no_peaks() -> List[Line]:
        return []

    @table.register(
        "vote_band",
        ins=["band"],
        outs=["peak list"],
        cost=lambda dom: VOTE_FIXED
        + VOTE_PER_PIXEL * dom.pixels.nrows * dom.pixels.ncols,
        doc="edges + local Hough voting; ships only the top peaks",
    )
    def vote_band(dom: Domain) -> List[Line]:
        edges = threshold(gradient_magnitude(dom.pixels), EDGE_LEVEL)
        # The zero-padded gradient manufactures strong horizontal edges
        # along every band border (and vertical ones at the frame sides);
        # mask them so only road structure votes.
        edges.pixels[:2, :] = 0
        edges.pixels[-2:, :] = 0
        edges.pixels[:, :2] = 0
        edges.pixels[:, -2:] = 0
        acc = hough_accumulate(edges, origin=(dom.rect.row, dom.rect.col))
        return hough_peaks(acc, PEAKS_PER_BAND, min_votes=8)

    @table.register(
        "gather_peaks",
        ins=["peak list", "peak list"],
        outs=["peak list"],
        cost=lambda acc, new: GATHER_FIXED + 2.0 * len(new),
        properties=["append"],
        doc="order-insensitive concatenation of per-band peaks",
    )
    def gather_peaks(acc: List[Line], new: List[Line]) -> List[Line]:
        return sorted(acc + new, key=lambda l: (l.rho, l.theta, -l.votes))

    @table.register(
        "steer",
        ins=["lane", "peak list"],
        outs=["offset", "lane"],
        cost=STEER_COST,
        doc="cluster peaks, select boundaries, update the lane estimate",
    )
    def steer(lane: LaneEstimate, peaks: List[Line]):
        lines = cluster_peaks(peaks)
        new_lane = update_lane(config, lane, lines)
        return new_lane.offset, new_lane

    @table.register("report_offset", ins=["offset"], cost=REPORT_COST,
                    doc="send the steering signal to the controller")
    def report_offset(offset: float) -> None:
        app.offsets.append(offset)

    return app
