"""Payload size estimation for communication cost models.

The distributed executive ships values between processes; the machine
simulator charges link time proportional to payload bytes.  This module
estimates the wire size of the value types flowing through SKiPPER
programs, approximating the packed C structs of the original system
(fixed-size scalars, length-prefixed lists, raw pixel payloads).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["payload_bytes", "HEADER_BYTES"]

#: Per-message framing overhead (tag + length), matching a small C header.
HEADER_BYTES = 8

_SCALAR_BYTES = 4  # 32-bit ints/floats on the T9000
_LIST_HEADER = 4  # length prefix


def payload_bytes(value: Any) -> int:
    """Wire size of ``value`` in bytes (excluding the message header).

    Handles the data types SKiPPER applications exchange: scalars,
    strings, tuples/lists, numpy arrays, Images/Windows/Marks/Rects (via
    duck-typed ``nbytes``/``__dataclass_fields__``), and None/unit.
    Unknown objects fall back to a conservative fixed size.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return _SCALAR_BYTES
    if isinstance(value, complex):
        return 2 * _SCALAR_BYTES
    if isinstance(value, (str, bytes)):
        return _LIST_HEADER + len(value)
    if isinstance(value, np.ndarray):
        return _LIST_HEADER + int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None and isinstance(nbytes, (int, np.integer)):
        return _LIST_HEADER + int(nbytes)
    if isinstance(value, (list, tuple, set, frozenset)):
        return _LIST_HEADER + sum(payload_bytes(v) for v in value)
    if isinstance(value, dict):
        return _LIST_HEADER + sum(
            payload_bytes(k) + payload_bytes(v) for k, v in value.items()
        )
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        return sum(payload_bytes(getattr(value, name)) for name in fields)
    # Opaque object: charge a fixed conservative size.
    return 64
