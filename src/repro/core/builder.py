"""Fluent Python API for building skeletal programs.

The mini-ML front-end is the paper-faithful way in; this builder is the
pragmatic way — a downstream user who already lives in Python can wire
the same IR directly:

.. code-block:: python

    b = ProgramBuilder("tracking", table)
    state, im = b.params("state", "im")
    ws = b.apply("get_windows", b.const(8, "nproc"), state, im)
    marks = b.df(8, comp="detect_mark", acc="accum_marks",
                 z=b.const([], "empty"), xs=ws)
    ms, st = b.apply("predict", marks)
    prog = b.stream(st, ms, inp="read_img", out="display_marks",
                    init="init_state", source=(512, 512))
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence, Tuple, Union

from .functions import FunctionTable
from .ir import Apply, Const, IRError, Program, SkelApply, StreamSpec

__all__ = ["Value", "ProgramBuilder"]


class Value:
    """A handle to an SSA value inside a builder."""

    __slots__ = ("name", "_builder")

    def __init__(self, name: str, builder: "ProgramBuilder"):
        self.name = name
        self._builder = builder

    def __repr__(self) -> str:
        return f"Value({self.name!r})"


class ProgramBuilder:
    """Accumulates bindings and finalises them into a :class:`Program`."""

    def __init__(self, name: str, table: Optional[FunctionTable] = None):
        self.name = name
        self.table = table
        self._params: list = []
        self._bindings: list = []
        self._counter = itertools.count()
        self._finalised = False

    # -- value creation ------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        return f"{hint}_{next(self._counter)}"

    def params(self, *names: str) -> Tuple[Value, ...]:
        """Declare the body's formal parameters (call once, first)."""
        if self._params:
            raise IRError("parameters already declared")
        if self._bindings:
            raise IRError("declare parameters before any binding")
        self._params = list(names)
        return tuple(Value(n, self) for n in names)

    def const(self, value: Any, name: Optional[str] = None) -> Value:
        """Bind a literal value."""
        out = name if name is not None else self._fresh("const")
        self._bindings.append(Const(out, value))
        return Value(out, self)

    def _name_of(self, v: Union[Value, str]) -> str:
        if isinstance(v, Value):
            if v._builder is not self:
                raise IRError(f"value {v.name!r} belongs to another builder")
            return v.name
        return v

    def apply(
        self, func: str, *args: Union[Value, str], outs: Optional[Sequence[str]] = None
    ) -> Union[Value, Tuple[Value, ...]]:
        """Call a sequential function.

        The number of outputs is taken from the function table when one
        was supplied (mirroring the C prototype's ``/*out*/`` count),
        else from ``outs``, else assumed 1.  Returns a single
        :class:`Value` or a tuple of them.
        """
        if outs is None:
            n_outs = self.table[func].n_outs if self.table and func in self.table else 1
            out_names = tuple(self._fresh(f"{func}_out") for _ in range(n_outs))
        else:
            out_names = tuple(outs)
        arg_names = tuple(self._name_of(a) for a in args)
        self._bindings.append(Apply(func, arg_names, out_names))
        values = tuple(Value(o, self) for o in out_names)
        return values[0] if len(values) == 1 else values

    # -- skeletons -------------------------------------------------------

    def scm(
        self,
        degree: int,
        *,
        split: str,
        comp: str,
        merge: str,
        x: Union[Value, str],
        out: Optional[str] = None,
    ) -> Value:
        """Instantiate the Split-Compute-Merge skeleton."""
        out_name = out or self._fresh("scm_out")
        self._bindings.append(
            SkelApply(
                "scm",
                degree,
                {"split": split, "comp": comp, "merge": merge},
                (self._name_of(x),),
                (out_name,),
            )
        )
        return Value(out_name, self)

    def df(
        self,
        degree: int,
        *,
        comp: str,
        acc: str,
        z: Union[Value, str],
        xs: Union[Value, str],
        out: Optional[str] = None,
    ) -> Value:
        """Instantiate the Data Farming skeleton."""
        out_name = out or self._fresh("df_out")
        self._bindings.append(
            SkelApply(
                "df",
                degree,
                {"comp": comp, "acc": acc},
                (self._name_of(z), self._name_of(xs)),
                (out_name,),
            )
        )
        return Value(out_name, self)

    def tf(
        self,
        degree: int,
        *,
        comp: str,
        acc: str,
        z: Union[Value, str],
        xs: Union[Value, str],
        out: Optional[str] = None,
    ) -> Value:
        """Instantiate the Task Farming skeleton."""
        out_name = out or self._fresh("tf_out")
        self._bindings.append(
            SkelApply(
                "tf",
                degree,
                {"comp": comp, "acc": acc},
                (self._name_of(z), self._name_of(xs)),
                (out_name,),
            )
        )
        return Value(out_name, self)

    # -- finalisation ------------------------------------------------------

    def _finish(self, results, stream):
        if self._finalised:
            raise IRError("builder already finalised")
        self._finalised = True
        prog = Program(
            name=self.name,
            params=tuple(self._params),
            bindings=list(self._bindings),
            results=tuple(self._name_of(r) for r in results),
            stream=stream,
        )
        prog.validate(self.table)
        return prog

    def returns(self, *results: Union[Value, str]) -> Program:
        """Finalise a one-shot program returning ``results``."""
        return self._finish(results, None)

    def stream(
        self,
        new_state: Union[Value, str],
        output: Union[Value, str],
        *,
        inp: str,
        out: str,
        init: Optional[str] = None,
        init_value: Any = None,
        source: Any = None,
    ) -> Program:
        """Finalise a stream (``itermem``) program.

        The body must have exactly two parameters ``(state, item)``;
        ``new_state`` and ``output`` are its ``(state', y)`` results.
        """
        spec = StreamSpec(
            inp=inp, out=out, init=init, init_value=init_value, source=source
        )
        return self._finish((new_state, output), spec)
