"""Inter-skeleton transformation rules.

The paper's stated next step (§6): "to study inter-skeleton
transformational rules, which are needed when applications are built by
composing and/or nesting a large number of skeletons".  This module
implements that extension as a rewriting pass over the program IR.

Every rule preserves the declarative semantics — the guarantee rests on
the algebraic properties the programmer *declares* on the sequential
functions (:attr:`repro.core.functions.FunctionSpec.properties`) and
can spot-check with
:func:`repro.core.functions.check_declared_properties`.  The test suite
additionally verifies each rewrite by emulating original and
transformed programs on random inputs.

Rules
-----

``eliminate_dead_bindings``
    Remove bindings whose outputs are never consumed (and are not
    program results).  Always sound: the coordination layer is pure.

``fuse_farms``
    ``df n g cons [] xs`` feeding ``df n f acc z _`` (the inner farm's
    only consumer) fuses into one farm ``df n (f . g) acc z xs``,
    saving a full dispatch/collect round-trip and the intermediate
    list.  Requires the inner accumulator to be declared ``append``
    (its result is exactly the collected elements) and the outer
    accumulator to be order-insensitive anyway (the df contract).  The
    composed worker function is synthesised into the function table.

``fuse_scm``
    ``scm n split c2 merge (scm n split c1 glue x)`` with ``glue``
    declared the *inverse* of ``split`` (via ``inverse_pairs``) fuses
    into ``scm n split (c2 . c1) merge x``, eliminating a gather/
    scatter round-trip.

``clamp_degrees``
    Cap every skeleton's parallelism degree at the target machine's
    processor count (extra workers only add routing overhead).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .functions import FunctionSpec, FunctionTable
from .ir import Apply, Const, Program, SkelApply

__all__ = [
    "TransformReport",
    "compose_functions",
    "eliminate_dead_bindings",
    "merge_duplicate_applies",
    "fuse_farms",
    "fuse_scm",
    "clamp_degrees",
    "optimize",
]


class TransformReport:
    """What a transformation pass did (for logs and tests)."""

    def __init__(self) -> None:
        self.applied: List[str] = []

    def note(self, message: str) -> None:
        self.applied.append(message)

    def __bool__(self) -> bool:
        return bool(self.applied)

    def render(self) -> str:
        if not self.applied:
            return "no transformations applied"
        return "\n".join(f"- {m}" for m in self.applied)


def compose_functions(
    table: FunctionTable, outer: str, inner: str, *, name: Optional[str] = None
) -> str:
    """Synthesise ``outer . inner`` into the table; returns its name.

    The composition inherits ``inner``'s inputs and ``outer``'s outputs;
    its cost model is the sum of the parts (the worker now does both
    steps).  Idempotent per (outer, inner) pair.
    """
    f, g = table[outer], table[inner]
    if g.n_outs != 1:
        raise ValueError(f"cannot compose through multi-output {inner!r}")
    if f.arity != 1:
        raise ValueError(f"outer function {outer!r} must be unary")
    composed_name = name or f"{outer}__o__{inner}"
    if composed_name in table:
        return composed_name

    def composed(x):
        return f.fn(g.fn(x))

    def cost(x):
        inner_cost = g.cost_of(x)
        mid = g.fn(x)
        outer_cost = f.cost_of(mid)
        parts = [c for c in (inner_cost, outer_cost) if c is not None]
        return sum(parts) if parts else None

    table.add(
        FunctionSpec(
            composed_name,
            composed,
            tuple(g.ins),
            tuple(f.outs),
            cost if (f.cost or g.cost) else None,
            doc=f"fused {outer} . {inner}",
        )
    )
    return composed_name


def eliminate_dead_bindings(
    program: Program, table: FunctionTable, report: TransformReport
) -> Program:
    """Drop bindings none of whose outputs reach a use or a result."""
    changed = True
    bindings = list(program.bindings)
    while changed:
        changed = False
        used: Set[str] = set(program.results)
        for b in bindings:
            used.update(b.args)
        kept = []
        for b in bindings:
            if any(o in used for o in b.outs):
                kept.append(b)
            else:
                report.note(f"removed dead binding of {', '.join(b.outs)}")
                changed = True
        bindings = kept
    if len(bindings) == len(program.bindings):
        return program
    return replace(program, bindings=bindings)


def _consumers_of(program: Program, value: str) -> List:
    return [b for b in program.bindings if value in b.args]


def merge_duplicate_applies(
    program: Program, table: FunctionTable, report: TransformReport
) -> Program:
    """Common-subexpression elimination on sequential-function calls.

    The coordination layer is pure (the paper's functional specification
    discipline), so two calls of the same function on the same values
    are one process.  Constants with equal values merge the same way.
    """
    rename: Dict[str, str] = {}
    seen_applies: Dict[Tuple[str, Tuple[str, ...]], Apply] = {}
    seen_consts: Dict[str, Const] = {}
    bindings = []
    changed = False
    for b in program.bindings:
        if isinstance(b, Const):
            key = repr(b.value)
            prior = seen_consts.get(key)
            if prior is not None:
                rename[b.out] = prior.out
                report.note(f"merged duplicate constant {b.out}")
                changed = True
                continue
            seen_consts[key] = b
            bindings.append(b)
        elif isinstance(b, Apply):
            args = tuple(rename.get(a, a) for a in b.args)
            key2 = (b.func, args)
            prior = seen_applies.get(key2)
            if prior is not None:
                for mine, theirs in zip(b.outs, prior.outs):
                    rename[mine] = theirs
                report.note(f"merged duplicate call of {b.func}")
                changed = True
                continue
            new = Apply(b.func, args, b.outs)
            seen_applies[key2] = new
            bindings.append(new)
        elif isinstance(b, SkelApply):
            # Farms are not merged (their degree is a resource decision),
            # but their arguments still follow renamed values.
            bindings.append(
                replace(b, args=tuple(rename.get(a, a) for a in b.args))
            )
        else:
            bindings.append(b)
    if not changed:
        return program
    results = tuple(rename.get(r, r) for r in program.results)
    return replace(program, bindings=bindings, results=results)


def fuse_farms(
    program: Program, table: FunctionTable, report: TransformReport
) -> Program:
    """Fuse producer/consumer df pairs (see module docstring)."""
    bindings = list(program.bindings)
    producers = program.producers()
    for outer in bindings:
        if not isinstance(outer, SkelApply) or outer.kind != "df":
            continue
        xs_value = outer.args[1]
        inner = producers.get(xs_value)
        if not isinstance(inner, SkelApply) or inner.kind != "df":
            continue
        if inner.degree != outer.degree:
            continue
        # The inner farm must feed only the outer farm.
        if xs_value in program.results or len(_consumers_of(program, xs_value)) != 1:
            continue
        inner_acc = table[inner.funcs["acc"]]
        if not inner_acc.has_property("append"):
            continue
        # The inner z must be the empty list constant.
        inner_z = producers.get(inner.args[0])
        if not isinstance(inner_z, Const) or inner_z.value != []:
            continue
        composed = compose_functions(
            table, outer.funcs["comp"], inner.funcs["comp"]
        )
        fused = SkelApply(
            "df",
            outer.degree,
            {"comp": composed, "acc": outer.funcs["acc"]},
            (outer.args[0], inner.args[1]),
            outer.outs,
        )
        idx = bindings.index(outer)
        bindings[idx] = fused
        bindings.remove(inner)
        report.note(
            f"fused df({inner.funcs['comp']}) into df({outer.funcs['comp']}) "
            f"as {composed}"
        )
        return replace(program, bindings=bindings)
    return program


def fuse_scm(
    program: Program,
    table: FunctionTable,
    report: TransformReport,
    *,
    inverse_pairs: FrozenSet[Tuple[str, str]] = frozenset(),
) -> Program:
    """Fuse scm pipelines whose merge/split boundary is declared inverse.

    ``inverse_pairs`` holds ``(merge_name, split_name)`` pairs the
    programmer certifies satisfy ``split n (merge x parts) == parts``
    (e.g. band-merge followed by the same band-split).
    """
    bindings = list(program.bindings)
    producers = program.producers()
    for outer in bindings:
        if not isinstance(outer, SkelApply) or outer.kind != "scm":
            continue
        x_value = outer.args[0]
        inner = producers.get(x_value)
        if not isinstance(inner, SkelApply) or inner.kind != "scm":
            continue
        if inner.degree != outer.degree:
            continue
        if (inner.funcs["merge"], outer.funcs["split"]) not in inverse_pairs:
            continue
        if x_value in program.results or len(_consumers_of(program, x_value)) != 1:
            continue
        composed = compose_functions(
            table, outer.funcs["comp"], inner.funcs["comp"]
        )
        fused = SkelApply(
            "scm",
            outer.degree,
            {
                "split": inner.funcs["split"],
                "comp": composed,
                "merge": outer.funcs["merge"],
            },
            inner.args,
            outer.outs,
        )
        idx = bindings.index(outer)
        bindings[idx] = fused
        bindings.remove(inner)
        report.note(
            f"fused scm({inner.funcs['comp']}) into scm({outer.funcs['comp']}) "
            f"as {composed}"
        )
        return replace(program, bindings=bindings)
    return program


def clamp_degrees(
    program: Program,
    table: FunctionTable,
    report: TransformReport,
    *,
    max_degree: Optional[int] = None,
) -> Program:
    """Cap skeleton degrees at the target's processor count."""
    if max_degree is None:
        return program
    bindings = []
    changed = False
    for b in program.bindings:
        if isinstance(b, SkelApply) and b.degree > max_degree:
            bindings.append(replace(b, degree=max_degree))
            report.note(
                f"clamped {b.kind} degree {b.degree} -> {max_degree} "
                f"(machine size)"
            )
            changed = True
        else:
            bindings.append(b)
    if not changed:
        return program
    return replace(program, bindings=bindings)


def optimize(
    program: Program,
    table: FunctionTable,
    *,
    max_degree: Optional[int] = None,
    inverse_pairs: Sequence[Tuple[str, str]] = (),
    max_passes: int = 20,
) -> Tuple[Program, TransformReport]:
    """Apply all rules to a fixpoint; returns (program, report).

    The declarative semantics is preserved: degree changes are invisible
    to it by definition (``n`` only affects the operational side), and
    the fusion rules rely on the declared algebraic properties.
    """
    report = TransformReport()
    pairs = frozenset(inverse_pairs)
    current = program
    for _ in range(max_passes):
        before = len(report.applied)
        current = clamp_degrees(current, table, report, max_degree=max_degree)
        current = merge_duplicate_applies(current, table, report)
        current = fuse_farms(current, table, report)
        current = fuse_scm(current, table, report, inverse_pairs=pairs)
        current = eliminate_dead_bindings(current, table, report)
        if len(report.applied) == before:
            break
    current.validate(table)
    return current, report
