"""Dataflow intermediate representation of a skeletal program.

Both front ends — the mini-ML compiler (:mod:`repro.minicaml`) and the
Python builder API (:mod:`repro.core.builder`) — produce this IR.  It is
the "annotated abstract syntax tree ... expanded into a (target
independent) parallel process network" pivot of the paper's Fig. 2:
downstream, :mod:`repro.pnt.expand` instantiates one process-network
template per :class:`SkelApply` node to obtain the process graph.

Shape of the IR
---------------

A :class:`Program` is a flat SSA-style list of bindings over named
values:

* :class:`Const` — a literal value;
* :class:`Apply` — a call to a registered sequential function (possibly
  with several outputs, mirroring multiple ``/*out*/`` C parameters);
* :class:`SkelApply` — an instance of an inner skeleton (``scm``, ``df``
  or ``tf``) parameterised by sequential function names.

An optional :class:`StreamSpec` wraps the body in the ``itermem``
skeleton: the body then has two distinguished parameters ``(state,
item)`` and two distinguished results ``(state', y)``.  SKiPPER forbids
free skeleton nesting (section 5); the IR enforces exactly the supported
shape — one optional stream loop around a DAG of non-nested inner
skeletons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .functions import FunctionTable

__all__ = [
    "Const",
    "Apply",
    "SkelApply",
    "StreamSpec",
    "Program",
    "IRError",
    "SKELETON_KINDS",
    "SKELETON_ROLES",
]

SKELETON_KINDS = ("scm", "df", "tf")

#: Role names of each inner skeleton's sequential-function parameters,
#: in declarative-argument order.
SKELETON_ROLES: Dict[str, Tuple[str, ...]] = {
    "scm": ("split", "comp", "merge"),
    "df": ("comp", "acc"),
    "tf": ("comp", "acc"),
}

#: Data (value) arguments of each inner skeleton, in order.
SKELETON_DATA_ARGS: Dict[str, Tuple[str, ...]] = {
    "scm": ("x",),
    "df": ("z", "xs"),
    "tf": ("z", "xs"),
}


class IRError(ValueError):
    """A malformed program graph."""


@dataclass(frozen=True)
class Const:
    """A literal binding: ``out = value``."""

    out: str
    value: Any

    @property
    def outs(self) -> Tuple[str, ...]:
        return (self.out,)

    @property
    def args(self) -> Tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class Apply:
    """A sequential-function call: ``outs = func(args)``."""

    func: str
    args: Tuple[str, ...]
    outs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.outs:
            raise IRError(f"Apply({self.func}) must bind at least one output")


@dataclass(frozen=True)
class SkelApply:
    """An inner-skeleton instance.

    ``funcs`` maps role names (see :data:`SKELETON_ROLES`) to registered
    function names; ``args`` are the data-argument value names (see
    :data:`SKELETON_DATA_ARGS`); ``degree`` is the parallelism degree
    (the ``n`` parameter of the paper's definitions).
    """

    kind: str
    degree: int
    funcs: Dict[str, str]
    args: Tuple[str, ...]
    outs: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in SKELETON_KINDS:
            raise IRError(f"unknown skeleton kind {self.kind!r}")
        expected_roles = set(SKELETON_ROLES[self.kind])
        if set(self.funcs) != expected_roles:
            raise IRError(
                f"{self.kind} requires roles {sorted(expected_roles)}, "
                f"got {sorted(self.funcs)}"
            )
        expected_args = len(SKELETON_DATA_ARGS[self.kind])
        if len(self.args) != expected_args:
            raise IRError(
                f"{self.kind} takes {expected_args} data argument(s), "
                f"got {len(self.args)}"
            )
        if self.degree <= 0:
            raise IRError(f"{self.kind} degree must be positive, got {self.degree}")
        if len(self.outs) != 1:
            raise IRError(f"{self.kind} produces exactly one result")


Binding = Union[Const, Apply, SkelApply]


@dataclass(frozen=True)
class StreamSpec:
    """The ``itermem`` wrapper around the program body.

    Attributes:
        inp: input function name (``'a -> 'b``), e.g. ``read_img``.
        out: output function name (``'d -> unit``), e.g. ``display_marks``.
        init: function name computing the initial memory (``unit -> 'c``),
            e.g. ``init_state`` — or None when ``init_value`` is given.
        init_value: literal initial memory (alternative to ``init``).
        source: literal argument fed to ``inp`` each iteration (the
            ``(512, 512)`` of the case study).
    """

    inp: str
    out: str
    init: Optional[str] = None
    init_value: Any = None
    source: Any = None

    def __post_init__(self) -> None:
        if self.init is None and self.init_value is None:
            raise IRError("stream needs an init function or an init value")


@dataclass
class Program:
    """A complete skeletal program.

    ``params`` are the body's formal parameters.  For stream programs the
    convention is ``params = (state, item)`` and ``results = (state',
    y)``; for one-shot programs both are free-form.
    """

    name: str
    params: Tuple[str, ...]
    bindings: List[Binding]
    results: Tuple[str, ...]
    stream: Optional[StreamSpec] = None
    types: Dict[str, str] = field(default_factory=dict)  # value -> type string

    # -- structure queries ---------------------------------------------------

    def skeleton_instances(self) -> List[SkelApply]:
        return [b for b in self.bindings if isinstance(b, SkelApply)]

    def function_names(self) -> List[str]:
        """All sequential-function names the program references."""
        names = []
        for b in self.bindings:
            if isinstance(b, Apply):
                names.append(b.func)
            elif isinstance(b, SkelApply):
                names.extend(b.funcs.values())
        if self.stream is not None:
            names.append(self.stream.inp)
            names.append(self.stream.out)
            if self.stream.init is not None:
                names.append(self.stream.init)
        return names

    def producers(self) -> Dict[str, Binding]:
        """Map each value name to the binding that produces it."""
        prod: Dict[str, Binding] = {}
        for b in self.bindings:
            for o in b.outs:
                prod[o] = b
        return prod

    def consumers(self) -> Dict[str, List[Binding]]:
        cons: Dict[str, List[Binding]] = {}
        for b in self.bindings:
            for a in b.args:
                cons.setdefault(a, []).append(b)
        return cons

    # -- validation ------------------------------------------------------

    def validate(self, table: Optional[FunctionTable] = None) -> None:
        """Check SSA form, def-before-use, result availability, and (when a
        function table is given) that every referenced function exists with
        a consistent arity.

        Raises :class:`IRError` on the first violation.
        """
        defined = set(self.params)
        if len(defined) != len(self.params):
            raise IRError(f"duplicate parameter names in {self.params}")
        for b in self.bindings:
            for a in b.args:
                if a not in defined:
                    raise IRError(f"value {a!r} used before definition in {b}")
            for o in b.outs:
                if o in defined:
                    raise IRError(f"value {o!r} bound twice (SSA violation)")
                defined.add(o)
        for r in self.results:
            if r not in defined:
                raise IRError(f"result {r!r} is never defined")
        if self.stream is not None and len(self.results) != 2:
            raise IRError(
                "a stream program's body must return (state', y); "
                f"got {len(self.results)} result(s)"
            )
        if self.stream is not None and len(self.params) != 2:
            raise IRError(
                "a stream program's body must take (state, item); "
                f"got {len(self.params)} parameter(s)"
            )
        if table is not None:
            self._check_against_table(table)

    def _check_against_table(self, table: FunctionTable) -> None:
        for name in self.function_names():
            if name not in table:
                raise IRError(f"function {name!r} not in the function table")
        for b in self.bindings:
            if isinstance(b, Apply):
                spec = table[b.func]
                if spec.arity != len(b.args):
                    raise IRError(
                        f"{b.func} has arity {spec.arity}, called with "
                        f"{len(b.args)} argument(s)"
                    )
                if spec.n_outs != len(b.outs):
                    raise IRError(
                        f"{b.func} produces {spec.n_outs} output(s), "
                        f"binding expects {len(b.outs)}"
                    )

    def __repr__(self) -> str:
        kind = "stream" if self.stream else "one-shot"
        return (
            f"Program({self.name!r}, {kind}, {len(self.bindings)} bindings, "
            f"{len(self.skeleton_instances())} skeleton(s))"
        )
